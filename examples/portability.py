#!/usr/bin/env python
"""Portability: one Jade program, three platforms, identical results.

"Jade implementations exist for shared memory machines (the Stanford DASH
machine), message passing machines (the Intel iPSC/860) and heterogeneous
collections of workstations.  Jade programs port without modification
between all platforms." (§1)

The same Water program (identical objects, tasks and access declarations)
runs on all three simulated platforms — plus on real host threads — and
every execution produces bit-identical results.

Run:  python examples/portability.py
"""

import numpy as np

from repro.apps import MachineKind, Water, WaterConfig
from repro.core import run_stripped
from repro.machines import WorkstationFarm
from repro.parallel import run_threaded
from repro.runtime import RuntimeOptions, run_message_passing, run_shared_memory
from repro.runtime.message_passing import MessagePassingRuntime


def build(machine=MachineKind.IPSC860):
    return Water(WaterConfig.tiny()).build(4, machine=machine)


def main():
    reference = run_stripped(build())
    positions = build().registry.by_name("positions")

    def check(label, store, elapsed=None):
        ok = np.array_equal(reference.payload(positions),
                            store.get(positions.object_id))
        timing = f"{elapsed * 1e3:9.1f} simulated ms" if elapsed else " (wall clock)"
        print(f"  {label:<34} {'OK' if ok else 'MISMATCH':<9}{timing}")
        assert ok

    print("Water, 4 workers, identical program on every platform:\n")

    sm = run_shared_memory(build(MachineKind.DASH), 4)
    check("Stanford DASH (shared memory)", sm.final_store, sm.elapsed)

    mp = run_message_passing(build(), 4)
    check("Intel iPSC/860 (message passing)", mp.final_store, mp.elapsed)

    farm = WorkstationFarm([2.0, 1.0, 0.6, 1.4])
    fm = MessagePassingRuntime(build(), farm, RuntimeOptions()).run()
    check("heterogeneous workstation farm", fm.final_store, fm.elapsed)

    th = run_threaded(build(), num_workers=4)
    check("host threads (real execution)", th.store)

    print("\nSame access declarations, four execution substrates, one answer.")


if __name__ == "__main__":
    main()
