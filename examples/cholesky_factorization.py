#!/usr/bin/env python
"""Panel Cholesky: a real sparse factorization through the Jade runtime.

Builds a synthetic sparse SPD matrix, runs the panel-granularity symbolic
factorization to get the internal/external task DAG, executes the real
numeric factorization through the message-passing Jade runtime, and
verifies L·Lᵀ = A.  Also prints the DAG statistics that drive the paper's
Panel Cholesky results (task counts, critical-path shape, panel sizes).

Run:  python examples/cholesky_factorization.py [--n 96] [--width 12]
"""

import argparse

import numpy as np

from repro.apps import CholeskyConfig, PanelCholesky
from repro.apps import sparse
from repro.runtime import RuntimeOptions, run_message_passing


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--width", type=int, default=12)
    parser.add_argument("--procs", type=int, default=4)
    args = parser.parse_args()

    config = CholeskyConfig(n=args.n, panel_width=args.width)
    app = PanelCholesky(config)

    nnz = sparse.pattern_nnz(app.pattern)
    externals = sum(len(t) for t in app.struct)
    print(f"matrix: n={config.n}, stored nonzeros={nnz}")
    print(f"panels: {len(app.panels)} of width {config.panel_width}")
    print(f"tasks:  {len(app.panels)} internal + {externals} external "
          f"updates (one per overlapping panel pair, incl. fill)")
    fanouts = [len(t) for t in app.struct]
    print(f"fan-out per panel: min={min(fanouts)} "
          f"mean={np.mean(fanouts):.1f} max={max(fanouts)}")

    program = app.build(args.procs)
    metrics = run_message_passing(program, args.procs, RuntimeOptions())
    print(f"\nexecuted {metrics.tasks_executed} tasks on {args.procs} "
          f"simulated iPSC/860 nodes in {metrics.elapsed * 1e3:.1f} simulated ms")
    print(f"shared-object traffic: {metrics.object_messages} messages, "
          f"{metrics.object_bytes / 1024:.0f} KB")

    err = app.verify_factorization(metrics.final_store)
    print(f"\nfactorization verified: max |L·Lᵀ - A| = {err:.2e}")
    expected = np.linalg.cholesky(app.matrix)
    ours = app.assemble_factor(metrics.final_store)
    print(f"matches numpy.linalg.cholesky: "
          f"{np.allclose(ours, expected, atol=1e-8)}")


if __name__ == "__main__":
    main()
