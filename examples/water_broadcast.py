#!/usr/bin/env python
"""Water on the iPSC/860: the adaptive broadcast optimization at work.

Reproduces the paper's §5.3 analysis interactively.  Water's serial phases
update the 165,888-byte molecule-positions object, and every task of the
following parallel phase reads it.  Without broadcast the main processor
serially sends the object to every other node (31 × 0.07 s at 32 nodes);
with the adaptive algorithm the communicator notices the object is read by
everyone and switches to a log₂(P)-stage broadcast (0.31 s).

Run:  python examples/water_broadcast.py [--procs 32] [--scale tiny|paper]
"""

import argparse

from repro.apps import MachineKind
from repro.lab import run_app
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, nargs="*", default=[8, 16, 32])
    parser.add_argument("--scale", choices=["tiny", "paper"], default="paper")
    args = parser.parse_args()

    print(f"Water on the simulated iPSC/860 ({args.scale} data set)\n")
    print(f"{'procs':>6} {'broadcast on':>14} {'broadcast off':>14} "
          f"{'saved':>8} {'broadcasts':>11}")
    for p in args.procs:
        on = run_app("water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                     RuntimeOptions(adaptive_broadcast=True), scale=args.scale)
        off = run_app("water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                      RuntimeOptions(adaptive_broadcast=False), scale=args.scale)
        saved = 100.0 * (off.elapsed - on.elapsed) / off.elapsed
        print(f"{p:>6} {on.elapsed:>12.2f} s {off.elapsed:>12.2f} s "
              f"{saved:>7.1f}% {on.broadcasts:>11}")

    print(
        "\nThe benefit grows with the processor count: serial distribution"
        "\ncosts (P-1) sends per phase, the broadcast about log2(P)."
    )


if __name__ == "__main__":
    main()
