#!/usr/bin/env python
"""Static analysis: why Panel Cholesky cannot scale like Water.

§5.2.1 attributes part of Panel Cholesky's limited performance to "an
inherent lack of concurrency in the basic parallel computation".  This
example quantifies that for all four applications: total work, critical
path, the resulting upper bound on speedup, and the average parallelism
of an idealized infinite-processor schedule.

Run:  python examples/program_analysis.py [--scale tiny|paper]
"""

import argparse

from repro.apps import MachineKind
from repro.lab import make_application
from repro.lab.analysis import summarize
from repro.runtime.options import LocalityLevel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "paper"], default="paper")
    parser.add_argument("--procs", type=int, default=32,
                        help="decomposition width for the phase-structured apps")
    args = parser.parse_args()

    print(f"Inherent concurrency of the paper's applications "
          f"({args.scale} data sets, {args.procs}-way decomposition)\n")
    print(f"{'app':<10} {'tasks':>6} {'work (s)':>10} {'crit.path':>10} "
          f"{'max speedup':>12} {'avg parallel':>13}")
    for app_name in ("water", "string", "ocean", "cholesky"):
        app = make_application(app_name, args.scale)
        program = app.build(args.procs, machine=MachineKind.IPSC860,
                            level=LocalityLevel.LOCALITY)
        info = summarize(program)
        print(f"{app_name:<10} {int(info['tasks']):>6} "
              f"{info['total_work_s']:>10.2f} {info['critical_path_s']:>10.2f} "
              f"{info['max_speedup']:>12.1f} {info['average_parallelism']:>13.1f}")

    print(
        "\nWater and String expose exactly as much parallelism as the"
        "\ndecomposition asks for; Ocean's neighbour conflicts and Panel"
        "\nCholesky's factorization DAG cap the achievable speedup no"
        "\nmatter how many processors are thrown at them — the §5.2.1"
        "\nobservation, derived here directly from the access"
        "\nspecifications."
    )


if __name__ == "__main__":
    main()
