#!/usr/bin/env python
"""Quickstart: write a Jade program, run it on both simulated machines.

A Jade program is a serial program plus access declarations.  This example
builds a tiny pipeline — produce a grid, process slices of it in parallel,
reduce the results — and executes it three ways:

1. stripped serial execution (the correctness oracle);
2. on the shared-memory machine (Stanford DASH model);
3. on the message-passing machine (Intel iPSC/860 model).

All three produce identical numeric results; the two parallel runs report
the machine-level behaviour (time, locality, messages).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AccessSpec,
    JadeBuilder,
    RuntimeOptions,
    run_message_passing,
    run_shared_memory,
    run_stripped,
)


def build_program(num_workers: int = 8):
    jade = JadeBuilder()

    # Shared objects: the grid everyone reads, one result slot per worker,
    # and the final answer.  `home=` hints where each object lives.
    grid = jade.object("grid", initial=np.zeros(1024), sim_nbytes=64 * 1024)
    slots = [
        jade.object(f"slot{w}", initial=np.zeros(1), home=w)
        for w in range(num_workers)
    ]
    answer = jade.object("answer", initial=np.zeros(1))

    # A serial section produces the grid (the main thread runs this).
    def produce(ctx):
        ctx.wr(grid)[:] = np.sin(np.arange(1024) * 0.01)

    jade.serial("produce", body=produce, wr=[grid], cost=1e-3)

    # `withonly` tasks declare exactly what they access.  Declaring the
    # written slot first makes it the task's locality object, so the
    # schedulers place each worker with its slot.
    def work(w):
        lo, hi = w * 128, (w + 1) * 128

        def body(ctx):
            ctx.wr(slots[w])[0] = float(np.sum(ctx.rd(grid)[lo:hi] ** 2))

        return body

    for w in range(num_workers):
        jade.withonly(
            f"work{w}", body=work(w),
            spec=AccessSpec().wr(slots[w]).rd(grid),
            cost=5e-3,
        )

    # A final serial reduction reads every slot.
    def reduce(ctx):
        ctx.wr(answer)[0] = sum(ctx.rd(s)[0] for s in slots)

    jade.serial("reduce", body=reduce, rd=slots, wr=[answer], cost=1e-3)
    return jade.finish("quickstart"), grid, answer


def main():
    # 1. The stripped serial run: Jade's semantics guarantee every
    #    parallel execution reproduces exactly this result.
    program, grid, answer = build_program()
    serial = run_stripped(program)
    expected = serial.payload(answer)[0]
    print(f"stripped serial answer: {expected:.6f} "
          f"(took {serial.time * 1e3:.1f} simulated ms)")

    # 2. Shared memory (DASH): communication is implicit cache traffic.
    program, grid, answer = build_program()
    sm = run_shared_memory(program, num_processors=8)
    assert sm.final_store.get(answer.object_id)[0] == expected
    print(f"DASH (8 procs):     {sm.elapsed * 1e3:7.1f} ms elapsed, "
          f"{sm.tasks_executed} tasks, "
          f"{sm.task_locality_pct:.0f}% on their target processor")

    # 3. Message passing (iPSC/860): the runtime replicates, fetches and
    #    broadcasts objects explicitly.
    program, grid, answer = build_program()
    mp = run_message_passing(program, num_processors=8,
                             options=RuntimeOptions())
    assert mp.final_store.get(answer.object_id)[0] == expected
    print(f"iPSC/860 (8 procs): {mp.elapsed * 1e3:7.1f} ms elapsed, "
          f"{mp.total_messages} messages, "
          f"{mp.object_bytes / 1024:.0f} KB of shared objects moved")

    print("\nall three executions agree — Jade's serial semantics hold")


if __name__ == "__main__":
    main()
