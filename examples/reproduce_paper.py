#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Produces the full paper-vs-measured record (the content of
EXPERIMENTS.md): Tables 1–14 with the paper's rows interleaved, Figures
2–21 as data series, and the §5.1/§5.4/§5.5 analyses.

Run:  python examples/reproduce_paper.py [--output EXPERIMENTS-new.md]
      (takes a few minutes; set REPRO_BENCH_PROCS=1,8,32 for a fast pass)
"""

import argparse
import io
import os
import sys

from repro.apps import MachineKind
from repro.lab import (
    PAPER_PROCS,
    PAPER_TABLES,
    broadcast_sweep,
    fetch_latency_rows,
    latency_hiding_sweep,
    locality_sweep,
    mgmt_percentage_sweep,
    render_series,
    render_table,
    rows_to_series,
    run_app,
    serial_and_stripped,
)
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel

APPS = ["water", "string", "ocean", "cholesky"]
LEVEL_LABELS = {
    "task_placement": "Task Placement",
    "locality": "Locality",
    "no_locality": "No Locality",
}
BCAST_LABELS = {"broadcast": "Adaptive Broadcast",
                "no-broadcast": "No Adaptive Broadcast"}


def procs_list():
    env = os.environ.get("REPRO_BENCH_PROCS")
    if env:
        return [int(x) for x in env.split(",")]
    return list(PAPER_PROCS)


def emit(out, text):
    out.write(text + "\n\n")
    print(text, flush=True)
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="also write the artifact blocks to this file")
    args = parser.parse_args()
    out = io.StringIO()
    procs = procs_list()

    # Tables 1 / 6 ------------------------------------------------------
    for table_no, machine in ((1, MachineKind.DASH), (6, MachineKind.IPSC860)):
        rows = {app: serial_and_stripped(app, machine) for app in APPS}
        data = {v: {app: rows[app][v] for app in APPS}
                for v in ("serial", "stripped")}
        paper = {v: {app: PAPER_TABLES[table_no][app][v] for app in APPS}
                 for v in ("serial", "stripped")}
        emit(out, render_table(
            f"Table {table_no}: Serial and Stripped times on "
            f"{'DASH' if machine is MachineKind.DASH else 'the iPSC/860'} (s)",
            APPS, data, paper=paper))

    # Locality sweeps: Tables 2-5 / 7-10, Figures 2-9 / 12-19 -----------
    for machine, table_base, fig_loc, fig_extra in (
        (MachineKind.DASH, 2, 2, ("task time", 6)),
        (MachineKind.IPSC860, 7, 12, ("comm ratio", 16)),
    ):
        mname = "DASH" if machine is MachineKind.DASH else "the iPSC/860"
        for i, app in enumerate(APPS):
            rows = locality_sweep(app, machine, procs)
            elapsed = {LEVEL_LABELS[k]: v for k, v in
                       rows_to_series(rows, lambda r: r.metrics.elapsed).items()}
            emit(out, render_table(
                f"Table {table_base + i}: Execution Times for "
                f"{app.capitalize()} on {mname} (s)",
                procs, elapsed, paper=PAPER_TABLES[table_base + i]))
            pct = rows_to_series(rows, lambda r: r.metrics.task_locality_pct)
            emit(out, render_series(
                f"Figure {fig_loc + i}: Task Locality % — {app.capitalize()} "
                f"on {mname}", procs, pct, "%"))
            kind, fig_base = fig_extra
            if kind == "task time":
                extra = rows_to_series(rows, lambda r: r.metrics.task_time_total)
                emit(out, render_series(
                    f"Figure {fig_base + i}: Total Task Execution Time — "
                    f"{app.capitalize()} on DASH", procs, extra, "s"))
            else:
                extra = rows_to_series(rows, lambda r: r.metrics.comm_to_comp_ratio)
                emit(out, render_series(
                    f"Figure {fig_base + i}: Comm(MB)/Comp(s) — "
                    f"{app.capitalize()} on the iPSC/860", procs, extra,
                    "MB/s", fmt=lambda v: f"{v:8.4f}"))

    # Figures 10/11 and 20/21: task management percentages --------------
    for fig, machine, app in ((10, MachineKind.DASH, "ocean"),
                              (11, MachineKind.DASH, "cholesky"),
                              (20, MachineKind.IPSC860, "ocean"),
                              (21, MachineKind.IPSC860, "cholesky")):
        mname = "DASH" if machine is MachineKind.DASH else "the iPSC/860"
        rows = mgmt_percentage_sweep(app, machine, procs)
        series = {"task_placement": {r.procs: r.extra["mgmt_pct"] for r in rows}}
        emit(out, render_series(
            f"Figure {fig}: Task Management % — {app.capitalize()} on {mname}",
            procs, series, "%"))

    # Tables 11-14: adaptive broadcast -----------------------------------
    for i, app in enumerate(APPS):
        rows = broadcast_sweep(app, procs)
        series = {BCAST_LABELS[k]: v for k, v in
                  rows_to_series(rows, lambda r: r.metrics.elapsed).items()}
        emit(out, render_table(
            f"Table {11 + i}: {app.capitalize()} with/without Adaptive "
            f"Broadcast on the iPSC/860 (s)",
            procs, series, paper=PAPER_TABLES[11 + i]))

    # §5.1: replication ---------------------------------------------------
    rep = {"Replication": {}, "No Replication": {}}
    for p in (1, 4, 8):
        rep["Replication"][p] = run_app(
            "water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
            RuntimeOptions()).elapsed
        rep["No Replication"][p] = run_app(
            "water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
            RuntimeOptions(replication=False, adaptive_broadcast=False)).elapsed
    emit(out, render_table("§5.1: Water with/without replication (s)",
                           [1, 4, 8], rep))

    # §5.4: latency hiding ------------------------------------------------
    rows = latency_hiding_sweep("cholesky", procs)
    series = rows_to_series(rows, lambda r: r.metrics.elapsed)
    emit(out, render_table(
        "§5.4: Panel Cholesky, latency hiding off/on (s)", procs, series))

    # §5.5: concurrent fetches ---------------------------------------------
    rows = fetch_latency_rows(APPS, 16)
    table = {r.app: {"object/task latency ratio": r.extra["latency_ratio"]}
             for r in rows}
    emit(out, render_table("§5.5: fetch-latency ratios (16 procs, Locality)",
                           ["object/task latency ratio"], table,
                           fmt=lambda v: f"{v:.3f}"))

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out.getvalue())
        print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
