#!/usr/bin/env python
"""Ocean: where the time goes when tasks are small.

Ocean decomposes a 192×192 grid into one column block per worker, so its
tasks shrink as processors are added while the main processor's per-task
work (creation, assignment, completion handling) stays constant.  The
result is the paper's U-shaped scaling curve (Table 9) and a task
management percentage that climbs toward 100% (Figure 20).

This example reproduces both on the simulated iPSC/860, using the paper's
work-free methodology: re-run the identical concurrency pattern with no
computation and no shared-object communication, and divide.

Run:  python examples/ocean_task_management.py
"""

from repro.apps import MachineKind
from repro.lab import mgmt_percentage_sweep
from repro.runtime.options import LocalityLevel


def bar(pct: float, width: int = 30) -> str:
    filled = int(round(pct / 100.0 * width))
    return "#" * filled + "." * (width - filled)


def main():
    procs = [1, 2, 4, 8, 16, 24, 32]
    print("Ocean on the simulated iPSC/860 (paper data set, Task Placement)\n")
    print(f"{'procs':>6} {'elapsed':>10} {'work-free':>10} {'mgmt %':>7}")
    rows = mgmt_percentage_sweep("ocean", MachineKind.IPSC860, procs)
    for row in rows:
        pct = row.extra["mgmt_pct"]
        print(f"{row.procs:>6} {row.metrics.elapsed:>9.2f}s "
              f"{row.extra['workfree_elapsed']:>9.2f}s {pct:>6.1f}%  {bar(pct)}")

    best = min(rows, key=lambda r: r.metrics.elapsed)
    print(
        f"\nThe sweet spot is {best.procs} processors ({best.metrics.elapsed:.2f} s)."
        "\nBeyond it, each added processor adds a column block — and a task"
        "\nper iteration — so serialized task management on the main"
        "\nprocessor grows linearly while per-task compute shrinks: the"
        "\ncurve turns back up, exactly as in the paper's Table 9."
    )


if __name__ == "__main__":
    main()
