#!/usr/bin/env python
"""The three locality optimization levels, side by side (§5.2).

Runs one application across Task Placement / Locality / No Locality on
either simulated machine and prints execution time, task locality
percentage and (for the message-passing machine) shared-object traffic —
the three quantities the paper's locality evaluation revolves around.

Run:  python examples/locality_levels.py --app cholesky --machine ipsc860
"""

import argparse

from repro.apps import MachineKind
from repro.lab import levels_for, run_app


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="cholesky",
                        choices=["water", "string", "ocean", "cholesky"])
    parser.add_argument("--machine", default="ipsc860",
                        choices=["dash", "ipsc860"])
    parser.add_argument("--procs", type=int, default=16)
    parser.add_argument("--scale", choices=["tiny", "paper"], default="paper")
    args = parser.parse_args()

    machine = MachineKind(args.machine)
    print(f"{args.app} on the simulated {args.machine}, "
          f"{args.procs} processors ({args.scale} data set)\n")
    print(f"{'level':<16} {'elapsed':>10} {'locality %':>11} {'object MB':>10}")
    for level in levels_for(args.app):
        m = run_app(args.app, args.procs, machine, level, scale=args.scale)
        mb = m.object_bytes / (1024 * 1024)
        print(f"{level.value:<16} {m.elapsed:>9.2f}s "
              f"{m.task_locality_pct:>10.1f}% {mb:>9.2f}")

    print(
        "\nLower locality percentages mean more tasks ran away from the"
        "\nowner of their locality object — and more object traffic."
    )


if __name__ == "__main__":
    main()
