"""Run metrics: everything §5 of the paper reports, measured per run.

The raw quantities are accumulated by the runtimes; the derived measures
(properties below) are exactly the paper's:

* **task locality percentage** (Figures 2–5, 12–15): tasks executed on
  their target processor ÷ tasks executed × 100;
* **total task execution time** (Figures 6–9): summed time inside task
  bodies.  On DASH this includes cache-miss/communication time — that is
  the point of the measurement; on the iPSC/860 it includes none;
* **communication-to-computation ratio** (Figures 16–19): MB of
  shared-object transfer messages ÷ seconds of task computation;
* **task management percentage** (Figures 10–11, 20–21): computed by the
  lab harness as work-free elapsed ÷ original elapsed;
* **object latency vs. task latency** (§5.5): per-request fetch wait vs.
  per-task wait for its full object set — a ratio near 1 means concurrent
  fetching bought nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.options import RuntimeOptions


@dataclass
class RunMetrics:
    """Everything measured in one simulated execution."""

    machine: str = ""
    application: str = ""
    num_processors: int = 0
    options: Optional[RuntimeOptions] = None

    #: Wall-clock of the simulated execution (the paper's execution time).
    elapsed: float = 0.0
    #: Simulator events executed during the run — the engine-throughput
    #: denominator of the sweep benchmarks (events ÷ host seconds) and a
    #: cheap whole-run determinism fingerprint.
    events_fired: int = 0
    #: Tasks executed (parallel tasks; serial sections counted separately).
    tasks_executed: int = 0
    serial_sections_executed: int = 0
    #: Tasks that ran on their target processor.
    tasks_on_target: int = 0
    #: Σ over tasks of in-task time.  On DASH: compute + memory-system
    #: time (the Figure 6–9 quantity).  On the iPSC/860: compute only.
    task_time_total: float = 0.0
    #: Σ over tasks of pure compute cost (both machines).
    task_compute_total: float = 0.0
    #: DASH only: Σ of memory-system (communication) time inside tasks.
    task_comm_total: float = 0.0

    # Message-passing quantities ----------------------------------------
    #: Bytes moved by shared-object transfer messages (replies/broadcasts).
    object_bytes: float = 0.0
    #: Count of shared-object transfer messages.
    object_messages: int = 0
    #: All messages / all bytes on the network.
    total_messages: int = 0
    total_bytes: float = 0.0
    #: Broadcast operations performed by the adaptive-broadcast algorithm.
    broadcasts: int = 0
    #: Bytes delivered by those broadcast operations (per receiver), so the
    #: §5.3 tables can separate message count from data moved.
    broadcast_bytes: float = 0.0
    #: Versions pushed by the eager-update extension protocol.
    eager_updates: int = 0

    # Per-optimization attribution ---------------------------------------
    # Each counter credits one §3.4 mechanism with the work it performed or
    # avoided.  They are accumulated unconditionally (plain adds on paths
    # that already update other counters) so an "attributed" run is the
    # same run — there is no switch whose state could perturb results.
    #: Needed object versions already local because the node *owns* them —
    #: the locality optimization placed the task at its data.
    locality_hits: int = 0
    #: Needed object versions already local as replicated copies — remote
    #: fetches avoided by replication (§3.4.1).
    replication_hits: int = 0
    #: Fetches satisfied by joining an already-in-flight request for the
    #: same (node, object, version) instead of issuing a duplicate.
    fetch_joins: int = 0
    #: Object versions installed via the request/reply fetch (or exclusive
    #: migration) protocol, and the bytes they carried.
    fetches_remote: int = 0
    fetch_bytes: float = 0.0
    #: Per-receiver deliveries performed by broadcast operations.
    broadcast_deliveries: int = 0
    #: Point-to-point request/reply rounds avoided because a broadcast
    #: pushed the version to every active node instead (§3.4.2).
    broadcast_sends_saved: int = 0
    #: Bytes pushed by the eager-update extension protocol.
    eager_update_bytes: float = 0.0
    #: Seconds of fetch latency hidden by issuing a task's object requests
    #: concurrently instead of chaining them (§5.5): Σ over tasks of
    #: (summed per-request waits − wall-clock wait).
    concurrent_fetch_overlap: float = 0.0
    #: Seconds of a task's fetch wait during which the destination node's
    #: CPU was executing other work — the overlap latency hiding finds.
    latency_hiding_overlap: float = 0.0

    # Fault-injection / reliable-delivery accounting ---------------------
    # Zero in every fault-free run (and absent from pre-fault snapshots):
    # populated from the run's FaultPlan counters and the ReliableNetwork
    # protocol counters when `repro chaos` (or any faulted run) is active.
    #: Messages the fault plan retracted between the NICs.
    messages_dropped: int = 0
    #: Extra copies the fault plan injected at the tx NIC.
    messages_duplicated: int = 0
    #: Data retransmissions performed by the reliable-delivery layer.
    retransmissions: int = 0
    #: Received copies suppressed by sequence-number deduplication.
    duplicates_suppressed: int = 0
    #: Bytes of standalone acknowledgement messages.
    ack_bytes: float = 0.0
    #: Microseconds of confirm time beyond one nominal round trip, summed
    #: over messages that needed at least one retransmission — the stall
    #: the protocol recovered from.
    recovery_stall_us: float = 0.0

    #: §5.5 accounting: Σ over object requests of (reply arrival − request
    #: send), and Σ over tasks of (last reply arrival − first request send).
    object_latency_total: float = 0.0
    object_requests: int = 0
    task_latency_total: float = 0.0
    tasks_with_fetches: int = 0

    #: Main-processor time spent in task management (creation, assignment,
    #: completion handling, synchronizer work).
    mgmt_time_main: float = 0.0
    #: Per-processor busy seconds (tasks + serial sections + mgmt).
    busy_per_processor: List[float] = field(default_factory=list)
    #: Per-processor executed-task counts.
    tasks_per_processor: List[int] = field(default_factory=list)
    #: The final object store of the run (the main processor's store on the
    #: message-passing machine), for correctness checks against the
    #: stripped execution.
    final_store: Optional[object] = None

    # ------------------------------------------------------------------ #
    # derived measures (the paper's reported quantities)
    # ------------------------------------------------------------------ #
    @property
    def task_locality_pct(self) -> float:
        """Figures 2–5 / 12–15: percent of tasks run on their target."""
        if self.tasks_executed == 0:
            return 100.0
        return 100.0 * self.tasks_on_target / self.tasks_executed

    @property
    def comm_to_comp_ratio(self) -> float:
        """Figures 16–19: Mbytes of object transfer per second of compute."""
        if self.task_compute_total <= 0:
            return 0.0
        return (self.object_bytes / (1024.0 * 1024.0)) / self.task_compute_total

    @property
    def mean_object_latency(self) -> float:
        return self.object_latency_total / self.object_requests if self.object_requests else 0.0

    @property
    def mean_task_latency(self) -> float:
        return self.task_latency_total / self.tasks_with_fetches if self.tasks_with_fetches else 0.0

    @property
    def object_to_task_latency_ratio(self) -> float:
        """§5.5: "substantially larger than" 1 would mean concurrent
        fetching parallelized real overhead; ≈1 means it did not."""
        if self.task_latency_total <= 0:
            return 1.0
        return self.object_latency_total / self.task_latency_total

    @property
    def speedup_denominator(self) -> float:
        """Elapsed time, for speedup computations at the lab level."""
        return self.elapsed

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline numbers (reports, regression tests)."""
        return {
            "elapsed": self.elapsed,
            "tasks": float(self.tasks_executed),
            "locality_pct": self.task_locality_pct,
            "task_time": self.task_time_total,
            "comm_ratio": self.comm_to_comp_ratio,
            "object_mb": self.object_bytes / (1024.0 * 1024.0),
            "mgmt_main": self.mgmt_time_main,
            "latency_ratio": self.object_to_task_latency_ratio,
            "total_messages": float(self.total_messages),
            "total_bytes": self.total_bytes,
            "broadcasts": float(self.broadcasts),
            "broadcast_bytes": self.broadcast_bytes,
            "eager_updates": float(self.eager_updates),
        }

    def attribution(self) -> Dict[str, float]:
        """Per-optimization attribution counters as a flat dict.

        The buckets reconcile exactly with the aggregate totals above:
        ``fetches_remote + broadcast_deliveries + eager_updates ==
        object_messages`` and ``fetch_bytes + broadcast_bytes +
        eager_update_bytes == object_bytes`` (checked by
        :func:`repro.obs.attrib.verify_attribution`).
        """
        return {
            "locality_hits": self.locality_hits,
            "replication_hits": self.replication_hits,
            "fetch_joins": self.fetch_joins,
            "fetches_remote": self.fetches_remote,
            "fetch_bytes": self.fetch_bytes,
            "broadcasts": self.broadcasts,
            "broadcast_deliveries": self.broadcast_deliveries,
            "broadcast_bytes": self.broadcast_bytes,
            "broadcast_sends_saved": self.broadcast_sends_saved,
            "eager_updates": self.eager_updates,
            "eager_update_bytes": self.eager_update_bytes,
            "concurrent_fetch_overlap": self.concurrent_fetch_overlap,
            "latency_hiding_overlap": self.latency_hiding_overlap,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "retransmissions": self.retransmissions,
            "duplicates_suppressed": self.duplicates_suppressed,
            "ack_bytes": self.ack_bytes,
            "recovery_stall_us": self.recovery_stall_us,
        }

    def to_json(self) -> Dict[str, object]:
        """Everything measured, as a JSON-safe dict (all values finite).

        This is the ``metrics`` section of the ``repro.obs`` profile
        snapshot and the row payload of ``repro sweep --json``; the
        ``final_store`` payload is deliberately excluded (it is simulation
        state, not a measurement) and options serialize as their stable
        one-line description.
        """
        return {
            "machine": self.machine,
            "application": self.application,
            "num_processors": self.num_processors,
            "options": self.options.describe() if self.options else None,
            "elapsed": self.elapsed,
            "events_fired": self.events_fired,
            "tasks_executed": self.tasks_executed,
            "serial_sections_executed": self.serial_sections_executed,
            "tasks_on_target": self.tasks_on_target,
            "task_time_total": self.task_time_total,
            "task_compute_total": self.task_compute_total,
            "task_comm_total": self.task_comm_total,
            "object_bytes": self.object_bytes,
            "object_messages": self.object_messages,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "broadcasts": self.broadcasts,
            "broadcast_bytes": self.broadcast_bytes,
            "eager_updates": self.eager_updates,
            "object_latency_total": self.object_latency_total,
            "object_requests": self.object_requests,
            "task_latency_total": self.task_latency_total,
            "tasks_with_fetches": self.tasks_with_fetches,
            "mgmt_time_main": self.mgmt_time_main,
            "busy_per_processor": list(self.busy_per_processor),
            "tasks_per_processor": list(self.tasks_per_processor),
            "attribution": self.attribution(),
            "derived": {
                "task_locality_pct": self.task_locality_pct,
                "comm_to_comp_ratio": self.comm_to_comp_ratio,
                "mean_object_latency": self.mean_object_latency,
                "mean_task_latency": self.mean_task_latency,
                "object_to_task_latency_ratio": self.object_to_task_latency_ratio,
            },
        }
