"""The two Jade implementations: shared memory (DASH) and message passing
(iPSC/860), plus the machinery they share.

Both implementations follow §3 of the paper:

* the **shared-memory** runtime (:mod:`repro.runtime.shared_memory`) has a
  synchronizer, a scheduler (distributed queue-of-object-task-queues with
  stealing and the locality heuristic) and per-processor dispatchers; the
  hardware — here the DASH cost model — performs all communication
  implicitly as tasks touch shared data;
* the **message-passing** runtime (:mod:`repro.runtime.message_passing`)
  adds a **communicator** that implements the single-address-space
  abstraction in software, applying replication, concurrent fetches,
  adaptive broadcast, locality and latency hiding.

``run_shared_memory`` / ``run_message_passing`` are the entry points; both
take a :class:`~repro.core.program.JadeProgram`, a machine, and
:class:`~repro.runtime.options.RuntimeOptions`, and return
:class:`~repro.runtime.metrics.RunMetrics`.
"""

from repro.runtime.options import LocalityLevel, RuntimeOptions
from repro.runtime.metrics import RunMetrics
from repro.runtime.shared_memory import SharedMemoryRuntime, run_shared_memory
from repro.runtime.message_passing import MessagePassingRuntime, run_message_passing
from repro.runtime.workfree import make_work_free

__all__ = [
    "LocalityLevel",
    "RuntimeOptions",
    "RunMetrics",
    "SharedMemoryRuntime",
    "run_shared_memory",
    "MessagePassingRuntime",
    "run_message_passing",
    "make_work_free",
]
