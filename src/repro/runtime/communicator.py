"""The communicator: software shared memory for the message-passing machine.

"Because the message passing implementation is also responsible for
implementing the Jade abstraction of a single address space in software
using message passing operations, it has an additional component: a
communicator that generates the messages required to implement the
abstraction of a single address space." (§3.3)

Implemented protocols, all driven by access-specification information:

* **Replication + fetch** (§3.4.1): each remote object access generates a
  small request message to the owner and a reply carrying the whole
  object; concurrent readers get their own local copies.
* **Concurrent fetches** (§3.4.1): a task needing several remote objects
  requests them all at once (``concurrent_fetches=False`` chains the
  requests instead — the ablation configuration).
* **Adaptive broadcast** (§3.4.2): the owner of each version records which
  processors accessed it; once some version of an object has been accessed
  by every processor, all succeeding versions are broadcast on production.
* **Migration without replication** (§5.1 analysis): with
  ``replication=False`` each object version is *exclusively held* by one
  node at a time; a reader acquires the (single) copy, holds it for the
  duration of its task, and the next reader's transfer waits.  Holds are
  acquired in object-id order, one at a time, which rules out deadlock
  between tasks that need overlapping object sets.  This serializes
  concurrent readers — the configuration that demonstrates why
  replication is the indispensable optimization.
* **Eager update** (extension, §5.6): push each new version to the
  processors that held the previous one.  The paper built this protocol
  and found it helps regular applications but floods irregular ones.

Coherence invariant (tested): a task's read observes exactly the version
serial program order dictates.  Jade's dependence rules make the protocol
race-free — a writer of version *v+1* cannot be enabled until every reader
of *v* completed, so version *v* is never destroyed while a fetch of it is
outstanding.  The communicator asserts this with :class:`VersionError`
checks rather than trusting it.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.objects import ObjectStore, SharedObject
from repro.errors import VersionError
from repro.machines.ipsc860 import Ipsc860Machine
from repro.runtime.metrics import RunMetrics
from repro.runtime.options import RuntimeOptions


class _ExclusiveLock:
    """A FIFO mutual-exclusion lock over one (object, version) copy."""

    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: object = None
        self.waiters: Deque[Tuple[object, Callable[[], None]]] = deque()

    def acquire(self, token: object, granted: Callable[[], None]) -> None:
        if self.holder is None:
            self.holder = token
            granted()
        elif self.holder == token:
            # Re-entrant: the same task already holds the copy.
            granted()
        else:
            self.waiters.append((token, granted))

    def release(self, token: object) -> None:
        if self.holder != token:
            return
        if self.waiters:
            self.holder, granted = self.waiters.popleft()
            granted()
        else:
            self.holder = None


class Communicator:
    """Moves shared-object versions between per-node stores."""

    def __init__(
        self,
        machine: Ipsc860Machine,
        options: RuntimeOptions,
        metrics: RunMetrics,
        transport: Optional[object] = None,
    ) -> None:
        self.machine = machine
        self.options = options
        self.metrics = metrics
        self.sim = machine.sim
        #: The message surface every protocol goes through.  Normally the
        #: machine's raw network; under a message-perturbing fault plan the
        #: runtime passes a :class:`repro.runtime.reliable.ReliableNetwork`
        #: so request/reply/broadcast traffic survives drops.
        self.net = transport if transport is not None else machine.network
        #: Optional :class:`repro.obs.ProfileCollector` (duck-typed);
        #: ``None`` keeps every hot-path hook disabled.
        self.prof = machine.profiler
        #: Cached no-trace predicate for the per-fetch hot paths.
        self._trace_on = machine.trace_on
        n = machine.num_processors
        self.stores: List[ObjectStore] = [ObjectStore(f"node{p}") for p in range(n)]
        #: (object_id, version) -> owning node.  "Each object also has an
        #: owner (the last processor to write the object); the owner is
        #: guaranteed to have a copy of the latest version." (§3.4.3)
        self._owner: Dict[Tuple[int, int], int] = {}
        #: object_id -> latest produced (version, owner), for target lookup.
        self._current: Dict[int, Tuple[int, int]] = {}
        #: (object_id, version) -> processors that accessed the version.
        self._accessors: Dict[Tuple[int, int], Set[int]] = {}
        #: objects the adaptive algorithm has switched to broadcast mode.
        self._broadcast_mode: Set[int] = set()
        #: (node, object_id, version) -> list of callbacks waiting on an
        #: in-flight fetch (join instead of duplicating requests).
        self._inflight: Dict[Tuple[int, int, int], List[Callable[[], None]]] = {}
        #: no-replication mode: per-(object, version) exclusive lock.
        #: Value = (current holder-token or None, queue of waiters).
        self._locks: Dict[Tuple[int, int], "_ExclusiveLock"] = {}
        #: holder-token -> locks it holds (released at task completion).
        self._held: Dict[object, List["_ExclusiveLock"]] = {}
        #: Per-node broadcast-decision overhead charged on each update of a
        #: broadcast-mode object (protocol bookkeeping + buffer handling).
        #: This is what degrades the degenerate single-processor runs in
        #: Tables 13/14; calibrated in ``repro.lab.calibration``.
        self.broadcast_trigger_overhead = 0.0
        #: Hook the runtime sets so broadcast-mode updates can charge the
        #: producing node's CPU: ``charge_cpu(node, seconds)``.
        self.charge_cpu: Optional[Callable[[int, float], None]] = None
        #: Hook the runtime sets so fetch waits can observe how busy the
        #: waiting node's CPU was: ``cpu_busy_of(node) -> cumulative busy
        #: seconds``.  Feeds the latency-hiding overlap attribution.
        self.cpu_busy_of: Optional[Callable[[int], float]] = None

    # ------------------------------------------------------------------ #
    # initialization
    # ------------------------------------------------------------------ #
    def install_initial(self, objects) -> None:
        """Install version 0 of every object at its initial owner.

        Objects with a home hint (e.g. Water's per-processor contribution
        arrays) start owned by that node; everything else starts at the
        main processor, "which just initialized them" (§5.2.2).
        """
        for obj in objects:
            owner = (obj.home_hint % self.machine.num_processors
                     if obj.home_hint is not None else self.machine.main_processor)
            self.stores[owner].install(obj)
            self._owner[(obj.object_id, 0)] = owner
            self._current[obj.object_id] = (0, owner)

    def gather_final(self, objects) -> ObjectStore:
        """Collect the newest version of every object into one store.

        Used after a run to compare results against the stripped serial
        execution: the final version of each object lives in its last
        writer's memory, not necessarily the main processor's.
        """
        gathered = ObjectStore("gathered")
        for obj in objects:
            version, owner = self._current[obj.object_id]
            src = self.stores[owner]
            if not src.has(obj.object_id, version):
                raise VersionError(
                    f"final owner {owner} of {obj.name!r} lacks version {version}",
                    object_id=obj.object_id,
                    object_name=obj.name,
                    expected_version=version,
                    observed_version=(src.version(obj.object_id)
                                      if src.has(obj.object_id) else None),
                    node=owner,
                )
            gathered.install_copy(obj.object_id, version, src.get(obj.object_id))
        return gathered

    # ------------------------------------------------------------------ #
    # ownership
    # ------------------------------------------------------------------ #
    def owner_of(self, object_id: int, version: int) -> int:
        try:
            return self._owner[(object_id, version)]
        except KeyError:
            raise VersionError(
                f"no owner recorded for object {object_id} version {version}",
                object_id=object_id,
                expected_version=version,
            ) from None

    def current_owner(self, object_id: int) -> int:
        """The owner of the newest produced version — the scheduler's
        "target processor" input."""
        return self._current[object_id][1]

    def version_produced(self, obj: SharedObject, version: int, node: int) -> None:
        """Record a write completing on ``node``; run push protocols.

        Called at the writer's local completion: the new version now
        physically exists in ``node``'s store.
        """
        oid = obj.object_id
        prev_version = self._current[oid][0]
        self._owner[(oid, version)] = node
        self._current[oid] = (version, node)
        if self.prof is not None:
            self.prof.on_version(oid, obj.name, obj.sim_nbytes, version)
        if self.options.replication and self.options.adaptive_broadcast \
                and oid in self._broadcast_mode:
            self._broadcast_version(obj, version, node)
        elif self.options.replication and self.options.eager_update:
            self._eager_push(obj, version, node, prev_version)

    def record_access(self, node: int, object_id: int, version: int) -> None:
        """Note that ``node`` *read* ``(object, version)``.

        Only reads count toward the broadcast trigger.  Local reads count
        too: the degenerate one-processor case of §5.3 exists precisely
        because the single processor reads every version it produces
        (Ocean's and Cholesky's read-write updates), while at two or more
        processors "neither Ocean nor Panel Cholesky ever accesses the
        same version of an object on all processors".  Production and
        write-fetches do not count — otherwise the main processor's
        initialization writes would spuriously put every object of a
        two-processor run in broadcast mode, contradicting Tables 13/14.
        When the reader set covers all processors the object enters
        broadcast mode for good.
        """
        accessors = self._accessors.setdefault((object_id, version), set())
        accessors.add(node)
        if len(accessors) == self.machine.num_processors:
            self._broadcast_mode.add(object_id)

    def in_broadcast_mode(self, object_id: int) -> bool:
        return object_id in self._broadcast_mode

    # ------------------------------------------------------------------ #
    # fetching
    # ------------------------------------------------------------------ #
    def ensure_local(
        self,
        node: int,
        needs: List[Tuple[SharedObject, int]],
        done: Callable[[], None],
        token: object = None,
        count_latency: bool = True,
    ) -> None:
        """Make ``node``'s store hold each ``(object, version)``; then ``done``.

        The §5.5 latency accounting happens here: per-request object
        latency and per-task task latency (first request out → last reply
        in).  With ``concurrent_fetches`` the requests for multiple
        missing objects go out together; otherwise they chain.

        In no-replication mode ``token`` identifies the acquiring task;
        every needed version is exclusively locked (in object-id order)
        until :meth:`release` is called with the same token.

        Each need is ``(obj, version)`` or ``(obj, version, is_read)``;
        only reads feed the adaptive-broadcast accessor sets.
        """
        needs = [n if len(n) == 3 else (n[0], n[1], True) for n in needs]
        for obj, v, is_read in needs:
            if is_read:
                self.record_access(node, obj.object_id, v)
        needs = [(obj, v) for obj, v, _ in needs]
        if not self.options.replication:
            self._acquire_exclusive(node, list(needs), done, token)
            return

        store = self.stores[node]
        missing = []
        for obj, v in needs:
            if store.has(obj.object_id, v):
                # Attribution: the fetch this need did NOT generate.  A
                # version present on its owning node is a locality hit (the
                # task was scheduled to its data); a version present as a
                # copy elsewhere is a replication hit (§3.4.1).
                if self.owner_of(obj.object_id, v) == node:
                    self.metrics.locality_hits += 1
                else:
                    self.metrics.replication_hits += 1
            else:
                missing.append((obj, v))
        if not missing:
            self.sim.schedule(0.0, done)
            return

        start = self.sim.now
        state = {"n": len(missing), "wait_sum": 0.0}
        busy_at_start = None
        if count_latency:
            self.metrics.tasks_with_fetches += 1
            if self.cpu_busy_of is not None:
                busy_at_start = self.cpu_busy_of(node)

        def _one_arrived(issued: float) -> None:
            state["n"] -= 1
            state["wait_sum"] += self.sim.now - issued
            if state["n"] == 0:
                wall = self.sim.now - start
                if count_latency:
                    self.metrics.task_latency_total += wall
                    # §5.5 attribution: per-request waits that did not
                    # lengthen the task's wall-clock wait were overlapped
                    # with each other by concurrent fetching.
                    if self.options.concurrent_fetches and len(missing) > 1:
                        self.metrics.concurrent_fetch_overlap += \
                            max(0.0, state["wait_sum"] - wall)
                    # Latency-hiding attribution: CPU work the node got
                    # done while this task's objects were in flight.
                    if busy_at_start is not None:
                        self.metrics.latency_hiding_overlap += max(
                            0.0,
                            min(self.cpu_busy_of(node) - busy_at_start, wall),
                        )
                if self._trace_on:
                    self.machine.tracer.span(start, self.sim.now, "object",
                                             "wait", proc=node,
                                             objects=len(missing))
                done()

        if self.options.concurrent_fetches:
            for obj, v in missing:
                self._fetch(node, obj, v,
                            lambda issued=self.sim.now: _one_arrived(issued),
                            count_latency)
        else:
            # Chain the fetches: issue the next request only after the
            # previous object arrived (the ablation configuration).
            pending = deque(missing)

            def _next() -> None:
                if not pending:
                    return
                obj, v = pending.popleft()
                issued = self.sim.now
                self._fetch(node, obj, v,
                            lambda: (_one_arrived(issued), _next()),
                            count_latency)

            _next()

    def _fetch(self, node: int, obj: SharedObject, version: int,
               arrived: Callable[[], None], count_latency: bool = True) -> None:
        """Fetch one (object, version) into ``node``'s store."""
        key = (node, obj.object_id, version)
        waiters = self._inflight.get(key)
        if waiters is not None:
            # A request for this copy is already in flight: join it
            # instead of duplicating the message traffic.
            self.metrics.fetch_joins += 1
            waiters.append(arrived)
            return
        self._inflight[key] = [arrived]
        self._fetch_replicate(node, obj, version, count_latency)

    def _finish_fetch(self, key: Tuple[int, int, int]) -> None:
        for waiter in self._inflight.pop(key, []):
            waiter()

    def _fetch_replicate(self, node: int, obj: SharedObject, version: int,
                         count_latency: bool = True) -> None:
        """Request/reply protocol: two messages per remote fetch (§3.4.1)."""
        owner = self.owner_of(obj.object_id, version)
        key = (node, obj.object_id, version)
        request_sent = self.sim.now
        if count_latency:
            self.metrics.object_requests += 1

        def _request_arrived(_payload) -> None:
            src_store = self.stores[owner]
            if not src_store.has(obj.object_id, version):
                observed = (src_store.version(obj.object_id)
                            if src_store.has(obj.object_id) else None)
                raise VersionError(
                    f"owner {owner} lost object {obj.name!r} version {version} "
                    f"(store has version {observed})",
                    object_id=obj.object_id,
                    object_name=obj.name,
                    expected_version=version,
                    observed_version=observed,
                    node=node,
                )
            payload = src_store.export(obj.object_id)

            def _reply_arrived(p) -> None:
                self.stores[node].install_copy(obj.object_id, version, p)
                if count_latency:
                    self.metrics.object_latency_total += self.sim.now - request_sent
                self.metrics.object_messages += 1
                self.metrics.object_bytes += obj.sim_nbytes
                self.metrics.fetches_remote += 1
                self.metrics.fetch_bytes += obj.sim_nbytes
                if self.prof is not None:
                    self.prof.on_fetch(obj.object_id, obj.name, obj.sim_nbytes)
                self._finish_fetch(key)

            self.net.send(owner, node, obj.sim_nbytes, "object",
                          on_delivered=_reply_arrived, payload=payload)

        self.net.send(node, owner, self.machine.params.request_nbytes, "request",
                      on_delivered=_request_arrived)

    # ------------------------------------------------------------------ #
    # exclusive single-copy mode (replication disabled, §5.1)
    # ------------------------------------------------------------------ #
    def _acquire_exclusive(
        self,
        node: int,
        needs: List[Tuple[SharedObject, int]],
        done: Callable[[], None],
        token: object,
    ) -> None:
        """Acquire every needed version exclusively, in object-id order.

        Each acquisition may involve migrating the single copy from its
        current holder (priced as one request + one object message); the
        lock is held until :meth:`release` runs for ``token``.  Ordered,
        one-at-a-time acquisition makes the protocol deadlock-free.
        """
        ordered = sorted(needs, key=lambda pair: (pair[0].object_id, pair[1]))
        start = self.sim.now
        if ordered:
            self.metrics.tasks_with_fetches += 1
        pending = deque(ordered)

        def _next() -> None:
            if not pending:
                self.metrics.task_latency_total += self.sim.now - start
                if ordered and self._trace_on:
                    self.machine.tracer.span(
                        start, self.sim.now, "object", "wait",
                        proc=node, objects=len(ordered),
                    )
                self.sim.schedule(0.0, done)
                return
            obj, version = pending.popleft()
            lock = self._locks.setdefault(
                (obj.object_id, version), _ExclusiveLock()
            )
            lock.acquire(token, lambda: self._transfer_exclusive(node, obj, version, _next))
            self._held.setdefault(token, []).append(lock)

        _next()

    def _transfer_exclusive(self, node: int, obj: SharedObject, version: int,
                            granted: Callable[[], None]) -> None:
        """Move the single copy to ``node`` (no-op when already local)."""
        oid = obj.object_id
        holder = self.owner_of(oid, version)
        if holder == node and self.stores[node].has(oid, version):
            # The single copy is already here: a locality hit even with
            # replication disabled.
            self.metrics.locality_hits += 1
            self.sim.schedule(0.0, granted)
            return
        request_sent = self.sim.now
        self.metrics.object_requests += 1

        def _request_arrived(_p) -> None:
            src = self.stores[holder]
            if not src.has(oid, version):
                raise VersionError(
                    f"migration source {holder} lost object {oid} v{version}",
                    object_id=oid,
                    object_name=obj.name,
                    expected_version=version,
                    observed_version=(src.version(oid)
                                      if src.has(oid) else None),
                    node=node,
                )
            payload = src.export(oid)
            src.drop(oid)

            def _reply_arrived(p) -> None:
                self.stores[node].install_copy(oid, version, p)
                # The single copy moved: the requester is the new holder.
                self._owner[(oid, version)] = node
                current_v, _ = self._current[oid]
                if current_v == version:
                    self._current[oid] = (version, node)
                self.metrics.object_latency_total += self.sim.now - request_sent
                self.metrics.object_messages += 1
                self.metrics.object_bytes += obj.sim_nbytes
                self.metrics.fetches_remote += 1
                self.metrics.fetch_bytes += obj.sim_nbytes
                if self.prof is not None:
                    self.prof.on_fetch(obj.object_id, obj.name, obj.sim_nbytes)
                granted()

            self.net.send(holder, node, obj.sim_nbytes, "object",
                          on_delivered=_reply_arrived, payload=payload)

        self.net.send(node, holder, self.machine.params.request_nbytes, "request",
                      on_delivered=_request_arrived)

    def release(self, token: object) -> None:
        """Release every exclusive lock held by ``token`` (task completion)."""
        for lock in self._held.pop(token, []):
            lock.release(token)

    # ------------------------------------------------------------------ #
    # push protocols
    # ------------------------------------------------------------------ #
    def _broadcast_version(self, obj: SharedObject, version: int, owner: int) -> None:
        """Broadcast a new version of a broadcast-mode object (§3.4.2)."""
        if self.charge_cpu is not None and self.broadcast_trigger_overhead > 0:
            self.charge_cpu(owner, self.broadcast_trigger_overhead)
        self.metrics.broadcasts += 1
        targets = [p for p in self.machine.active_nodes if p != owner]
        # Attribution: each receiver would otherwise have pulled the version
        # with its own request/reply round (§3.4.2).
        self.metrics.broadcast_sends_saved += len(targets)
        if self.prof is not None:
            self.prof.on_broadcast(obj.object_id, obj.name, obj.sim_nbytes,
                                   len(targets))
        if not targets:
            # The degenerate single-processor case of §5.3: the algorithm
            # still prepares the broadcast — copying the object out to the
            # message buffer — with nobody to receive it.  With recipients
            # that copy-out is the NIC send occupancy; here it lands as
            # pure producer-CPU overhead, which is what degrades the
            # one-processor runs of Tables 13 and 14.
            if self.charge_cpu is not None:
                self.charge_cpu(owner, self.net.send_occupancy(obj.sim_nbytes))
            return
        payload = self.stores[owner].export(obj.object_id)
        edges = {"n": 0}

        def _delivered(node: int, p) -> None:
            self.stores[node].install_copy(obj.object_id, version, p)
            edges["n"] += 1
            self.metrics.object_messages += 1
            self.metrics.object_bytes += obj.sim_nbytes
            self.metrics.broadcast_deliveries += 1
            self.metrics.broadcast_bytes += obj.sim_nbytes

        self.net.broadcast(owner, obj.sim_nbytes, "object_bcast",
                           on_delivered=_delivered, payload=payload,
                           targets=self.machine.active_nodes)

    def _eager_push(self, obj: SharedObject, version: int, owner: int,
                    prev_version: int) -> None:
        """Eager-update extension: push to holders of the previous version."""
        holders = sorted(
            p for p in self.machine.active_nodes
            if p != owner and self.stores[p].has(obj.object_id, prev_version)
        )
        for node in holders:
            payload = self.stores[owner].export(obj.object_id)

            def _delivered(p, node=node) -> None:
                self.stores[node].install_copy(obj.object_id, version, p)
                self.metrics.object_messages += 1
                self.metrics.object_bytes += obj.sim_nbytes
                self.metrics.eager_updates += 1
                self.metrics.eager_update_bytes += obj.sim_nbytes
                if self.prof is not None:
                    self.prof.on_eager_update(obj.object_id, obj.name,
                                              obj.sim_nbytes)

            self.net.send(owner, node, obj.sim_nbytes, "object_eager",
                          on_delivered=_delivered, payload=payload)
