"""Shared-memory schedulers (§3.2.1 of the paper).

Two schedulers implement the paper's locality optimization levels:

* :class:`DistributedQueueScheduler` — the Locality / Task Placement
  levels: one task queue per processor, structured as a queue of *object
  task queues* (one per locality object, owned by the processor that owns
  the object).  Idle processors take the first task of the first object
  task queue of their own queue; if empty they cyclically search other
  processors and steal the *last* task of the *last* object task queue.
  Explicitly placed tasks (Task Placement level) are pinned: they are
  never stolen.

* :class:`SingleQueueScheduler` — the No Locality level: "a single shared
  task queue" served first-come first-served.

Both are pure data structures: the runtime decides *when* to call them and
prices the scheduling work.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.task import TaskSpec


class SmScheduler:
    """Interface shared by the shared-memory schedulers."""

    def enqueue(self, task: TaskSpec, target: int) -> None:
        raise NotImplementedError

    def pick(self, processor: int, allow_steal: bool = True) -> Optional[TaskSpec]:
        raise NotImplementedError

    def pending(self) -> int:
        raise NotImplementedError


class DistributedQueueScheduler(SmScheduler):
    """Queue-of-object-task-queues with task stealing (Figure 1).

    ``victim_executing`` tells the steal policy whether a processor is
    currently running a task body (as opposed to idle or doing
    main-thread work); see :meth:`pick`.
    """

    def __init__(
        self,
        num_processors: int,
        victim_executing: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.num_processors = num_processors
        self.victim_executing = victim_executing or (lambda _p: False)
        #: processor -> ordered map {locality object id -> deque of tasks}.
        self._queues: List["OrderedDict[int, Deque[TaskSpec]]"] = [
            OrderedDict() for _ in range(num_processors)
        ]
        #: processor -> pinned (explicitly placed, unstealable) tasks.
        self._pinned: List[Deque[TaskSpec]] = [deque() for _ in range(num_processors)]
        self._count = 0

    # ------------------------------------------------------------------ #
    def enqueue(self, task: TaskSpec, target: int) -> None:
        """Insert an enabled task.

        Placed tasks go to their processor's pinned queue.  Others go to
        the object task queue of their locality object, owned by
        ``target`` (the owner of that object).
        """
        self._count += 1
        if task.placement is not None:
            self._pinned[task.placement % self.num_processors].append(task)
            return
        obj = task.locality_object
        key = obj.object_id if obj is not None else -1
        per_proc = self._queues[target]
        if key not in per_proc:
            per_proc[key] = deque()
        per_proc[key].append(task)

    def pick(self, processor: int, allow_steal: bool = True) -> Optional[TaskSpec]:
        """Own pinned tasks, then own queue front, then (optionally) steal.

        ``allow_steal=False`` is the dispatcher's first, immediate check;
        the runtime retries with stealing allowed after a short patience
        delay, modelling the dispatch-loop latency that in the real system
        kept idle processors from snatching a task the instant it was
        enqueued ahead of its target processor's own dispatch check.
        """
        pinned = self._pinned[processor]
        if pinned:
            self._count -= 1
            return pinned.popleft()
        own = self._take_front(processor)
        if own is not None:
            self._count -= 1
            return own
        if not allow_steal:
            return None
        # Cyclic search of the other processors' queues; steal the last
        # task of the last object task queue (§3.2.1).  Steal policy: a
        # victim with two or more queued tasks has excess work; a victim
        # with a single queued task is robbed only if it is itself busy
        # executing a task body (it cannot pick the task up soon).  A lone
        # task queued behind a processor that is about to dispatch — e.g.
        # the main processor between two task creations — is left alone;
        # §5.6 notes the original scheduler was *too* eager to move tasks
        # off their targets and that less eagerness would be an
        # improvement.
        for offset in range(1, self.num_processors):
            victim = (processor + offset) % self.num_processors
            size = self._victim_queue_size(victim)
            if size >= 2 or (size == 1 and self.victim_executing(victim)):
                stolen = self._take_back(victim)
                if stolen is not None:
                    self._count -= 1
                    return stolen
        return None

    def _victim_queue_size(self, victim: int) -> int:
        return sum(len(q) for q in self._queues[victim].values())

    def pending(self) -> int:
        return self._count

    # ------------------------------------------------------------------ #
    def _take_front(self, processor: int) -> Optional[TaskSpec]:
        per_proc = self._queues[processor]
        if not per_proc:
            return None
        key = next(iter(per_proc))
        queue = per_proc[key]
        task = queue.popleft()
        if not queue:
            del per_proc[key]
        return task

    def _take_back(self, victim: int) -> Optional[TaskSpec]:
        per_proc = self._queues[victim]
        if not per_proc:
            return None
        key = next(reversed(per_proc))
        queue = per_proc[key]
        task = queue.pop()
        if not queue:
            del per_proc[key]
        return task

    # test/diagnostic helpers -------------------------------------------
    def queue_sizes(self) -> List[int]:
        return [
            sum(len(q) for q in per_proc.values()) + len(self._pinned[p])
            for p, per_proc in enumerate(self._queues)
        ]


class SingleQueueScheduler(SmScheduler):
    """The No Locality level: one shared FIFO queue for all processors."""

    def __init__(self, num_processors: int) -> None:
        self.num_processors = num_processors
        self._queue: Deque[TaskSpec] = deque()

    def enqueue(self, task: TaskSpec, target: int) -> None:
        # ``target`` is ignored: enabled tasks go to idle processors
        # first-come first-served.  Explicit placements are still honoured
        # via a pinned check in pick() — kept so that mixed programs stay
        # runnable, though the paper never combines the two.
        self._queue.append(task)

    def pick(self, processor: int, allow_steal: bool = True) -> Optional[TaskSpec]:
        # A single shared queue has no notion of stealing: first-come
        # first-served regardless of ``allow_steal``.
        for index, task in enumerate(self._queue):
            if task.placement is None or task.placement % self.num_processors == processor:
                del self._queue[index]
                return task
        return None

    def pending(self) -> int:
        return len(self._queue)
