"""The message-passing scheduler (§3.4.3 of the paper).

A centralized dynamic load balancer on the main processor, augmented with a
locality heuristic and a latency-hiding target:

* every task has a **target processor** — the owner (last writer) of its
  locality object; executing there avoids fetching that object;
* the scheduler keeps assigning enabled tasks until every processor holds
  the **target number of tasks** (1 = latency hiding off, the default;
  2 = the §5.4 configuration).  A freshly enabled task goes to a
  least-loaded processor, preferring its target processor when that is
  least-loaded; otherwise it waits in the **pool of unassigned tasks**;
* when a processor reports a completion, the scheduler hands it a pooled
  task, "giving preference to tasks whose target processor is the remote
  processor";
* at the **No Locality** level the pool becomes a plain FIFO served to
  idle processors first-come first-served;
* explicitly placed tasks (**Task Placement**) bypass the load balancer
  entirely and go straight to the named processor.

"The scheduling algorithm is optimized for the case when the main
processor creates all of the tasks in the computation" — which holds for
every program in this reproduction, as it did for the paper's.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.core.task import TaskSpec
from repro.runtime.options import LocalityLevel, RuntimeOptions
from repro.util.rng import substream


class MpScheduler:
    """Centralized scheduler state.  The runtime supplies two hooks:

    * ``target_of(task) -> int`` — owner of the task's locality object;
    * ``dispatch(task, processor)`` — actually deliver the assignment
      (charge main-CPU time, send the task message).
    """

    def __init__(
        self,
        num_processors: int,
        options: RuntimeOptions,
        target_of: Callable[[TaskSpec], int],
        dispatch: Callable[[TaskSpec, int], None],
    ) -> None:
        self.num_processors = num_processors
        self.options = options
        self.target_of = target_of
        self.dispatch = dispatch
        #: Assigned-but-incomplete task count per processor.
        self.load: List[int] = [0] * num_processors
        #: Unassigned enabled tasks, in enablement order.
        self.pool: Deque[TaskSpec] = deque()
        #: Chosen target per task id (recorded at enablement for the
        #: locality-percentage metric).
        self.recorded_target = {}
        #: The real No Locality scheduler handed tasks to whichever idle
        #: processor's request arrived first — timing noise made the
        #: task→processor mapping effectively random (that is why the
        #: paper's No Locality task-locality percentages decay roughly as
        #: 1/P, Figures 2–5 and 12–15).  A seeded stream models that
        #: arrival noise while keeping runs reproducible.
        self._rng = substream(options.seed, "scheduler_mp.no_locality")

    # ------------------------------------------------------------------ #
    def task_enabled(self, task: TaskSpec) -> None:
        """A task became enabled on the main processor (§3.4.3)."""
        # The task's *target* is always the owner of its locality object —
        # also for explicitly placed tasks.  That is how the paper's Task
        # Placement runs read 92% on the iPSC/860: the first task to touch
        # each panel targets the main processor (which initialized it) but
        # is placed elsewhere (§5.2.2).
        target = self.target_of(task)
        self.recorded_target[task.task_id] = target

        if task.placement is not None:
            # Explicit placement constrains *where*, not *when*: the
            # target-task throttle still applies, otherwise latency hiding
            # (§5.4) would be meaningless for the placed applications.
            where = task.placement % self.num_processors
            if self.load[where] < self.options.target_tasks_per_processor:
                self._assign(task, where)
            else:
                self.pool.append(task)
            return

        candidates = [
            p for p in range(self.num_processors)
            if self.load[p] < self.options.target_tasks_per_processor
        ]
        if not candidates:
            self.pool.append(task)
            return

        if self.options.locality is LocalityLevel.NO_LOCALITY:
            # First-come first-served to idle processors: no target
            # preference; among the least-loaded processors the "first"
            # requester is arbitrary (modelled as seeded-random).
            min_load = min(self.load[p] for p in candidates)
            least = [p for p in candidates if self.load[p] == min_load]
            chosen = least[int(self._rng.integers(len(least)))]
        else:
            min_load = min(self.load[p] for p in candidates)
            least = [p for p in candidates if self.load[p] == min_load]
            chosen = target if target in least else least[0]
        self._assign(task, chosen)

    def task_completed(self, processor: int) -> None:
        """A completion was processed on the main processor."""
        self.load[processor] -= 1
        if not self.pool:
            return
        if self.load[processor] >= self.options.target_tasks_per_processor:
            return
        task = self._take_from_pool(processor)
        if task is not None:
            self._assign(task, processor)

    # ------------------------------------------------------------------ #
    def _take_from_pool(self, processor: int) -> Optional[TaskSpec]:
        """Pooled task for ``processor``, preferring matching targets.

        Tasks explicitly placed on *another* processor are never handed
        out here; if every pooled task is placed elsewhere, ``None``.
        """
        # Explicitly placed tasks for this processor come first.
        for index, task in enumerate(self.pool):
            if task.placement is not None and \
                    task.placement % self.num_processors == processor:
                del self.pool[index]
                return task
        # Then unplaced tasks whose target matches (locality preference).
        if self.options.locality is not LocalityLevel.NO_LOCALITY:
            for index, task in enumerate(self.pool):
                if task.placement is None and \
                        self.recorded_target.get(task.task_id) == processor:
                    del self.pool[index]
                    return task
        # Then any unplaced task, first-come first-served.
        for index, task in enumerate(self.pool):
            if task.placement is None:
                del self.pool[index]
                return task
        return None

    def _assign(self, task: TaskSpec, processor: int) -> None:
        self.load[processor] += 1
        self.dispatch(task, processor)

    # diagnostics --------------------------------------------------------
    def pending(self) -> int:
        return len(self.pool)
