"""Runtime options: the paper's optimization switches.

§5 evaluates each communication optimization by "running the applications
first with the optimization turned on then with the optimization turned
off"; these options are those switches.  Defaults match the paper's
baseline configuration for the locality experiments: replication,
concurrent fetches and adaptive broadcast on, latency hiding off (target
number of tasks per processor = 1), Locality scheduling level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class LocalityLevel(enum.Enum):
    """The three locality optimization levels of §5.2."""

    #: The programmer explicitly places tasks on processors (Ocean and
    #: Panel Cholesky only; Water and String cannot benefit).
    TASK_PLACEMENT = "task_placement"
    #: The implementation's locality heuristic: execute each task on the
    #: owner of its locality object, stealing to balance load.
    LOCALITY = "locality"
    #: First-come first-served distribution of enabled tasks to idle
    #: processors (single shared queue / single queue at the main node).
    NO_LOCALITY = "no_locality"


@dataclass(frozen=True)
class RuntimeOptions:
    """Switches controlling which communication optimizations run."""

    #: Scheduling/locality level (§5.2).
    locality: LocalityLevel = LocalityLevel.LOCALITY
    #: Replicate objects for concurrent read access (§3.4.1, §5.1).
    #: Disabling it forces a single migrating copy, which serializes all
    #: concurrent readers — the paper's argument for why replication is
    #: the indispensable optimization.
    replication: bool = True
    #: Adaptive broadcast of widely-accessed objects (§3.4.2, §5.3).
    adaptive_broadcast: bool = True
    #: Fetch a task's multiple remote objects in parallel (§3.4.1, §5.5).
    concurrent_fetches: bool = True
    #: Target number of assigned tasks per processor (§3.4.3).  1 disables
    #: latency hiding; 2 is the paper's "optimization on" setting (§5.4).
    target_tasks_per_processor: int = 1
    #: Run the work-free variant: zero task cost and no shared-object
    #: communication, keeping the concurrency pattern — the §5.2.1
    #: methodology for measuring task management overhead.
    work_free: bool = False
    #: Extension (§5.6 / §6): eagerly push each new version to the
    #: processors that held the previous version (update protocol).  The
    #: paper reports this helped regular applications (Water, String) and
    #: degraded irregular ones by generating excess communication.
    eager_update: bool = False
    #: Seed for any randomized tie-breaking (none by default; kept so
    #: experiments carry provenance in their metrics).
    seed: int = 0
    #: Abort the run (with :class:`repro.errors.SimTimeLimitError`) if the
    #: simulated clock would pass this many seconds — a guard against
    #: runaway simulations (livelocked protocols, miscalibrated costs).
    #: ``None`` disables the guard.  Deliberately *not* part of
    #: :meth:`describe`: the guard never changes what a completing run
    #: computes, so it must not perturb snapshot provenance strings.
    max_sim_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target_tasks_per_processor < 1:
            raise ValueError("target_tasks_per_processor must be >= 1")
        if self.max_sim_time is not None and self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive when set")

    # Convenience derivations --------------------------------------------
    @property
    def latency_hiding(self) -> bool:
        return self.target_tasks_per_processor > 1

    def but(self, **changes) -> "RuntimeOptions":
        """Return a copy with some switches changed (experiment sweeps)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short stable description for reports and trace headers."""
        bits = [self.locality.value]
        if not self.replication:
            bits.append("no-replication")
        if not self.adaptive_broadcast:
            bits.append("no-broadcast")
        if not self.concurrent_fetches:
            bits.append("serial-fetch")
        if self.latency_hiding:
            bits.append(f"target={self.target_tasks_per_processor}")
        if self.work_free:
            bits.append("work-free")
        if self.eager_update:
            bits.append("eager-update")
        return ",".join(bits)
