"""The message-passing Jade implementation (§3.3–§3.4), on the iPSC/860.

Execution model
---------------

* The **main thread** runs on node 0 and is the only task creator.  Task
  creation charges synchronizer-insert time to node 0's CPU; serial
  sections wait for enablement, fetch their remote objects, then execute
  on node 0 — during all of which no new tasks are created.  This is the
  serialized task-management engine whose overhead dominates Ocean and
  Panel Cholesky at scale (Figures 20, 21).

* The **scheduler** (:class:`~repro.runtime.scheduler_mp.MpScheduler`)
  assigns enabled tasks centrally; each assignment charges main-CPU time
  and sends a task-descriptor message.

* On arrival, the receiving node's **interrupt handler** "immediately
  sends out messages requesting the remote objects that the task will
  access" (§3.4.3) — without waiting for the CPU, which may be executing
  an earlier task.  That is how the latency-hiding configuration overlaps
  communication with computation.

* When all objects are present, the task queues on the node's CPU (the
  **dispatcher** "serially executes its set of executable tasks").  At
  completion the body runs against the node's local store, new versions
  are registered with the communicator (triggering adaptive broadcast /
  eager update), and a completion message returns to the main processor,
  where completion handling charges main-CPU time, releases the
  scheduler's load slot, and enables successor tasks.

Correctness: every read observes exactly the serial-order version of each
object (checked — :class:`~repro.errors.VersionError` otherwise), so final
results equal the stripped execution's bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.program import JadeProgram
from repro.core.synchronizer import Synchronizer
from repro.core.task import TaskContext, TaskSpec
from repro.errors import DeadlockError, VersionError
from repro.machines.ipsc860 import Ipsc860Machine
from repro.runtime.communicator import Communicator
from repro.runtime.metrics import RunMetrics
from repro.runtime.options import RuntimeOptions
from repro.runtime.scheduler_mp import MpScheduler
from repro.sim.resources import PriorityFifoResource


class MessagePassingRuntime:
    """Executes one Jade program on an :class:`Ipsc860Machine`."""

    def __init__(
        self,
        program: JadeProgram,
        machine: Ipsc860Machine,
        options: Optional[RuntimeOptions] = None,
        recorder: Optional[object] = None,
    ) -> None:
        program.validate()
        self.program = program
        self.machine = machine
        self.options = options or RuntimeOptions()
        self.sim = machine.sim
        self.sync = Synchronizer()
        #: Optional dynamic checker (see :mod:`repro.check`): observes every
        #: node-local store, the synchronizer's ordering decisions, and task
        #: body accesses.  ``None`` keeps all hooks disabled.
        self.recorder = recorder
        if recorder is not None:
            recorder.attach_synchronizer(self.sync)
        #: Optional :class:`repro.obs.ProfileCollector`; ``None`` keeps all
        #: observability hooks behind a single ``is not None`` predicate.
        self.prof = machine.profiler
        #: Cached no-trace predicate for the per-task hot paths.
        self._trace_on = machine.trace_on
        self.metrics = RunMetrics(
            machine="ipsc860",
            application=program.name,
            num_processors=machine.num_processors,
            options=self.options,
        )
        self.metrics.tasks_per_processor = [0] * machine.num_processors
        # A flight recorder installed on the simulator gets read-only views
        # of the run's metrics and profile collector for its samples.
        flight = getattr(self.sim, "flight", None)
        if flight is not None:
            flight.attach(metrics=self.metrics, collector=machine.profiler)
        #: The message surface the runtime and communicator send through.
        #: With a message-perturbing fault plan installed this is a
        #: :class:`repro.runtime.reliable.ReliableNetwork` (sequence
        #: numbers, acks, retransmission); otherwise it is the machine's
        #: raw network — the reliable layer is never even constructed, so
        #: fault-free runs execute the exact pre-fault code path.
        faults = getattr(machine, "faults", None)
        if faults is not None and faults.perturbs_messages:
            from repro.runtime.reliable import ReliableNetwork

            self.transport = ReliableNetwork(
                machine.network, self.sim, tracer=machine.tracer)
        else:
            self.transport = machine.network
        self.comm = Communicator(machine, self.options, self.metrics,
                                 transport=self.transport)
        self.comm.charge_cpu = self._charge_cpu
        if recorder is not None:
            for store in self.comm.stores:
                recorder.attach_store(store)
        # Two-class CPUs: runtime work (task creation, assignment,
        # completion handling, serial main-thread sections) runs ahead of
        # queued task bodies, as the real dispatcher did.
        self.cpus: List[PriorityFifoResource] = [
            PriorityFifoResource(self.sim, f"cpu{p}")
            for p in range(machine.num_processors)
        ]
        self.comm.cpu_busy_of = lambda node: self.cpus[node].busy_time
        self.scheduler = MpScheduler(
            machine.num_processors, self.options, self._target_of, self._dispatch
        )

        self._next_op = 0
        self._waiting_serial: Optional[TaskSpec] = None
        self._main_done = False
        self._completed = 0

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        self.comm.install_initial(self.program.registry)
        self.sim.deadlock_reporter = self._report_stall
        if self.program.tasks:
            self.sim.schedule(0.0, self._advance_main)
        else:
            self._main_done = True
        self.sim.run(max_time=self.options.max_sim_time)
        if self._completed != len(self.program.tasks) or not self._main_done:
            raise DeadlockError(
                f"message-passing run finished {self._completed}/"
                f"{len(self.program.tasks)} tasks; pending="
                f"{self.sync.pending_tasks()[:10]}",
                pending=len(self.program.tasks) - self._completed,
            )
        self.metrics.elapsed = self.sim.now
        self.metrics.events_fired = self.sim.events_fired
        self.metrics.total_messages = self.machine.stats.counter("net.messages").value
        self.metrics.total_bytes = self.machine.stats.accumulator("net.bytes").total
        self.metrics.busy_per_processor = [c.busy_time for c in self.cpus]
        faults = getattr(self.machine, "faults", None)
        if faults is not None:
            self.metrics.messages_dropped = faults.counters["messages_dropped"]
            self.metrics.messages_duplicated = \
                faults.counters["messages_duplicated"]
        if self.transport is not self.machine.network:
            rc = self.transport.counters
            self.metrics.retransmissions = rc["retransmissions"]
            self.metrics.duplicates_suppressed = rc["duplicates_suppressed"]
            self.metrics.ack_bytes = float(rc["ack_bytes"])
            self.metrics.recovery_stall_us = rc["recovery_stall_us"]
        if not self.options.work_free:
            self.metrics.final_store = self.comm.gather_final(self.program.registry)
        return self.metrics

    def _report_stall(self) -> str:
        return (
            f"main op {self._next_op}/{len(self.program.tasks)}, "
            f"pool={self.scheduler.pending()}, loads={self.scheduler.load}, "
            f"pending sync tasks {self.sync.pending_tasks()[:5]}"
        )

    def _charge_cpu(self, node: int, seconds: float) -> None:
        if self._trace_on:
            self.cpus[node].submit(
                seconds,
                lambda s, f: self.machine.tracer.span(
                    s, f, "mgmt", "protocol", proc=node),
                urgent=True,
            )
        else:
            self.cpus[node].submit(seconds, lambda _s, _f: None, urgent=True)

    # ------------------------------------------------------------------ #
    # main thread
    # ------------------------------------------------------------------ #
    def _advance_main(self) -> None:
        if self._next_op >= len(self.program.tasks):
            self._main_done = True
            return
        op = self.program.tasks[self._next_op]
        self._next_op += 1
        if op.serial:
            if self.sync.add_task(op):
                self._start_serial(op)
            else:
                # Main thread suspends until the section's accesses are
                # enabled (a completion handler will resume it).
                self._waiting_serial = op
            return

        create = self.machine.params.task_create_seconds
        self.metrics.mgmt_time_main += create

        def _create_done(s: float, f: float) -> None:
            if self._trace_on:
                self.machine.tracer.span(s, f, "mgmt", "create",
                                         task=op.task_id, proc=0)
            self._created(op)

        self.cpus[0].submit(create, _create_done, urgent=True)

    def _created(self, task: TaskSpec) -> None:
        if self.sync.add_task(task):
            self.scheduler.task_enabled(task)
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())
        self._advance_main()

    def _start_serial(self, op: TaskSpec) -> None:
        needs = [] if self.options.work_free else self._needs_of(op)
        # Serial gathers (e.g. reducing the replicated contribution
        # arrays) are excluded from the §5.5 per-task fetch-latency
        # accounting — that analysis is about parallel tasks.
        self.comm.ensure_local(
            0, needs, done=lambda: self._serial_fetched(op), token=op,
            count_latency=False,
        )

    def _serial_fetched(self, op: TaskSpec) -> None:
        cost = 0.0 if self.options.work_free else \
            self.machine.compute_seconds(0, op.cost)
        self.cpus[0].submit(
            cost, lambda s, f: self._serial_finished(op, s, f), urgent=True
        )

    def _serial_finished(self, op: TaskSpec, start: float, finish: float) -> None:
        self._run_body_and_publish(op, 0)
        self.comm.release(op)
        self._completed += 1
        self.metrics.serial_sections_executed += 1
        if self._trace_on:
            self.machine.tracer.span(start, finish, "serial", "exec",
                                     task=op.task_id, proc=0)
        if self.prof is not None:
            self.prof.on_task_exec(0, finish - start, 0.0, True)
        for enabled_id in self.sync.complete_task(op):
            enabled = self.program.tasks[enabled_id]
            # A serial section cannot enable another serial section: the
            # main thread has not created any later one yet.
            self.scheduler.task_enabled(enabled)
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())
        self._advance_main()

    # ------------------------------------------------------------------ #
    # task lifecycle on the nodes
    # ------------------------------------------------------------------ #
    def _target_of(self, task: TaskSpec) -> int:
        """Owner (last writer) of the task's locality object (§3.4.3)."""
        obj = task.locality_object
        if obj is None:
            return self.machine.main_processor
        return self.comm.current_owner(obj.object_id)

    def _dispatch(self, task: TaskSpec, processor: int) -> None:
        """Scheduler decision made: charge assignment work, ship the task."""
        assign = self.machine.params.task_assign_seconds
        if processor == self.machine.main_processor:
            assign *= self.machine.params.local_mgmt_factor
        self.metrics.mgmt_time_main += assign

        def _assigned(_s: float, _f: float) -> None:
            if self._trace_on:
                self.machine.tracer.span(_s, _f, "mgmt", "assign",
                                         task=task.task_id, proc=0)
            if processor == self.machine.main_processor:
                self.sim.schedule(0.0, self._task_arrived, task, processor)
            else:
                self.transport.send(
                    0, processor, self.machine.params.task_message_nbytes, "task",
                    on_delivered=lambda _p: self._task_arrived(task, processor),
                )

        self.cpus[0].submit(assign, _assigned, urgent=True)

    def _needs_of(self, task: TaskSpec) -> List[Tuple[object, int, bool]]:
        """(object, version, is_read) triples required before execution.

        Reads need the serial-order version; writes need the previous
        version present so the body can update it in place (the real
        implementation also fetched objects declared only for writing —
        it cannot know the task overwrites every byte).  The flag tells
        the communicator which needs count as reads for the adaptive
        broadcast trigger.
        """
        needs = []
        for decl in task.spec:
            oid = decl.obj.object_id
            if decl.mode.reads:
                version = self.sync.required_version(task.task_id, oid)
            else:
                version = self.sync.produced_version(task.task_id, oid) - 1
            needs.append((decl.obj, version, decl.mode.reads))
        return needs

    def _task_arrived(self, task: TaskSpec, processor: int) -> None:
        """Interrupt handler: immediately request the task's remote objects."""
        receive = self.machine.params.task_receive_seconds

        def _issue_fetches() -> None:
            needs = [] if self.options.work_free else self._needs_of(task)
            self.comm.ensure_local(
                processor, needs,
                done=lambda: self._task_ready(task, processor),
                token=task,
            )

        self.sim.schedule(receive, _issue_fetches)

    def _task_ready(self, task: TaskSpec, processor: int) -> None:
        """All objects local: queue the task on the node's dispatcher."""
        cost = 0.0 if self.options.work_free else \
            self.machine.compute_seconds(processor, task.cost)
        self.cpus[processor].submit(
            cost, lambda s, f: self._task_finished(task, processor, cost, s, f)
        )

    def _task_finished(self, task: TaskSpec, processor: int, cost: float,
                       start: float, finish: float) -> None:
        self._run_body_and_publish(task, processor)
        self.comm.release(task)
        self.metrics.tasks_executed += 1
        self.metrics.tasks_per_processor[processor] += 1
        self.metrics.task_time_total += cost
        self.metrics.task_compute_total += cost
        if self.scheduler.recorded_target.get(task.task_id) == processor:
            self.metrics.tasks_on_target += 1
        if self._trace_on:
            self.machine.tracer.emit(
                self.sim.now, "task", "finish", task=task.task_id, proc=processor
            )
            self.machine.tracer.span(start, finish, "task", "exec",
                                     task=task.task_id, proc=processor)
        if self.prof is not None:
            self.prof.on_task_exec(processor, cost, 0.0, False)

        if processor == self.machine.main_processor:
            self.sim.schedule(0.0, self._completion_arrived, task, processor)
        else:
            self.transport.send(
                processor, 0, self.machine.params.completion_nbytes, "completion",
                on_delivered=lambda _p: self._completion_arrived(task, processor),
            )

    def _completion_arrived(self, task: TaskSpec, processor: int) -> None:
        handle = self.machine.params.completion_handling_seconds
        if processor == self.machine.main_processor:
            handle *= self.machine.params.local_mgmt_factor
        self.metrics.mgmt_time_main += handle

        def _handled(s: float, f: float) -> None:
            if self._trace_on:
                self.machine.tracer.span(s, f, "mgmt", "completion",
                                         task=task.task_id, proc=0)
            self._completion_handled(task, processor)

        self.cpus[0].submit(handle, _handled, urgent=True)

    def _completion_handled(self, task: TaskSpec, processor: int) -> None:
        self._completed += 1
        self.scheduler.task_completed(processor)
        for enabled_id in self.sync.complete_task(task):
            enabled = self.program.tasks[enabled_id]
            if enabled.serial:
                assert self._waiting_serial is not None
                assert self._waiting_serial.task_id == enabled_id
                waiting = self._waiting_serial
                self._waiting_serial = None
                self._start_serial(waiting)
            else:
                self.scheduler.task_enabled(enabled)
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())

    # ------------------------------------------------------------------ #
    # body execution
    # ------------------------------------------------------------------ #
    def _run_body_and_publish(self, task: TaskSpec, processor: int) -> None:
        """Run the body against the node's store; publish written versions."""
        store = self.comm.stores[processor]
        if not self.options.work_free:
            # Coherence invariant: the local store must hold exactly the
            # serial-order version of every declared object.
            for obj, version, _is_read in self._needs_of(task):
                if not store.has(obj.object_id, version):
                    have = (store.version(obj.object_id)
                            if store.has(obj.object_id) else None)
                    raise VersionError(
                        f"node {processor} executing {task.name!r}: needs "
                        f"{obj.name!r} v{version}, store has v{have}",
                        object_id=obj.object_id,
                        object_name=obj.name,
                        expected_version=version,
                        observed_version=have,
                        node=processor,
                    )
            ctx = TaskContext(task, store, processor, recorder=self.recorder)
            ctx.run_body()
            for obj in task.spec.writes():
                produced = self.sync.produced_version(task.task_id, obj.object_id)
                store.bump_version(obj.object_id, produced)
                self.comm.version_produced(obj, produced, processor)


def run_message_passing(
    program: JadeProgram,
    num_processors: int,
    options: Optional[RuntimeOptions] = None,
    machine: Optional[Ipsc860Machine] = None,
    recorder: Optional[object] = None,
) -> RunMetrics:
    """Convenience entry point: build an iPSC/860 and run the program."""
    machine = machine or Ipsc860Machine(num_processors)
    runtime = MessagePassingRuntime(program, machine, options, recorder=recorder)
    return runtime.run()
