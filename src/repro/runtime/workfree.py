"""The work-free transformation (§5.2.1 of the paper).

"We quantitatively evaluate the task management overhead by executing a
work-free version of the program that performs no computation in the
parallel tasks and generates no shared object communication.  This version
has the same concurrency pattern as the original; with explicit task
placement corresponding tasks from the two versions execute on the same
processor.  The task management percentage is the execution time of the
work-free version of the program divided by the execution time of the
original version."

The runtimes implement the semantics behind ``RuntimeOptions.work_free``
(zero cost, no object communication); this module provides the explicit
program transformation for callers who want a separate program object —
it strips bodies and costs but keeps every access specification, so the
synchronizer extracts the identical concurrency pattern.
"""

from __future__ import annotations

from repro.core.program import JadeProgram
from repro.core.task import TaskSpec


def make_work_free(program: JadeProgram) -> JadeProgram:
    """Return a structurally identical program with no work in it."""
    stripped_tasks = [
        TaskSpec(
            task.task_id,
            task.name,
            task.spec,
            body=None,
            cost=0.0,
            placement=task.placement,
            serial=task.serial,
            phase=task.phase,
            metadata=dict(task.metadata),
        )
        for task in program.tasks
    ]
    return JadeProgram(f"{program.name}+workfree", program.registry, stripped_tasks)


def task_management_percentage(workfree_elapsed: float, original_elapsed: float) -> float:
    """§5.2.1's ratio, as a percentage (clamped to [0, 100])."""
    if original_elapsed <= 0:
        return 0.0
    return max(0.0, min(100.0, 100.0 * workfree_elapsed / original_elapsed))
