"""The shared-memory Jade implementation (§3.1–§3.2), on the DASH model.

Execution model
---------------

* The **main thread** runs on processor 0.  It walks the program in serial
  order: each ``withonly`` charges task-creation time (synchronizer insert)
  to processor 0; each serial section makes the main thread wait until the
  section's declared accesses are enabled, then executes it inline on
  processor 0.  While the main thread is blocked, processor 0's dispatcher
  executes tasks like any other processor — and while it is *working*,
  task creation is delayed, which is exactly the serialized task-management
  bottleneck the paper measures for Ocean and Panel Cholesky.

* **Dispatchers** pull tasks when their processor goes idle, through the
  level-appropriate scheduler of :mod:`repro.runtime.scheduler_sm`.

* **Communication is implicit**: a task's execution time is its compute
  cost plus the DASH memory-system cost of its declared accesses, priced
  by :class:`~repro.machines.cache.DirectoryCacheModel` against the live
  coherence state.  That sum is what the paper's per-task timers measured
  (Figures 6–9).

* Bodies execute against a single global store at task completion;
  dependence preservation by the synchronizer makes that equivalent to the
  serial execution — asserted by the test-suite against ``run_stripped``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.objects import ObjectStore
from repro.core.program import JadeProgram
from repro.core.synchronizer import Synchronizer
from repro.core.task import TaskContext, TaskSpec
from repro.errors import DeadlockError
from repro.machines.dash import DashMachine
from repro.runtime.metrics import RunMetrics
from repro.runtime.options import LocalityLevel, RuntimeOptions
from repro.runtime.scheduler_sm import (
    DistributedQueueScheduler,
    SingleQueueScheduler,
    SmScheduler,
)


class SharedMemoryRuntime:
    """Executes one Jade program on a :class:`DashMachine`."""

    def __init__(
        self,
        program: JadeProgram,
        machine: DashMachine,
        options: Optional[RuntimeOptions] = None,
        recorder: Optional[object] = None,
    ) -> None:
        program.validate()
        self.program = program
        self.machine = machine
        self.options = options or RuntimeOptions()
        self.sim = machine.sim
        self.sync = Synchronizer()
        self.store = ObjectStore("dash-shared")
        #: Optional dynamic checker (see :mod:`repro.check`): observes the
        #: global store, the synchronizer's ordering decisions, and every
        #: task body's accesses.  ``None`` keeps all hooks disabled.
        self.recorder = recorder
        if recorder is not None:
            recorder.attach_store(self.store)
            recorder.attach_synchronizer(self.sync)
        #: Optional :class:`repro.obs.ProfileCollector`; ``None`` keeps all
        #: observability hooks behind a single ``is not None`` predicate.
        self.prof = machine.profiler
        #: Cached no-trace predicate for the per-task hot paths.
        self._trace_on = machine.trace_on
        self.metrics = RunMetrics(
            machine="dash",
            application=program.name,
            num_processors=machine.num_processors,
            options=self.options,
        )
        # A flight recorder installed on the simulator gets read-only views
        # of the run's metrics and profile collector for its samples.
        flight = getattr(self.sim, "flight", None)
        if flight is not None:
            flight.attach(metrics=self.metrics, collector=machine.profiler)
        if self.options.locality is LocalityLevel.NO_LOCALITY:
            self.scheduler: SmScheduler = SingleQueueScheduler(machine.num_processors)
        else:
            self.scheduler = DistributedQueueScheduler(
                machine.num_processors,
                victim_executing=lambda p: p in self._executing_task,
            )
        #: Processors currently executing a parallel task body (steal
        #: policy input; main-thread work does not count).
        self._executing_task: Set[int] = set()

        # main-thread state
        self._next_op = 0
        self._waiting_serial: Optional[TaskSpec] = None
        self._serial_ready = False
        self._main_done = False

        self._completed = 0
        self._idle: Set[int] = set(range(machine.num_processors))
        self._poke_scheduled: Set[int] = set()
        self._steal_scheduled: Set[int] = set()
        # At the No Locality level the single shared queue is served in
        # whatever order idle processors happen to reach it; real spin-loop
        # timing made that order effectively random (hence the paper's
        # ~1/P locality percentages).  Seeded for reproducibility.
        from repro.util.rng import substream

        self._grab_rng = substream(self.options.seed, "scheduler_sm.no_locality")
        self.metrics.tasks_per_processor = [0] * machine.num_processors

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #
    def run(self) -> RunMetrics:
        self._install_objects()
        self.sim.deadlock_reporter = self._report_stall
        if not self.program.tasks:
            self._main_done = True
        self._poke(0)
        self.sim.run(max_time=self.options.max_sim_time)
        if self._completed != len(self.program.tasks) or not self._main_done:
            raise DeadlockError(
                f"shared-memory run finished {self._completed}/"
                f"{len(self.program.tasks)} tasks; pending="
                f"{self.sync.pending_tasks()[:10]}",
                pending=len(self.program.tasks) - self._completed,
            )
        self.metrics.elapsed = self.sim.now
        self.metrics.events_fired = self.sim.events_fired
        self.metrics.busy_per_processor = [
            self.machine.processors.busy_time(p)
            for p in range(self.machine.num_processors)
        ]
        return self.metrics

    def _install_objects(self) -> None:
        for obj in self.program.registry:
            self.store.install(obj)
            self.machine.place_object(obj.object_id, obj.sim_nbytes, obj.home_hint)

    def _report_stall(self) -> str:
        return (
            f"main op {self._next_op}/{len(self.program.tasks)}, "
            f"{self.scheduler.pending()} queued, pending sync tasks "
            f"{self.sync.pending_tasks()[:5]}"
        )

    # ------------------------------------------------------------------ #
    # processor idle handling
    # ------------------------------------------------------------------ #
    def _poke(self, processor: int) -> None:
        """Schedule an attempt to give ``processor`` work (deduplicated)."""
        if processor in self._poke_scheduled:
            return
        self._poke_scheduled.add(processor)
        self.sim.schedule(0.0, self._try_dispatch, processor)

    def _poke_idle(self) -> None:
        order = sorted(self._idle)
        if self.options.locality is LocalityLevel.NO_LOCALITY and len(order) > 1:
            order = [order[i] for i in self._grab_rng.permutation(len(order))]
        for p in order:
            self._poke(p)

    def _try_dispatch(self, processor: int) -> None:
        self._poke_scheduled.discard(processor)
        if self.machine.processors.is_busy(processor):
            return
        # The main thread has priority on its own processor: creating
        # tasks keeps the rest of the machine fed.
        if processor == self.machine.main_processor and self._main_has_work():
            self._main_step()
            return
        task = self.scheduler.pick(processor, allow_steal=False)
        if task is None:
            self._idle.add(processor)
            # Before stealing, wait out the dispatch-loop patience: the
            # processor's own task may be about to arrive.
            if self.scheduler.pending() > 0 and processor not in self._steal_scheduled:
                self._steal_scheduled.add(processor)
                self.sim.schedule(
                    self.machine.params.steal_patience_seconds,
                    self._steal_attempt,
                    processor,
                )
            return
        self._idle.discard(processor)
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())
        self._execute(processor, task)

    def _steal_attempt(self, processor: int) -> None:
        self._steal_scheduled.discard(processor)
        if self.machine.processors.is_busy(processor):
            return
        if processor == self.machine.main_processor and self._main_has_work():
            self._main_step()
            return
        task = self.scheduler.pick(processor, allow_steal=True)
        if task is None:
            self._idle.add(processor)
            return
        self._idle.discard(processor)
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())
        self._execute(processor, task)

    # ------------------------------------------------------------------ #
    # main thread
    # ------------------------------------------------------------------ #
    def _main_has_work(self) -> bool:
        if self._main_done:
            return False
        if self._waiting_serial is not None:
            return self._serial_ready
        return self._next_op < len(self.program.tasks)

    def _main_step(self) -> None:
        """Run the next main-thread action on processor 0."""
        main = self.machine.main_processor
        self._idle.discard(main)
        if self._waiting_serial is not None:
            assert self._serial_ready
            task = self._waiting_serial
            self._waiting_serial = None
            self._serial_ready = False
            self._execute(main, task)
            return

        task = self.program.tasks[self._next_op]
        self._next_op += 1
        if task.serial:
            # Serial sections are main-thread code: no creation overhead,
            # but the main thread must wait until the section may perform
            # its declared accesses.
            enabled = self.sync.add_task(task)
            if enabled:
                self._execute(main, task)
            else:
                self._waiting_serial = task
                self._serial_ready = False
                # Processor 0 is free to run other tasks meanwhile.
                self._poke(main)
            return

        # Parallel task: creating it costs synchronizer-insert time on the
        # main processor.
        create = self.machine.params.task_create_seconds
        self.metrics.mgmt_time_main += create
        if self._trace_on and create > 0:
            # run_on occupies the processor immediately, so the span's
            # endpoints are known here.
            self.machine.tracer.span(self.sim.now, self.sim.now + create,
                                     "mgmt", "create", task=task.task_id,
                                     proc=main)

        def _created() -> None:
            if self.sync.add_task(task):
                self._enqueue(task)
            if self._next_op >= len(self.program.tasks) and self._waiting_serial is None:
                self._main_done = True
            self._poke(self.machine.main_processor)

        self.machine.processors.run_on(main, create, _created)

    # ------------------------------------------------------------------ #
    # scheduling and execution
    # ------------------------------------------------------------------ #
    def _target_processor(self, task: TaskSpec) -> int:
        """§3.2.1: the owner of the task's locality object.

        This is both the scheduling target (which processor's queue gets
        the task) and the reference point of the task-locality metric.
        Explicitly placed tasks are routed by their placement instead, but
        the metric still compares against the locality object's owner —
        on DASH the two coincide because the programmer allocated each
        object on the processor where its tasks are placed.
        """
        obj = task.locality_object
        if obj is None:
            return self.machine.main_processor
        return self.machine.owner(obj.object_id)

    def _enqueue(self, task: TaskSpec) -> None:
        self.scheduler.enqueue(task, self._target_processor(task))
        if self.prof is not None:
            self.prof.on_queue_depth(self.sim.now, self.scheduler.pending())
        self._poke_idle()

    def _execute(self, processor: int, task: TaskSpec) -> None:
        """Run one task (or serial section) on ``processor``."""
        compute = 0.0 if self.options.work_free else task.cost
        comm = 0.0
        if not self.options.work_free:
            for decl in task.spec:
                # Attribution: accesses homed in the executing processor's
                # memory module are what the locality optimization bought.
                if self.machine.owner(decl.obj.object_id) == processor:
                    self.metrics.locality_hits += 1
                cost = self.machine.access_cost(
                    processor, decl.obj.object_id, decl.obj.sim_nbytes,
                    write=decl.mode.writes,
                )
                comm += cost
                if self.prof is not None:
                    self.prof.on_access(decl.obj.object_id, decl.obj.name,
                                        decl.obj.sim_nbytes, cost)
        dispatch = 0.0 if task.serial else self.machine.params.task_dispatch_seconds
        duration = compute + comm + dispatch
        if not task.serial:
            self._executing_task.add(processor)

        def _finished() -> None:
            self._executing_task.discard(processor)
            self._on_task_finished(processor, task, compute, comm)

        self.machine.processors.run_on(processor, duration, _finished)

    def _on_task_finished(
        self, processor: int, task: TaskSpec, compute: float, comm: float
    ) -> None:
        ctx = TaskContext(task, self.store, processor, recorder=self.recorder)
        ctx.run_body()
        for obj in task.spec.writes():
            produced = self.sync.produced_version(task.task_id, obj.object_id)
            self.store.bump_version(obj.object_id, produced)
            if self.prof is not None:
                self.prof.on_version(obj.object_id, obj.name, obj.sim_nbytes,
                                     produced)
        self._completed += 1
        if task.serial:
            self.metrics.serial_sections_executed += 1
        else:
            self.metrics.tasks_executed += 1
            self.metrics.tasks_per_processor[processor] += 1
            self.metrics.task_time_total += compute + comm
            self.metrics.task_compute_total += compute
            self.metrics.task_comm_total += comm
            if processor == self._target_processor(task):
                self.metrics.tasks_on_target += 1
        if self._trace_on:
            self.machine.tracer.emit(
                self.sim.now, "task", "finish", task=task.task_id, proc=processor
            )
            # The execution span covers the compute+comm portion of the
            # occupancy — what the paper's per-task timers measured and what
            # ``task_time_total`` accumulates; dispatch overhead is excluded
            # (it gets its own mgmt span below).  The compute/comm split is
            # recorded so the critical-path analyzer can apportion the span
            # between the compute and communication buckets.
            self.machine.tracer.span(
                self.sim.now - (compute + comm), self.sim.now,
                "serial" if task.serial else "task", "exec",
                task=task.task_id, proc=processor,
                compute=compute, comm=comm,
            )
            if not task.serial and self.machine.params.task_dispatch_seconds > 0:
                dispatch = self.machine.params.task_dispatch_seconds
                self.machine.tracer.span(
                    self.sim.now - (compute + comm + dispatch),
                    self.sim.now - (compute + comm),
                    "mgmt", "dispatch", task=task.task_id, proc=processor,
                )
        if self.prof is not None:
            self.prof.on_task_exec(processor, compute, comm, task.serial)

        for enabled_id in self.sync.complete_task(task):
            enabled = self.program.tasks[enabled_id]
            if enabled.serial:
                # The main thread was waiting for this serial section.
                assert self._waiting_serial is not None
                assert self._waiting_serial.task_id == enabled_id
                self._serial_ready = True
                self._poke(self.machine.main_processor)
            else:
                self._enqueue(enabled)

        if task.serial and self._next_op >= len(self.program.tasks):
            self._main_done = True
        self._poke(processor)


def run_shared_memory(
    program: JadeProgram,
    num_processors: int,
    options: Optional[RuntimeOptions] = None,
    machine: Optional[DashMachine] = None,
    recorder: Optional[object] = None,
) -> RunMetrics:
    """Convenience entry point: build a DASH machine and run the program."""
    machine = machine or DashMachine(num_processors)
    runtime = SharedMemoryRuntime(program, machine, options, recorder=recorder)
    metrics = runtime.run()
    metrics.final_store = runtime.store
    return metrics
