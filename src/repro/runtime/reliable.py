"""Reliable delivery layered *above* the priced network model.

When a fault plan can drop, duplicate or delay messages, the Jade
runtimes interpose a :class:`ReliableNetwork` between themselves and the
raw :class:`repro.machines.network.Network`.  The layer implements a
classical ARQ protocol, entirely in simulated time:

* every message on a ``(src, dst)`` channel carries a **sequence
  number**; the receiver remembers delivered sequence numbers and
  suppresses duplicates (the network's signal contract is "fired at
  first delivery", so retransmitted and fault-duplicated copies both
  surface here and both are deduplicated the same way);
* acknowledgements are **piggybacked** on reverse-channel data messages
  when one happens to be sent within the delayed-ack window, otherwise a
  small standalone ack message is flushed after ``ack_delay``;
* unacknowledged messages **retransmit** on a timeout of
  ``rto_factor ×`` the nominal round trip, with exponential backoff,
  until a retry budget is exhausted — at which point the run aborts with
  :class:`repro.errors.ReliabilityError` (a partition this severe has no
  useful Jade semantics).

The layering is deliberate: the raw network keeps the paper's price
model byte-for-byte intact, and a run with no message faults never
constructs this class at all (see
:class:`repro.runtime.message_passing.MessagePassingRuntime`), so
fault-free runs reproduce the paper numbers exactly.  Every protocol
action — header bytes, ack messages, retransmitted payloads — is priced
through the raw network, so the "retransmission tax" of a lossy fabric
shows up in elapsed simulated time, message counts and the critical
path (retransmit waits trace as ``recovery`` spans).

Ordering: the raw network is FIFO per (src, dst) pair, but drops and
delays can reorder deliveries and this layer does **not** resequence.
That is safe for the Jade runtimes: object installs are version-keyed
and idempotent, and task/completion control messages are mutually
independent — each carries its full context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ReliabilityError
from repro.sim.engine import Event, Signal, Simulator
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class ReliableParams:
    """Protocol constants (seconds, bytes)."""

    #: Sequence/ack header bytes added to every data message on the wire.
    header_nbytes: int = 16
    #: Bytes of a standalone ack message.
    ack_nbytes: int = 32
    #: Delayed-ack window: acks wait this long for a reverse-channel data
    #: message to piggyback on before a standalone ack is flushed.
    ack_delay: float = 100e-6
    #: Retransmit timeout, as a multiple of the nominal confirm time
    #: (data flight + ack delay + ack flight), floored at ``rto_min``.
    rto_factor: float = 4.0
    rto_min: float = 500e-6
    #: Exponential backoff applied to the RTO per retransmission.
    backoff: float = 2.0
    #: Attempts before the channel is declared dead.
    max_retries: int = 10


class _SendEntry:
    """Sender-side state of one in-flight message."""

    __slots__ = ("seq", "nbytes", "kind", "payload", "on_delivered",
                 "delivered", "first_send", "attempts", "timer",
                 "nominal_confirm")

    def __init__(self, seq: int, nbytes: int, kind: str, payload: Any,
                 on_delivered: Optional[Callable[[Any], None]],
                 delivered: Signal, first_send: float,
                 nominal_confirm: float) -> None:
        self.seq = seq
        self.nbytes = nbytes
        self.kind = kind
        self.payload = payload
        self.on_delivered = on_delivered
        self.delivered = delivered
        self.first_send = first_send
        self.attempts = 0
        self.timer: Optional[Event] = None
        self.nominal_confirm = nominal_confirm


class _SendChannel:
    __slots__ = ("next_seq", "unacked")

    def __init__(self) -> None:
        self.next_seq = 0
        self.unacked: Dict[int, _SendEntry] = {}


class _RecvChannel:
    __slots__ = ("delivered", "pending_acks", "flush_event")

    def __init__(self) -> None:
        self.delivered: Set[int] = set()
        self.pending_acks: List[int] = []
        self.flush_event: Optional[Event] = None


class ReliableNetwork:
    """ARQ wrapper presenting the raw network's send/broadcast surface.

    One instance per run, created by the runtime when (and only when) the
    installed fault plan can perturb messages.  Local (``src == dst``)
    sends bypass the protocol — they never touch a NIC and cannot fault.
    """

    def __init__(self, net: Any, sim: Simulator,
                 tracer: Optional[Tracer] = None,
                 params: Optional[ReliableParams] = None) -> None:
        self.net = net
        self.sim = sim
        self.params = params or ReliableParams()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._trace_on = self.tracer.enabled
        self._send_channels: Dict[Tuple[int, int], _SendChannel] = {}
        self._recv_channels: Dict[Tuple[int, int], _RecvChannel] = {}
        #: Protocol counters, copied into :class:`repro.runtime.metrics.
        #: RunMetrics` at the end of the run.  ``recovery_stall_us`` is the
        #: total extra confirm time (beyond one nominal round trip) of
        #: messages that needed at least one retransmission — the stall the
        #: protocol *recovered from*, in microseconds of simulated time.
        self.counters: Dict[str, Any] = {
            "retransmissions": 0,
            "duplicates_suppressed": 0,
            "acks_sent": 0,
            "ack_bytes": 0,
            "piggybacked_acks": 0,
            "recovery_stall_us": 0.0,
        }

    # ------------------------------------------------------------------ #
    # raw-network surface the runtimes also use
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> Any:
        return self.net.stats

    def send_occupancy(self, nbytes: int) -> float:
        return self.net.send_occupancy(nbytes)

    def recv_occupancy(self, nbytes: int) -> float:
        return self.net.recv_occupancy(nbytes)

    def flight_time(self, src: int, dst: int) -> float:
        return self.net.flight_time(src, dst)

    def point_to_point_time(self, src: int, dst: int, nbytes: int) -> float:
        return self.net.point_to_point_time(src, dst, nbytes)

    # ------------------------------------------------------------------ #
    # channel state
    # ------------------------------------------------------------------ #
    def _send_channel(self, src: int, dst: int) -> _SendChannel:
        ch = self._send_channels.get((src, dst))
        if ch is None:
            ch = self._send_channels[(src, dst)] = _SendChannel()
        return ch

    def _recv_channel(self, src: int, dst: int) -> _RecvChannel:
        ch = self._recv_channels.get((src, dst))
        if ch is None:
            ch = self._recv_channels[(src, dst)] = _RecvChannel()
        return ch

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        kind: str,
        on_delivered: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
    ) -> Signal:
        """Reliably deliver one message; same contract as ``Network.send``.

        The returned signal fires exactly once, at the first successful
        delivery; ``on_delivered`` likewise runs exactly once.
        """
        if src == dst:
            return self.net.send(src, dst, nbytes, kind, on_delivered, payload)
        ch = self._send_channel(src, dst)
        seq = ch.next_seq
        ch.next_seq += 1
        delivered = Signal(self.sim, f"rmsg.{src}->{dst}.{kind}.{seq}")
        p = self.params
        nominal_confirm = (
            self.net.point_to_point_time(src, dst, nbytes + p.header_nbytes)
            + p.ack_delay
            + self.net.point_to_point_time(dst, src, p.ack_nbytes)
        )
        entry = _SendEntry(seq, nbytes, kind, payload, on_delivered,
                           delivered, self.sim.now, nominal_confirm)
        ch.unacked[seq] = entry
        self._transmit(src, dst, entry)
        return delivered

    def _transmit(self, src: int, dst: int, entry: _SendEntry) -> None:
        """Put one attempt of ``entry`` on the wire and arm its RTO timer."""
        p = self.params
        # Piggyback any acks this node owes for data received from dst
        # (the reverse channel dst->src); cancel the pending standalone
        # flush — this data message carries them for free.
        acks: Tuple[int, ...] = ()
        rch = self._recv_channels.get((dst, src))
        if rch is not None and rch.pending_acks:
            acks = tuple(rch.pending_acks)
            rch.pending_acks.clear()
            if rch.flush_event is not None:
                rch.flush_event.cancel()
                rch.flush_event = None
            self.counters["piggybacked_acks"] += len(acks)
        entry.attempts += 1
        wire = ("data", src, dst, entry.seq, acks)
        self.net.send(src, dst, entry.nbytes + p.header_nbytes, entry.kind,
                      on_delivered=self._data_arrived, payload=wire)
        rto = max(p.rto_min, p.rto_factor * entry.nominal_confirm)
        rto *= p.backoff ** (entry.attempts - 1)
        entry.timer = self.sim.schedule(rto, self._retransmit_timeout,
                                        src, dst, entry.seq)

    def _retransmit_timeout(self, src: int, dst: int, seq: int) -> None:
        ch = self._send_channels.get((src, dst))
        entry = ch.unacked.get(seq) if ch is not None else None
        if entry is None:
            return  # acked while the (cancelled) timer entry drained
        if entry.attempts > self.params.max_retries:
            raise ReliabilityError(
                f"channel {src}->{dst}: message seq={seq} "
                f"kind={entry.kind!r} undelivered after {entry.attempts} "
                f"attempts — retry budget exhausted, fabric presumed "
                f"partitioned")
        self.counters["retransmissions"] += 1
        self._transmit(src, dst, entry)

    # ------------------------------------------------------------------ #
    # receiving
    # ------------------------------------------------------------------ #
    def _data_arrived(self, wire: Tuple[Any, ...]) -> None:
        _tag, src, dst, seq, acks = wire
        # Piggybacked acks confirm data on the reverse channel dst->src.
        for acked in acks:
            self._ack_received(dst, src, acked)
        rch = self._recv_channel(src, dst)
        if seq in rch.delivered:
            # Retransmitted or fault-duplicated copy: suppress, but re-ack
            # (the sender evidently has not heard the first ack).
            self.counters["duplicates_suppressed"] += 1
            self._queue_ack(src, dst, seq)
            return
        rch.delivered.add(seq)
        self._queue_ack(src, dst, seq)
        # Deliver upward.  Simulation runs in one address space, so the
        # receiver side reaches the sender's entry directly; the entry is
        # alive because it is only retired by an ack, and acks follow
        # delivery.
        ch = self._send_channels.get((src, dst))
        entry = ch.unacked.get(seq) if ch is not None else None
        if entry is None:  # pragma: no cover - protocol invariant
            return
        if entry.on_delivered is not None:
            entry.on_delivered(entry.payload)
        if not entry.delivered.fired:
            entry.delivered.fire(entry.payload)

    def _queue_ack(self, src: int, dst: int, seq: int) -> None:
        """Owe an ack for ``seq`` on channel ``src->dst``; flush lazily."""
        rch = self._recv_channel(src, dst)
        rch.pending_acks.append(seq)
        if rch.flush_event is None:
            rch.flush_event = self.sim.schedule(
                self.params.ack_delay, self._flush_acks, src, dst)

    def _flush_acks(self, src: int, dst: int) -> None:
        """Send a standalone ack message for channel ``src->dst``."""
        rch = self._recv_channels.get((src, dst))
        if rch is None:  # pragma: no cover - flush without state
            return
        rch.flush_event = None
        if not rch.pending_acks:
            return
        acks = tuple(rch.pending_acks)
        rch.pending_acks.clear()
        self.counters["acks_sent"] += 1
        self.counters["ack_bytes"] += self.params.ack_nbytes
        wire = ("ack", src, dst, acks)
        # The ack travels dst -> src, itself unreliably: a lost ack is
        # recovered by the sender's retransmission and the receiver's
        # duplicate suppression.
        self.net.send(dst, src, self.params.ack_nbytes, "ack",
                      on_delivered=self._ack_wire_arrived, payload=wire)

    def _ack_wire_arrived(self, wire: Tuple[Any, ...]) -> None:
        _tag, src, dst, acks = wire
        for seq in acks:
            self._ack_received(src, dst, seq)

    def _ack_received(self, src: int, dst: int, seq: int) -> None:
        ch = self._send_channels.get((src, dst))
        entry = ch.unacked.pop(seq, None) if ch is not None else None
        if entry is None:
            return  # duplicate ack (re-acked retransmission)
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        if entry.attempts > 1:
            stall = max(0.0, (self.sim.now - entry.first_send)
                        - entry.nominal_confirm)
            self.counters["recovery_stall_us"] += stall * 1e6
            if self._trace_on and stall > 0.0:
                self.tracer.span(entry.first_send, self.sim.now,
                                 "recovery", "retransmit",
                                 proc=dst, src=src, seq=seq,
                                 attempts=entry.attempts)

    # ------------------------------------------------------------------ #
    # broadcast
    # ------------------------------------------------------------------ #
    def broadcast(
        self,
        root: int,
        nbytes: int,
        kind: str,
        on_delivered: Optional[Callable[[int, Any], None]] = None,
        payload: Any = None,
        targets: Optional[List[int]] = None,
    ) -> Signal:
        """Binomial-tree broadcast with reliable tree edges.

        Each edge goes through :meth:`send`, so a dropped edge retransmits
        and the subtree below it is forwarded from the *confirmed*
        delivery instead of being silently pruned.
        """
        return self.net.broadcast(root, nbytes, kind, on_delivered, payload,
                                  targets, via=self.send)

    # ------------------------------------------------------------------ #
    @property
    def all_acked(self) -> bool:
        """True when no message is awaiting acknowledgement (test hook)."""
        return all(not ch.unacked for ch in self._send_channels.values())

    def summary(self) -> Dict[str, Any]:
        return dict(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ReliableNetwork {self.counters}>"
