"""Machine models: the two hardware platforms of the paper, simulated.

* :mod:`repro.machines.ipsc860` — the Intel iPSC/860: a hypercube of i860
  nodes with NX/2-style buffered message passing (Appendix A of the paper).
* :mod:`repro.machines.dash` — the Stanford DASH: a mesh of 4-processor
  SGI clusters with directory-based cache coherence (Appendix B).

Both models are *cost models driven by real events*: the Jade runtimes make
the same decisions they would on hardware (where to run a task, which
messages to send, which lines miss), and the machine model prices each
decision in simulated seconds using the paper's published constants.
"""

from repro.machines.base import Machine, ProcessorSet
from repro.machines.topology import Hypercube, ClusterMesh
from repro.machines.network import Network, MessageRecord
from repro.machines.memory import MemoryMap
from repro.machines.cache import DirectoryCacheModel, LineState
from repro.machines.dash import DashMachine, DASH_CONFIG, DashParams
from repro.machines.ipsc860 import Ipsc860Machine, IPSC_CONFIG, IpscParams
from repro.machines.workstations import (
    BusNetwork,
    EthernetParams,
    WorkstationFarm,
)

__all__ = [
    "Machine",
    "ProcessorSet",
    "Hypercube",
    "ClusterMesh",
    "Network",
    "MessageRecord",
    "MemoryMap",
    "DirectoryCacheModel",
    "LineState",
    "DashMachine",
    "DashParams",
    "DASH_CONFIG",
    "Ipsc860Machine",
    "IpscParams",
    "IPSC_CONFIG",
    "BusNetwork",
    "EthernetParams",
    "WorkstationFarm",
]
