"""The Intel iPSC/860 machine model.

Appendix A of the paper: 40 MHz i860 XR nodes (8 KB data cache) on a
circuit-switched hypercube, 2.8 MB/s per link, NX/2 buffered message
passing with a measured 47 µs minimum short-message time.  Partitions come
in powers of two; the paper's 24-processor runs use 24 nodes of a 32-node
cube, which the model reproduces by building the enclosing cube and
activating the first ``num_processors`` nodes.

The machine supplies the hypercube, the :class:`~repro.machines.network`
message model, and per-node busy/idle accounting.  All communication is
explicit on this machine — the Jade communicator (software shared memory)
issues every message through :attr:`network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.machines.base import Machine
from repro.machines.memory import MemoryMap
from repro.machines.network import Network, NetworkParams
from repro.machines.topology import Hypercube
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


def _enclosing_power_of_two(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


@dataclass
class IpscParams:
    """iPSC/860 configuration; defaults from Appendix A and §5.3 arithmetic."""

    network: NetworkParams = field(default_factory=NetworkParams)
    #: Bytes of a shared-object *request* message (a small control message:
    #: object id, version, requester).
    request_nbytes: int = 64
    #: Bytes of a task-assignment message (task descriptor: ids, parameters).
    task_message_nbytes: int = 256
    #: Bytes of a task-completion notification back to the main processor.
    completion_nbytes: int = 32
    #: Seconds of main-processor work to create one task and run the
    #: synchronizer — calibrated, see ``repro.lab.calibration``.
    task_create_seconds: float = 0.0
    #: Seconds of main-processor scheduler work to assign one task.
    task_assign_seconds: float = 0.0
    #: Seconds of receiver-side work to unpack a task and issue its fetches.
    task_receive_seconds: float = 0.0
    #: Seconds of main-processor work to process one completion message.
    completion_handling_seconds: float = 0.0
    #: Fraction of the assignment/completion costs charged when the task
    #: stays on the main processor: those costs are mostly message
    #: handling (packing, interrupt processing), which a local dispatch
    #: skips.  This is what keeps single-processor Jade overhead small
    #: (Table 6 vs Table 10's 1-processor column) while 32-processor task
    #: management stays expensive.
    local_mgmt_factor: float = 0.1


#: Canonical configuration (calibrated constants are filled in by
#: :mod:`repro.lab.calibration`).
IPSC_CONFIG = IpscParams()


class Ipsc860Machine(Machine):
    """Message-passing machine: hypercube + NX/2-style network."""

    name = "ipsc860"

    def __init__(
        self,
        num_processors: int,
        params: Optional[IpscParams] = None,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
        faults: Optional[object] = None,
    ) -> None:
        super().__init__(num_processors, sim=sim, tracer=tracer, profiler=profiler)
        self.params = params or IpscParams()
        self.cube = Hypercube(_enclosing_power_of_two(num_processors))
        #: Optional :class:`repro.faults.FaultPlan` for this run.  The plan
        #: is owned per-run (its RNG state is the run's fault history): the
        #: network consults it at both message injection points, the
        #: simulator's ``perturb`` hook routes delivery drops/delays
        #: through it, and :meth:`compute_seconds` applies its node
        #: slowdown/stall windows.
        self.faults = faults
        self.network = Network(
            self.sim, self.cube, self.params.network, self.stats, self.tracer,
            profiler=self.profiler, faults=faults,
        )
        if faults is not None:
            self.sim.perturb = faults.perturb_delivery
        self.memory = MemoryMap(num_processors)

    # ------------------------------------------------------------------ #
    @property
    def active_nodes(self) -> List[int]:
        """The cube nodes actually running the computation."""
        return list(range(self.num_processors))

    def compute_seconds(self, node: int, cost: float) -> float:
        """Execution time of a task of baseline ``cost`` on ``node``.

        The iPSC/860 is homogeneous; the heterogeneous workstation farm
        overrides this with per-node speed scaling.  An installed fault
        plan applies its node slowdown/stall windows here (evaluated at
        submission time — a window covering the submission stretches the
        whole task, an approximation consistent with the machine's
        non-preemptive dispatcher).
        """
        if self.faults is not None:
            return self.faults.perturb_compute(node, self.sim.now, cost)
        return cost

    def describe(self) -> str:
        return (
            f"ipsc860({self.num_processors} of {self.cube.size} nodes, "
            f"dim {self.cube.dimension})"
        )
