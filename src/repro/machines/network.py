"""Message-level network model for the message-passing machine.

The model prices a message send the way the iPSC/860's NX/2 library did
(Appendix A of the paper, plus the paper's own §5.3 arithmetic):

* the **sender** is occupied for ``alpha_send + nbytes * per_byte`` — NX/2
  buffers the message, so the sending node cannot inject another message
  (or, when the send is issued from the main computation thread, continue
  computing) until the copy-out completes;
* the message then crosses the circuit-switched cube in
  ``per_hop * distance`` (wormhole circuit set-up; distance-sensitive but
  tiny relative to serialization);
* the **receiver** pays ``alpha_recv`` of interrupt-handler time at delivery.

Calibration: the paper states a 165,888-byte object takes 0.07 s per
point-to-point send and 0.31 s to broadcast on 32 nodes, and that the
minimum short-message time is 47 µs.  With ``alpha_send + alpha_recv =
47 µs`` and ``per_byte = 0.42 µs`` (≈2.37 MB/s effective NX/2 bandwidth,
below the 2.8 MB/s raw link rate) both numbers fall out: one send costs
0.0700 s, and the 5-stage dimension-exchange broadcast costs ≈0.35 s.

Endpoint contention is modelled with two FIFO resources per node — an
injection (tx) NIC and a reception (rx) NIC; the two stream the same bytes
simultaneously, as a circuit-switched wormhole network does, so an
uncontended message costs ``alpha_send + hops·per_hop + nbytes·per_byte +
alpha_recv`` end-to-end while *serial* sends from one node (the paper's
31 × 0.07 s object distribution) and fan-in to one node (gathering the
replicated contribution arrays for a reduction) both serialize at the
per-byte rate.  Interior link contention is not modelled: for the paper's
workloads the endpoint serialisation at the main processor is the
phenomenon that matters, and the paper's own analysis ignores per-link
queueing too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.machines.topology import Hypercube
from repro.sim.engine import Signal, Simulator
from repro.sim.resources import FifoResource
from repro.sim.stats import StatRegistry
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class MessageRecord:
    """Immutable record of one delivered message (for stats and tests)."""

    msg_id: int
    src: int
    dst: int
    nbytes: int
    kind: str
    sent_at: float
    delivered_at: float


@dataclass
class NetworkParams:
    """Latency/bandwidth constants of the message model (seconds, bytes)."""

    #: Sender-side software overhead per message (seconds).
    alpha_send: float = 25e-6
    #: Receiver-side interrupt/copy-in overhead per message (seconds).
    alpha_recv: float = 22e-6
    #: Serialization cost per payload byte (seconds / byte).
    per_byte: float = 0.42e-6
    #: Circuit set-up cost per hop (seconds).
    per_hop: float = 10e-6


class Network:
    """A hypercube message network with per-node injection FIFOs."""

    def __init__(
        self,
        sim: Simulator,
        cube: Hypercube,
        params: Optional[NetworkParams] = None,
        stats: Optional[StatRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
        faults: Optional[object] = None,
    ) -> None:
        self.sim = sim
        self.cube = cube
        self.params = params or NetworkParams()
        self.stats = stats if stats is not None else StatRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Cached no-trace predicate (``enabled`` is fixed at construction):
        #: `_deliver` runs once per message, the hottest path in a sweep.
        self._trace_on = self.tracer.enabled
        #: Optional :class:`repro.faults.FaultPlan` (duck-typed).  The plan
        #: is consulted at the two injection points: tx-NIC injection
        #: (duplication, link degradation — :meth:`FaultPlan.tx_decision`)
        #: and rx delivery (drop, delay — the plan's ``perturb_delivery``
        #: installed as the simulator's ``perturb`` hook).  The predicate is
        #: cached so a fault-free run pays one ``is not None``-style check
        #: per message and otherwise executes the exact pre-fault code path.
        self.faults = faults
        self._msg_faults = faults is not None and faults.perturbs_messages
        #: Optional observability collector (see :mod:`repro.obs`): records
        #: the src×dst communication matrix, in-flight message counts and
        #: NIC busy intervals.  ``None`` disables all hooks.
        self.profiler = profiler
        self._tx: List[FifoResource] = [
            FifoResource(sim, f"tx{i}") for i in cube.nodes()
        ]
        self._rx: List[FifoResource] = [
            FifoResource(sim, f"rx{i}") for i in cube.nodes()
        ]
        self._next_msg_id = 0
        #: Every delivered message, in delivery order (only kept when
        #: ``record_messages`` is True; experiments summing gigabytes keep
        #: it off and rely on the stat registry instead).
        self.record_messages = False
        self.delivered: List[MessageRecord] = []

    # ------------------------------------------------------------------ #
    # cost queries (used by runtimes to charge CPU for blocking sends)
    # ------------------------------------------------------------------ #
    def send_occupancy(self, nbytes: int) -> float:
        """Sender-side (tx NIC) busy time for one message of ``nbytes``."""
        return self.params.alpha_send + nbytes * self.params.per_byte

    def recv_occupancy(self, nbytes: int) -> float:
        """Receiver-side (rx NIC) busy time for one message of ``nbytes``."""
        return nbytes * self.params.per_byte + self.params.alpha_recv

    def flight_time(self, src: int, dst: int) -> float:
        """Circuit set-up latency between the endpoints."""
        return self.cube.distance(src, dst) * self.params.per_hop

    def point_to_point_time(self, src: int, dst: int, nbytes: int) -> float:
        """End-to-end time of one uncontended message.

        The tx and rx NICs stream the payload simultaneously (circuit
        switching), so the per-byte term appears once.
        """
        return (
            self.params.alpha_send
            + self.flight_time(src, dst)
            + nbytes * self.params.per_byte
            + self.params.alpha_recv
        )

    # ------------------------------------------------------------------ #
    # sending
    # ------------------------------------------------------------------ #
    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        kind: str,
        on_delivered: Optional[Callable[[Any], None]] = None,
        payload: Any = None,
    ) -> Signal:
        """Inject a message; returns a signal fired (with ``payload``) at delivery.

        Pipelined model: the tx NIC is occupied for
        ``alpha_send + nbytes·per_byte``; the message head reaches the
        destination ``alpha_send + hops·per_hop`` after injection starts,
        at which point the rx NIC streams the payload in
        (``nbytes·per_byte + alpha_recv``).  Messages between the same
        pair of nodes deliver in send order (both NICs are FIFO).
        """
        prof = self.profiler
        if src == dst:
            # Local "message": no NIC involvement, a small handler cost only.
            if prof is not None:
                prof.on_message_sent(self.sim.now)
            delivered = Signal(self.sim, f"msg.local.{src}")
            self.sim.schedule(self.params.alpha_recv, self._deliver, src, dst, nbytes,
                              kind, self.sim.now, delivered, on_delivered, payload)
            return delivered

        if self._msg_faults:
            return self._send_faulty(src, dst, nbytes, kind, on_delivered,
                                     payload)

        if prof is not None:
            prof.on_message_sent(self.sim.now)
        delivered = Signal(self.sim, f"msg.{src}->{dst}.{kind}")
        sent_at = self.sim.now
        # The tx NIC is FIFO with no cancellation, so this job's start time
        # is already determined at submission; the message head reaches the
        # destination while the tail is still streaming out (wormhole
        # pipelining), so the rx NIC's work is scheduled from the start
        # time, not the tx completion.
        tx = self._tx[src]
        tx_start = max(self.sim.now, tx.busy_until)
        if prof is None:
            tx.submit(self.send_occupancy(nbytes), lambda _s, _f: None)
        else:
            tx.submit(self.send_occupancy(nbytes),
                      lambda s, f: prof.on_link_busy(src, "tx", s, f - s))
        head_arrives = tx_start + self.params.alpha_send + self.flight_time(src, dst)

        def _at_destination() -> None:
            def _received(s: float, f: float) -> None:
                if prof is not None:
                    prof.on_link_busy(dst, "rx", s, f - s)
                self._deliver(src, dst, nbytes, kind, sent_at,
                              delivered, on_delivered, payload)

            self._rx[dst].submit(self.recv_occupancy(nbytes), _received)

        self.sim.at(head_arrives, _at_destination)
        return delivered

    def _send_faulty(
        self,
        src: int,
        dst: int,
        nbytes: int,
        kind: str,
        on_delivered: Optional[Callable[[Any], None]],
        payload: Any,
    ) -> Signal:
        """:meth:`send` under an active fault plan.

        The plan is consulted twice, matching a real NIC's failure surface:

        * at **tx injection** for duplication (an extra copy follows the
          original through the tx FIFO) and link degradation (both NICs
          stream this message's bytes at a multiple of the normal per-byte
          cost);
        * at **rx delivery**, where the scheduled delivery event goes
          through :meth:`Simulator.at_perturbed` so a drop is an ordinary
          cancelled event and a delay an ordinary reschedule.

        The returned signal fires at the *first* delivery; duplicate
        arrivals still invoke ``on_delivered`` (and count in the stats —
        they really crossed the wire), which is why callers facing a
        duplicating network must deduplicate, as
        :class:`repro.runtime.reliable.ReliableNetwork` does by sequence
        number.
        """
        prof = self.profiler
        faults = self.faults
        if prof is not None:
            prof.on_message_sent(self.sim.now)
        delivered = Signal(self.sim, f"msg.{src}->{dst}.{kind}")
        sent_at = self.sim.now
        copies, multiplier = faults.tx_decision(sent_at, src, dst, nbytes, kind)
        if multiplier == 1.0:
            tx_occupancy = self.send_occupancy(nbytes)
            rx_occupancy = self.recv_occupancy(nbytes)
        else:
            degraded = nbytes * self.params.per_byte * multiplier
            tx_occupancy = self.params.alpha_send + degraded
            rx_occupancy = degraded + self.params.alpha_recv
        tx = self._tx[src]

        def _at_destination() -> None:
            def _received(s: float, f: float) -> None:
                if prof is not None:
                    prof.on_link_busy(dst, "rx", s, f - s)
                self._deliver(src, dst, nbytes, kind, sent_at,
                              delivered, on_delivered, payload)

            self._rx[dst].submit(rx_occupancy, _received)

        for _copy in range(1 + copies):
            tx_start = max(self.sim.now, tx.busy_until)
            if prof is None:
                tx.submit(tx_occupancy, lambda _s, _f: None)
            else:
                tx.submit(tx_occupancy,
                          lambda s, f: prof.on_link_busy(src, "tx", s, f - s))
            head_arrives = (tx_start + self.params.alpha_send
                            + self.flight_time(src, dst))
            self.sim.at_perturbed(head_arrives, _at_destination,
                                  tag=("deliver", src, dst, kind))
        return delivered

    def _deliver(
        self,
        src: int,
        dst: int,
        nbytes: int,
        kind: str,
        sent_at: float,
        delivered: Signal,
        on_delivered: Optional[Callable[[Any], None]],
        payload: Any,
    ) -> None:
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        self.stats.counter("net.messages").incr()
        self.stats.counter(f"net.messages.{kind}").incr()
        self.stats.accumulator("net.bytes").add(nbytes)
        self.stats.accumulator(f"net.bytes.{kind}").add(nbytes)
        self.stats.accumulator("net.latency").add(self.sim.now - sent_at)
        if self.record_messages:
            self.delivered.append(
                MessageRecord(msg_id, src, dst, nbytes, kind, sent_at, self.sim.now)
            )
        if self._trace_on:
            self.tracer.span(sent_at, self.sim.now, "message", kind,
                             src=src, dst=dst, nbytes=nbytes)
        if self.profiler is not None:
            self.profiler.on_message(self.sim.now, src, dst, nbytes, kind,
                                     self.sim.now - sent_at)
        if on_delivered is not None:
            on_delivered(payload)
        if not delivered.fired:
            # A fault plan can duplicate messages; the signal contract is
            # "fired at first delivery", and later copies only re-run
            # ``on_delivered`` (callers that need exactly-once semantics
            # deduplicate above this layer).
            delivered.fire(payload)

    # ------------------------------------------------------------------ #
    # broadcast
    # ------------------------------------------------------------------ #
    def broadcast(
        self,
        root: int,
        nbytes: int,
        kind: str,
        on_delivered: Optional[Callable[[int, Any], None]] = None,
        payload: Any = None,
        targets: Optional[List[int]] = None,
        via: Optional[Callable[..., Signal]] = None,
    ) -> Signal:
        """Binomial-tree broadcast from ``root`` to ``targets`` (default: all).

        The tree is built over *ranks within the active node list* (the
        standard dimension-exchange schedule generalized to partitions that
        are not a full power-of-two cube — the paper's 24-processor runs
        used 24 nodes of a 32-node machine).  Each tree edge is a real
        :meth:`send`, so NIC contention, distance latency and statistics
        all apply.  The whole broadcast takes ``ceil(log2(n))`` message
        stages, matching the paper's §5.3 arithmetic (0.31 s for Water's
        165,888-byte object on 32 nodes versus 2.17 s for 31 serial sends).

        ``on_delivered(node, payload)`` fires as each node receives the
        datum; the returned signal fires once every target has it.

        ``via`` substitutes the per-edge send function (same signature as
        :meth:`send`); :class:`repro.runtime.reliable.ReliableNetwork`
        passes its own reliable send so the tree forwards on *confirmed*
        deliveries — a dropped edge retransmits instead of silently
        pruning the whole subtree.
        """
        edge_send = via if via is not None else self.send
        done = Signal(self.sim, f"bcast.{root}.{kind}")
        nodes = list(targets) if targets is not None else list(self.cube.nodes())
        if root not in nodes:
            nodes = [root] + nodes
        # Rank 0 is the root; remaining active nodes keep their order.
        ranked = [root] + [n for n in nodes if n != root]
        n = len(ranked)
        if n <= 1:
            self.sim.schedule(0.0, done.fire, payload)
            return done

        remaining = {"n": n - 1}

        def _forward_from(rank: int, stage_bit: int) -> None:
            bit = stage_bit
            while bit < n:
                child = rank + bit
                if child < n:
                    sig = edge_send(ranked[rank], ranked[child], nbytes, kind,
                                    payload=payload)

                    def _on_child(p: Any, child: int = child, bit: int = bit) -> None:
                        if on_delivered is not None:
                            on_delivered(ranked[child], p)
                        _forward_from(child, bit * 2)
                        remaining["n"] -= 1
                        if remaining["n"] == 0:
                            done.fire(payload)

                    sig.wait(_on_child)
                bit *= 2

        self.stats.counter("net.broadcasts").incr()
        _forward_from(0, 1)
        return done
