"""Object-to-memory-module placement.

On DASH every shared object lives in exactly one cluster's physical memory
(its *home*); the locality heuristic's whole purpose is to run tasks on
processors of the home cluster of their locality object.  On the iPSC/860
"ownership" is dynamic (the last writer), which the communicator tracks —
this map only records the *initial* placement there.

Placement policy mirrors what the Jade system did: objects are homed where
they are allocated.  Applications can hint an explicit home (Water's
replicated contribution arrays are allocated one-per-processor); otherwise
objects allocated by the main thread are distributed round-robin, which is
how DASH's first-touch-ish page placement behaved for the paper's apps.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import MachineError


class MemoryMap:
    """Tracks the home processor of each shared object id."""

    def __init__(self, num_processors: int, round_robin_start: int = 0) -> None:
        if num_processors <= 0:
            raise MachineError("memory map needs at least one processor")
        self.num_processors = num_processors
        self._home: Dict[int, int] = {}
        self._rr_next = round_robin_start % num_processors

    def place(self, object_id: int, home_hint: Optional[int] = None) -> int:
        """Assign (or return the existing) home for ``object_id``.

        ``home_hint`` pins the object to a processor's memory module; with
        no hint the object takes the next round-robin slot.  Hints beyond
        the machine size wrap (an app tuned for 32 processors still runs
        on 4).
        """
        if object_id in self._home:
            return self._home[object_id]
        if home_hint is not None:
            home = home_hint % self.num_processors
        else:
            home = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_processors
        self._home[object_id] = home
        return home

    def home(self, object_id: int) -> int:
        """Home processor of ``object_id`` (must have been placed)."""
        try:
            return self._home[object_id]
        except KeyError:
            raise MachineError(f"object {object_id} was never placed") from None

    def is_placed(self, object_id: int) -> bool:
        return object_id in self._home

    def objects_homed_at(self, processor: int) -> list:
        """All object ids whose home is ``processor`` (test/report helper)."""
        return sorted(o for o, h in self._home.items() if h == processor)
