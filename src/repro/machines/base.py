"""Common machine scaffolding shared by the DASH and iPSC/860 models.

A machine owns the simulator, the processor abstraction and the statistics
registry.  Processors are *not* FIFO resources: Jade dispatchers pull work
when a processor goes idle (that is what makes stealing and the locality
heuristic meaningful), so the machine exposes a minimal busy/idle protocol
— ``run_on(p, seconds, done)`` — and each runtime builds its own scheduling
on top.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import MachineError
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry
from repro.sim.trace import Tracer


class ProcessorSet:
    """Busy/idle accounting for the machine's processors.

    ``run_on`` occupies one processor for a span of simulated seconds and
    invokes ``done()`` when it completes.  A processor must be idle when
    occupied — dispatchers guarantee that by construction, and the check
    turns scheduling bugs into loud failures instead of silently-overlapped
    work.
    """

    def __init__(self, sim: Simulator, count: int) -> None:
        if count <= 0:
            raise MachineError(f"machine needs at least one processor, got {count}")
        self.sim = sim
        self.count = count
        self._busy_until: List[float] = [0.0] * count
        self._busy_time: List[float] = [0.0] * count
        self._running: List[bool] = [False] * count

    def run_on(self, processor: int, seconds: float, done: Callable[[], None]) -> None:
        """Occupy ``processor`` for ``seconds``; call ``done`` at completion."""
        self._check(processor)
        if self._running[processor]:
            raise MachineError(
                f"processor {processor} is already running work until "
                f"t={self._busy_until[processor]:.6f}"
            )
        if seconds < 0:
            raise MachineError(f"negative execution time {seconds!r}")
        self._running[processor] = True
        self._busy_time[processor] += seconds
        finish = self.sim.now + seconds
        self._busy_until[processor] = finish

        def _complete() -> None:
            self._running[processor] = False
            done()

        self.sim.at(finish, _complete)

    def is_busy(self, processor: int) -> bool:
        self._check(processor)
        return self._running[processor]

    def busy_time(self, processor: int) -> float:
        """Cumulative seconds of work executed on ``processor``."""
        self._check(processor)
        return self._busy_time[processor]

    def total_busy_time(self) -> float:
        return sum(self._busy_time)

    def _check(self, processor: int) -> None:
        if not 0 <= processor < self.count:
            raise MachineError(f"processor {processor} outside machine of {self.count}")


class Machine:
    """Base class: simulator + processors + stats + trace.

    ``main_processor`` is processor 0 throughout, matching the paper's
    "main processor (the processor executing the main thread)".
    """

    name = "machine"

    def __init__(
        self,
        num_processors: int,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
    ) -> None:
        self.sim = sim or Simulator()
        self.num_processors = num_processors
        self.processors = ProcessorSet(self.sim, num_processors)
        self.stats = StatRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Optional :class:`repro.obs.ProfileCollector` (duck-typed to avoid
        #: an import cycle).  ``None`` keeps every observability hook —
        #: here, in the networks, and in the runtimes — disabled behind a
        #: single ``is not None`` predicate.
        self.profiler = profiler
        #: Cached no-trace predicate for hot emit paths.  A tracer's
        #: ``enabled`` flag is fixed at construction, so callers on the
        #: per-task/per-message paths test this bool instead of paying an
        #: attribute chain and a call into a disabled tracer.
        self.trace_on = self.tracer.enabled
        self.main_processor = 0

    def describe(self) -> str:
        """One-line identification used in reports."""
        return f"{self.name}({self.num_processors} processors)"
