"""The Stanford DASH machine model.

DASH (Appendix B of the paper): 4-processor SGI 4D/340 clusters (33 MHz
R3000s, 64 KB L1, 256 KB L2, 16-byte lines) joined by a pair of wormhole
meshes with a directory-based coherence protocol.  Remote access latencies:
1 / 15 / 29 / 101 / 132 cycles for L1 / L2 / other-cache-in-cluster /
remote-home / remote-dirty.

For the Jade shared-memory runtime the machine supplies three things:

* the cluster map (who is "close to" whom — drives the locality heuristic);
* the :class:`~repro.machines.cache.DirectoryCacheModel` that prices each
  task's object accesses (communication shows up inside task time on a
  shared-memory machine — §5.2.1);
* per-processor busy/idle accounting via :class:`~repro.machines.base.Machine`.

Task management costs (synchronizer/scheduler work, priced per §5.2.1's
work-free methodology) are constants on this machine because DASH supports
the fine-grained communication that task management needs; see
:mod:`repro.lab.calibration` for the values and their provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machines.base import Machine
from repro.machines.cache import CacheParams, DirectoryCacheModel
from repro.machines.memory import MemoryMap
from repro.machines.topology import ClusterMesh
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@dataclass
class DashParams:
    """DASH configuration; defaults are the paper's Appendix B values."""

    cluster_size: int = 4
    cache: CacheParams = field(default_factory=CacheParams)
    #: Seconds of main-processor work to create one task (build its access
    #: specification, run the synchronizer insert).  Calibrated — see
    #: ``repro.lab.calibration.DASH_TASK_CREATE_SECONDS``.
    task_create_seconds: float = 0.0
    #: Seconds of scheduling work to dispatch/complete one task.
    task_dispatch_seconds: float = 0.0
    #: How long an idle processor re-checks its own queue before stealing
    #: from another processor's.  Models the dispatch-loop latency of the
    #: real scheduler; without it an idle simulated processor could snatch
    #: a task in the same instant it is enqueued for its target processor,
    #: which the real system's timing made essentially impossible.
    steal_patience_seconds: float = 0.5e-3


#: The canonical configuration used by experiments (calibrated constants are
#: filled in by :mod:`repro.lab.calibration` at import time of the lab).
DASH_CONFIG = DashParams()


class DashMachine(Machine):
    """Shared-memory machine: cluster mesh + directory cache model."""

    name = "dash"

    def __init__(
        self,
        num_processors: int,
        params: Optional[DashParams] = None,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
    ) -> None:
        super().__init__(num_processors, sim=sim, tracer=tracer, profiler=profiler)
        self.params = params or DashParams()
        self.mesh = ClusterMesh(num_processors, self.params.cluster_size)
        self.caches = DirectoryCacheModel(self.mesh, self.params.cache, self.stats)
        self.memory = MemoryMap(num_processors)

    # ------------------------------------------------------------------ #
    def place_object(self, object_id: int, nbytes: int, home_hint: Optional[int]) -> int:
        """Home a shared object in some cluster's memory module."""
        home = self.memory.place(object_id, home_hint)
        self.caches.set_home(object_id, home)
        return home

    def owner(self, object_id: int) -> int:
        """The processor whose memory module holds the object.

        This is what the shared-memory scheduler means by the "owner" of a
        locality object (§3.2.1): ownership is static allocation placement,
        unlike the message-passing machine's dynamic last-writer ownership.
        """
        return self.memory.home(object_id)

    def access_cost(self, processor: int, object_id: int, nbytes: int, write: bool) -> float:
        """Price one declared object access of an executing task."""
        if write:
            return self.caches.write(processor, object_id, nbytes)
        return self.caches.read(processor, object_id, nbytes)

    def same_cluster(self, a: int, b: int) -> bool:
        return self.mesh.same_cluster(a, b)

    def describe(self) -> str:
        return (
            f"dash({self.num_processors} processors, "
            f"{self.mesh.num_clusters} clusters of {self.params.cluster_size})"
        )
