"""DASH cache/coherence cost model.

DASH communicates implicitly: a task's loads and stores miss or hit in the
two-level caches, and misses are serviced locally or remotely by the
directory protocol.  The paper measures this communication as *time inside
task code* (Figures 6–9), so the model's job is to price a task's declared
object accesses in seconds, given where each object's data currently
resides.

The model tracks state at **object granularity** with **line arithmetic**:
for each shared object we record which processors hold a valid cached copy
and whether some cache holds it dirty; the cost of an access is then
``(object lines) × (per-line latency)`` with the per-line latency chosen
from the paper's Appendix B table:

=====================  ======= =====================================
state of the line      cycles  Appendix B description
=====================  ======= =====================================
own L1                 1       first-level cache
own L2                 15      second-level cache
other cache, cluster   29      cache of another processor in cluster
local memory           30      (bus access to the cluster's memory)
remote home, clean     101     home cluster of the data
remote, dirty          132     dirty in a third cluster
=====================  ======= =====================================

Object-granularity state is an approximation (real caches track 16-byte
lines), but it is *the* right approximation for Jade: the runtime's unit of
knowledge and of scheduling is the shared object, tasks touch whole objects,
and the paper's analysis (compute-per-object-byte ratios) works at the same
granularity.

Capacity is modelled with an LRU set per processor bounded by the 256 KB
second-level cache; objects evicted by capacity revert to their home memory
(write-back of dirty data is priced on the *next* accessor, like a real
directory forwarding request).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.machines.topology import ClusterMesh
from repro.sim.stats import StatRegistry


class LineState(enum.Enum):
    """Coherence state of an object's lines in some processor's cache."""

    INVALID = "invalid"
    SHARED = "shared"
    DIRTY = "dirty"


@dataclass
class CacheParams:
    """Latency and geometry constants (Appendix B of the paper)."""

    clock_hz: float = 33e6
    line_bytes: int = 16
    l2_capacity_bytes: int = 256 * 1024
    cycles_l1: float = 1.0
    cycles_l2: float = 15.0
    cycles_cluster_cache: float = 29.0
    cycles_local_memory: float = 30.0
    cycles_remote_home: float = 101.0
    cycles_remote_dirty: float = 132.0
    #: Multiplier applied to remote-miss costs to stand in for interconnect
    #: and directory contention, which grows with sharing.  DASH's measured
    #: latencies (101/132 cycles) are *uncontended*; under the all-blocks-
    #: bouncing traffic of Ocean's No Locality runs the effective cost per
    #: line is several times higher.  2.5 reproduces the paper's Figure 8
    #: separation without a full queueing model.
    contention_factor: float = 2.5


class DirectoryCacheModel:
    """Prices object accesses on DASH and tracks coherence state.

    The runtime calls :meth:`read` / :meth:`write` once per declared object
    access of each executing task; the returned seconds are added to the
    task's execution time (that is exactly what DASH's 60 ns counter
    measured around task bodies in the paper).
    """

    def __init__(
        self,
        mesh: ClusterMesh,
        params: Optional[CacheParams] = None,
        stats: Optional[StatRegistry] = None,
    ) -> None:
        self.mesh = mesh
        self.params = params or CacheParams()
        self.stats = stats if stats is not None else StatRegistry()
        #: per-processor LRU of object_id -> nbytes currently cached
        self._cached: Dict[int, "OrderedDict[int, int]"] = {
            p: OrderedDict() for p in range(mesh.num_processors)
        }
        #: object_id -> (state, holders) where holders is the set of
        #: processors with a valid copy; state DIRTY means exactly one holder.
        self._state: Dict[int, Tuple[LineState, Set[int]]] = {}
        #: object_id -> home processor (memory module), set on first access.
        self._home: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def set_home(self, object_id: int, processor: int) -> None:
        """Declare the memory module in which the object is allocated."""
        self._home[object_id] = processor

    def home(self, object_id: int) -> int:
        return self._home[object_id]

    def _lines(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.params.line_bytes))

    def _seconds(self, lines: int, cycles_per_line: float) -> float:
        return lines * cycles_per_line / self.params.clock_hz

    # ------------------------------------------------------------------ #
    def read(self, processor: int, object_id: int, nbytes: int) -> float:
        """Price a task's read of ``object_id`` from ``processor``; update state."""
        p = self.params
        lines = self._lines(nbytes)
        state, holders = self._state.get(object_id, (LineState.INVALID, set()))
        home = self._home.get(object_id, 0)
        my_cluster = self.mesh.cluster_of(processor)

        if processor in holders and object_id in self._cached[processor]:
            # Cache hit.  Model the resident object as mostly L1-hot with an
            # L2 component for the lines beyond the (64 KB) L1 — cheap and
            # bounded either way.
            cost = self._seconds(lines, p.cycles_l2 if nbytes > 64 * 1024 else p.cycles_l1)
            self.stats.counter("dash.read_hit").incr()
        else:
            cluster_holder = any(
                self.mesh.cluster_of(h) == my_cluster for h in holders
            )
            if state is LineState.DIRTY and holders:
                dirty_holder = next(iter(holders))
                if self.mesh.cluster_of(dirty_holder) == my_cluster:
                    cost = self._seconds(lines, p.cycles_cluster_cache)
                elif self.mesh.cluster_of(dirty_holder) == self.mesh.cluster_of(home):
                    cost = self._seconds(lines, p.cycles_remote_home * p.contention_factor)
                else:
                    cost = self._seconds(lines, p.cycles_remote_dirty * p.contention_factor)
                # Directory forwards and the data becomes shared.
                holders = set(holders)
            elif cluster_holder:
                cost = self._seconds(lines, p.cycles_cluster_cache)
            elif self.mesh.cluster_of(home) == my_cluster:
                cost = self._seconds(lines, p.cycles_local_memory)
            else:
                cost = self._seconds(lines, p.cycles_remote_home * p.contention_factor)
            self.stats.counter("dash.read_miss").incr()
            if self.mesh.cluster_of(home) != my_cluster:
                self.stats.accumulator("dash.remote_bytes").add(nbytes)

        holders = set(holders) | {processor}
        self._state[object_id] = (LineState.SHARED, holders)
        self._touch(processor, object_id, nbytes)
        self.stats.accumulator("dash.read_seconds").add(cost)
        return cost

    def write(self, processor: int, object_id: int, nbytes: int) -> float:
        """Price a task's write of ``object_id``; invalidate other copies."""
        p = self.params
        lines = self._lines(nbytes)
        state, holders = self._state.get(object_id, (LineState.INVALID, set()))
        home = self._home.get(object_id, 0)
        my_cluster = self.mesh.cluster_of(processor)

        if holders == {processor} and state is LineState.DIRTY and \
                object_id in self._cached[processor]:
            cost = self._seconds(lines, p.cycles_l2 if nbytes > 64 * 1024 else p.cycles_l1)
            self.stats.counter("dash.write_hit").incr()
        else:
            # Read-for-ownership: fetch the data (priced like a read miss)
            # and invalidate the other sharers (priced per remote sharer
            # cluster as one directory round-trip for the object).
            fetch = 0.0
            if processor not in holders or object_id not in self._cached[processor]:
                if state is LineState.DIRTY and holders and \
                        self.mesh.cluster_of(next(iter(holders))) != my_cluster:
                    fetch = self._seconds(lines, p.cycles_remote_dirty * p.contention_factor)
                elif self.mesh.cluster_of(home) == my_cluster:
                    fetch = self._seconds(lines, p.cycles_local_memory)
                else:
                    fetch = self._seconds(lines, p.cycles_remote_home * p.contention_factor)
                if self.mesh.cluster_of(home) != my_cluster:
                    self.stats.accumulator("dash.remote_bytes").add(nbytes)
            sharer_clusters = {
                self.mesh.cluster_of(h) for h in holders if h != processor
            }
            invalidate = self._seconds(
                lines, p.cycles_remote_home * 0.5
            ) * len(sharer_clusters - {my_cluster})
            cost = fetch + invalidate
            self.stats.counter("dash.write_miss").incr()

        self._state[object_id] = (LineState.DIRTY, {processor})
        for other in list(holders):
            if other != processor:
                self._cached[other].pop(object_id, None)
        self._touch(processor, object_id, nbytes)
        self.stats.accumulator("dash.write_seconds").add(cost)
        return cost

    # ------------------------------------------------------------------ #
    def _touch(self, processor: int, object_id: int, nbytes: int) -> None:
        """LRU-update the processor's cache and evict past L2 capacity."""
        lru = self._cached[processor]
        lru.pop(object_id, None)
        lru[object_id] = nbytes
        total = sum(lru.values())
        while total > self.params.l2_capacity_bytes and len(lru) > 1:
            victim, vbytes = lru.popitem(last=False)
            total -= vbytes
            state, holders = self._state.get(victim, (LineState.INVALID, set()))
            holders.discard(processor)
            if not holders:
                self._state[victim] = (LineState.INVALID, holders)
            else:
                self._state[victim] = (state, holders)
            self.stats.counter("dash.evictions").incr()

    # ------------------------------------------------------------------ #
    def holders(self, object_id: int) -> Set[int]:
        """Processors currently holding a valid copy (test helper)."""
        return set(self._state.get(object_id, (LineState.INVALID, set()))[1])

    def object_state(self, object_id: int) -> LineState:
        return self._state.get(object_id, (LineState.INVALID, set()))[0]
