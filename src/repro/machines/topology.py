"""Interconnect topologies: hypercube (iPSC/860) and mesh of clusters (DASH).

The topologies answer three questions for the machine models:

* how far apart are two nodes (hop count, for per-hop latency);
* what spanning tree does a broadcast follow (for broadcast cost and for
  modelling the stage-by-stage dimension-exchange broadcast the iPSC/860's
  NX/2 library used);
* which processors share a cluster (DASH prices intra-cluster accesses
  differently from remote-cluster ones).

``networkx`` is used only for validation in the test-suite; the hot paths
here are pure integer arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import MachineError, RoutingError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Hypercube:
    """A binary hypercube over ``size`` nodes.

    The iPSC/860 scales "from 8 to 128 processors in powers of 2"
    (Appendix A).  We additionally allow any power of two ≥ 1 so that the
    paper's 1/2/4-processor runs simulate on the same model.

    >>> cube = Hypercube(8)
    >>> cube.dimension
    3
    >>> cube.distance(0, 7)
    3
    >>> cube.route(0, 5)
    [0, 1, 5]
    """

    def __init__(self, size: int) -> None:
        if not _is_power_of_two(size):
            raise MachineError(f"hypercube size must be a power of two, got {size}")
        self.size = size
        self.dimension = int(math.log2(size))

    def nodes(self) -> range:
        return range(self.size)

    def neighbors(self, node: int) -> List[int]:
        """The ``dimension`` nodes differing from ``node`` in one bit."""
        self._check(node)
        return [node ^ (1 << d) for d in range(self.dimension)]

    def distance(self, a: int, b: int) -> int:
        """Hop count = Hamming distance of the node labels."""
        self._check(a)
        self._check(b)
        return bin(a ^ b).count("1")

    def route(self, src: int, dst: int) -> List[int]:
        """E-cube (dimension-ordered) route from ``src`` to ``dst``, inclusive.

        E-cube routing corrects differing address bits lowest-dimension
        first; it is deadlock-free and is what the iPSC hardware used.
        """
        self._check(src)
        self._check(dst)
        path = [src]
        current = src
        diff = src ^ dst
        for d in range(self.dimension):
            if diff & (1 << d):
                current ^= 1 << d
                path.append(current)
        if current != dst:  # pragma: no cover - defensive, unreachable
            raise RoutingError(f"e-cube routing failed {src}->{dst}")
        return path

    def broadcast_schedule(self, root: int) -> List[List[Tuple[int, int]]]:
        """Spanning-binomial-tree broadcast as dimension-exchange stages.

        Returns one list of ``(sender, receiver)`` pairs per stage; after
        stage *k* the nodes holding the datum are exactly those whose label
        differs from ``root`` only in the first *k* dimensions.  This is the
        classic ``log2(P)``-stage broadcast whose cost the paper quotes
        (0.31 s for Water's 165,888-byte object on 32 nodes vs 2.17 s for
        31 serial sends).

        >>> Hypercube(4).broadcast_schedule(0)
        [[(0, 1)], [(0, 2), (1, 3)]]
        """
        self._check(root)
        stages: List[List[Tuple[int, int]]] = []
        holders = [root]
        for d in range(self.dimension):
            stage = [(h, h ^ (1 << d)) for h in holders]
            stages.append(stage)
            holders = holders + [r for _, r in stage]
        return stages

    def _check(self, node: int) -> None:
        if not 0 <= node < self.size:
            raise RoutingError(f"node {node} outside hypercube of size {self.size}")


class ClusterMesh:
    """DASH's organisation: a 2D mesh of clusters, four processors each.

    DASH connected SGI 4D/340 clusters (4 processors per cluster) by a pair
    of wormhole-routed meshes.  For the cost model only two facts matter:
    which processors share a cluster, and the (small, distance-insensitive
    at our granularity) remote latencies; the mesh coordinates are kept for
    completeness and for the network-distance statistics.

    >>> mesh = ClusterMesh(num_processors=32, cluster_size=4)
    >>> mesh.num_clusters
    8
    >>> mesh.cluster_of(5)
    1
    >>> mesh.processors_in_cluster(1)
    range(4, 8)
    """

    def __init__(self, num_processors: int, cluster_size: int = 4) -> None:
        if num_processors <= 0:
            raise MachineError(f"need at least one processor, got {num_processors}")
        if cluster_size <= 0:
            raise MachineError(f"cluster size must be positive, got {cluster_size}")
        self.num_processors = num_processors
        self.cluster_size = cluster_size
        self.num_clusters = (num_processors + cluster_size - 1) // cluster_size
        # Arrange clusters in the most-square mesh that fits.
        self.mesh_width = max(1, int(math.ceil(math.sqrt(self.num_clusters))))
        self.mesh_height = int(math.ceil(self.num_clusters / self.mesh_width))

    def cluster_of(self, processor: int) -> int:
        self._check(processor)
        return processor // self.cluster_size

    def processors_in_cluster(self, cluster: int) -> range:
        if not 0 <= cluster < self.num_clusters:
            raise MachineError(f"cluster {cluster} out of range")
        lo = cluster * self.cluster_size
        hi = min(lo + self.cluster_size, self.num_processors)
        return range(lo, hi)

    def same_cluster(self, a: int, b: int) -> bool:
        return self.cluster_of(a) == self.cluster_of(b)

    def cluster_coords(self, cluster: int) -> Tuple[int, int]:
        """(x, y) position of a cluster on the mesh."""
        if not 0 <= cluster < self.num_clusters:
            raise MachineError(f"cluster {cluster} out of range")
        return cluster % self.mesh_width, cluster // self.mesh_width

    def mesh_distance(self, a: int, b: int) -> int:
        """Manhattan distance between the clusters of two processors."""
        ax, ay = self.cluster_coords(self.cluster_of(a))
        bx, by = self.cluster_coords(self.cluster_of(b))
        return abs(ax - bx) + abs(ay - by)

    def _check(self, processor: int) -> None:
        if not 0 <= processor < self.num_processors:
            raise MachineError(
                f"processor {processor} outside machine of {self.num_processors}"
            )
