"""Heterogeneous workstation farm: the paper's third platform.

"Jade implementations exist for shared memory machines (the Stanford DASH
machine), message passing machines (the Intel iPSC/860) and heterogeneous
collections of workstations.  Jade programs port without modification
between all platforms." (§1)

The farm models a 1995 department network: workstations of different
speeds on a shared 10 Mbit/s Ethernet segment.  Two properties distinguish
it from the iPSC/860 and exercise different corners of the runtime:

* **the network is a single shared medium** — every message (any pair of
  nodes) serializes through one bus, and a *broadcast* is one transmission
  received by everyone (Ethernet's natural broadcast, far cheaper than the
  hypercube's log₂(P) stages);
* **nodes differ in speed** — the same task costs different time on
  different workstations, so placement quality has a second dimension the
  Jade scheduler does not see (it balances task counts, not work), which
  is exactly how the real heterogeneous port behaved.

The message-passing Jade runtime runs unmodified on this machine: it only
needs the ``network``/``params``/``active_nodes``/``compute_seconds``
surface that :class:`Ipsc860Machine` also provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import MachineError
from repro.machines.base import Machine
from repro.machines.ipsc860 import IpscParams
from repro.sim.engine import Signal, Simulator
from repro.sim.resources import FifoResource
from repro.sim.stats import StatRegistry
from repro.sim.trace import Tracer


@dataclass
class EthernetParams:
    """Shared-bus constants (10 Mbit/s Ethernet, early-90s TCP stacks)."""

    #: Sender-side protocol overhead per message (seconds).
    alpha_send: float = 1.0e-3
    #: Receiver-side protocol overhead per message (seconds).
    alpha_recv: float = 0.8e-3
    #: Bus time per payload byte (10 Mbit/s ≈ 1.25 MB/s raw; effective
    #: ≈ 1 MB/s with framing).
    per_byte: float = 1.0e-6


class BusNetwork:
    """A single shared medium with the same API as :class:`Network`.

    Every message occupies the bus for ``alpha_send + nbytes·per_byte``;
    delivery happens at bus-slot end plus receiver overhead.  A broadcast
    is one bus occupancy delivered to every target simultaneously.
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        params: Optional[EthernetParams] = None,
        stats: Optional[StatRegistry] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
    ) -> None:
        self.sim = sim
        self.num_nodes = num_nodes
        self.params = params or EthernetParams()
        self.stats = stats if stats is not None else StatRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Cached no-trace predicate for the per-message delivery path
        #: (``enabled`` is fixed at construction).
        self._trace_on = self.tracer.enabled
        #: Optional observability collector; ``None`` disables all hooks.
        self.profiler = profiler
        self._bus = FifoResource(sim, "ethernet")

    # -- cost queries ----------------------------------------------------
    def send_occupancy(self, nbytes: int) -> float:
        return self.params.alpha_send + nbytes * self.params.per_byte

    def point_to_point_time(self, src: int, dst: int, nbytes: int) -> float:
        return self.send_occupancy(nbytes) + self.params.alpha_recv

    # -- sending -----------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int, kind: str,
             on_delivered: Optional[Callable] = None, payload=None) -> Signal:
        prof = self.profiler
        delivered = Signal(self.sim, f"bus.{src}->{dst}.{kind}")
        sent_at = self.sim.now
        if prof is not None:
            prof.on_message_sent(sent_at)
        if src == dst:
            self.sim.schedule(self.params.alpha_recv, self._deliver,
                              src, dst, nbytes, kind, sent_at, delivered,
                              on_delivered, payload)
            return delivered

        def _slot_done(start: float, finish: float) -> None:
            if prof is not None:
                # The shared bus is the only "link" a farm has; charge the
                # slot to the sender's tx side so utilization has an owner.
                prof.on_link_busy(src, "tx", start, finish - start)
            self.sim.schedule(self.params.alpha_recv, self._deliver,
                              src, dst, nbytes, kind, sent_at, delivered,
                              on_delivered, payload)

        self._bus.submit(self.send_occupancy(nbytes), _slot_done)
        return delivered

    def _deliver(self, src, dst, nbytes, kind, sent_at, delivered,
                 on_delivered, payload) -> None:
        self.stats.counter("net.messages").incr()
        self.stats.counter(f"net.messages.{kind}").incr()
        self.stats.accumulator("net.bytes").add(nbytes)
        self.stats.accumulator(f"net.bytes.{kind}").add(nbytes)
        if self._trace_on:
            self.tracer.span(sent_at, self.sim.now, "message", kind,
                             src=src, dst=dst, nbytes=nbytes)
        if self.profiler is not None:
            self.profiler.on_message(self.sim.now, src, dst, nbytes, kind,
                                     self.sim.now - sent_at)
        if on_delivered is not None:
            on_delivered(payload)
        delivered.fire(payload)

    def broadcast(self, root: int, nbytes: int, kind: str,
                  on_delivered: Optional[Callable] = None, payload=None,
                  targets: Optional[Sequence[int]] = None) -> Signal:
        """One bus transmission, heard by every target (Ethernet broadcast)."""
        done = Signal(self.sim, f"bus.bcast.{root}.{kind}")
        nodes = [n for n in (targets if targets is not None
                             else range(self.num_nodes)) if n != root]
        if not nodes:
            self.sim.schedule(0.0, done.fire, payload)
            return done
        self.stats.counter("net.broadcasts").incr()
        prof = self.profiler
        sent_at = self.sim.now
        if prof is not None:
            prof.on_message_sent(sent_at)

        def _slot_done(start: float, finish: float) -> None:
            if prof is not None:
                prof.on_link_busy(root, "tx", start, finish - start)

            def _arrive() -> None:
                self.stats.counter("net.messages").incr()
                self.stats.counter(f"net.messages.{kind}").incr()
                self.stats.accumulator("net.bytes").add(nbytes)
                self.stats.accumulator(f"net.bytes.{kind}").add(nbytes)
                if self._trace_on:
                    self.tracer.span(sent_at, self.sim.now, "message", kind,
                                     src=root, dst=root, nbytes=nbytes)
                if prof is not None:
                    # One bus transmission heard by everyone counts as one
                    # message (matching the ``net.messages`` counter); it
                    # lands on the matrix diagonal so totals reconcile.
                    prof.on_message(self.sim.now, root, root, nbytes, kind,
                                    self.sim.now - sent_at)
                for node in nodes:
                    if on_delivered is not None:
                        on_delivered(node, payload)
                done.fire(payload)

            self.sim.schedule(self.params.alpha_recv, _arrive)

        self._bus.submit(self.send_occupancy(nbytes), _slot_done)
        return done


class WorkstationFarm(Machine):
    """A heterogeneous collection of workstations on shared Ethernet."""

    name = "workstations"

    def __init__(
        self,
        speeds: Sequence[float],
        params: Optional[IpscParams] = None,
        ethernet: Optional[EthernetParams] = None,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        profiler: Optional[object] = None,
    ) -> None:
        if not speeds:
            raise MachineError("a farm needs at least one workstation")
        if any(s <= 0 for s in speeds):
            raise MachineError("workstation speed factors must be positive")
        super().__init__(len(speeds), sim=sim, tracer=tracer, profiler=profiler)
        #: Relative speed per node: 1.0 = the calibration baseline; a
        #: node with speed 2.0 runs task bodies twice as fast.
        self.speeds: List[float] = [float(s) for s in speeds]
        self.params = params or IpscParams()
        self.network = BusNetwork(self.sim, len(speeds), ethernet,
                                  self.stats, self.tracer,
                                  profiler=self.profiler)

    @property
    def active_nodes(self) -> List[int]:
        return list(range(self.num_processors))

    def compute_seconds(self, node: int, cost: float) -> float:
        """Scale a task's baseline cost by the node's speed."""
        return cost / self.speeds[node]

    def describe(self) -> str:
        return (f"workstations({self.num_processors} nodes, speeds "
                f"{min(self.speeds):.2g}-{max(self.speeds):.2g})")
