"""Stable plain-text rendering of a run profile.

The report is what ``repro profile`` (and ``repro run --profile``) prints:
a header, the per-processor utilization breakdown, the communication
matrix, the hot-object table, and a one-paragraph timeline summary.  Like
``repro.lab.tables`` it is dependency-free and deterministic so it can be
asserted on in tests and diffed between runs.
"""

from __future__ import annotations

from typing import List

from repro.util.units import bytes_human


def _seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.1f}"
    if value >= 0.01 or value == 0.0:
        return f"{value:.3f}"
    return f"{value:.2e}"


def render_profile(profile, matrix_limit: int = 16, objects_limit: int = 10) -> str:
    """Render the full profile report as stable text."""
    m = profile.metrics
    out: List[str] = []
    scale = f", scale={profile.scale}" if profile.scale else ""
    options = m.options.describe() if m.options else "default"
    out.append(f"profile: {m.application} on {m.machine}, "
               f"{m.num_processors} processors [{options}{scale}]")
    out.append(
        f"  elapsed {_seconds(m.elapsed)} s | {m.tasks_executed} tasks, "
        f"{m.serial_sections_executed} serial sections | "
        f"locality {m.task_locality_pct:.1f}% | "
        f"{m.total_messages} messages, {bytes_human(m.total_bytes)}")
    out.append("")

    out.append("per-processor utilization (seconds)")
    header = (f"  {'proc':>4} {'busy':>10} {'compute':>10} {'serial':>10} "
              f"{'mem-comm':>10} {'mgmt':>10} {'idle':>10} {'busy%':>7} "
              f"{'tasks':>6}")
    out.append(header)
    out.append("  " + "-" * (len(header) - 2))
    for row in profile.utilization:
        out.append(
            f"  {row['proc']:>4} {_seconds(row['busy']):>10} "
            f"{_seconds(row['compute']):>10} {_seconds(row['serial']):>10} "
            f"{_seconds(row['memory_comm']):>10} {_seconds(row['mgmt']):>10} "
            f"{_seconds(row['idle']):>10} {100 * row['busy_fraction']:>6.1f}% "
            f"{row['tasks']:>6}")
    out.append("")

    if profile.critical is not None:
        from repro.obs.critical import render_critical_path

        out.append(render_critical_path(profile.critical))
        out.append("")
    from repro.obs.attrib import render_attribution

    out.append(render_attribution(m))
    out.append("")
    out.append(render_comm_matrix(profile, limit=matrix_limit))
    out.append("")
    out.append(render_hot_objects(profile, limit=objects_limit))
    out.append("")
    out.append(render_timeline_summary(profile))
    return "\n".join(out)


def render_comm_matrix(profile, limit: int = 16) -> str:
    """The src×dst message/byte matrix; large machines list top pairs."""
    n = profile.metrics.num_processors
    total_msgs = profile.total_matrix_messages
    out = [f"communication matrix ({total_msgs} messages, "
           f"{bytes_human(profile.total_matrix_bytes)})"]
    if total_msgs == 0:
        out.append("  (no messages — shared-memory machine or empty run)")
        return "\n".join(out)
    if n <= limit:
        header = "  src\\dst" + "".join(f"{d:>9}" for d in range(n))
        out.append(header)
        for src in range(n):
            cells = "".join(
                f"{profile.comm_messages[src][dst] or '.':>9}"
                for dst in range(n))
            out.append(f"  {src:>7}" + cells)
    else:
        pairs = sorted(
            ((profile.comm_messages[s][d], profile.comm_bytes[s][d], s, d)
             for s in range(n) for d in range(n)
             if profile.comm_messages[s][d]),
            key=lambda item: (-item[0], item[2], item[3]))
        out.append(f"  top {min(limit, len(pairs))} of {len(pairs)} "
                   f"communicating pairs:")
        for count, nbytes, src, dst in pairs[:limit]:
            out.append(f"  {src:>4} -> {dst:<4} {count:>8} msgs  "
                       f"{bytes_human(nbytes):>12}")
    return "\n".join(out)


def render_hot_objects(profile, limit: int = 10) -> str:
    """The hot-object table, ranked by bytes moved (then DASH memory time)."""
    hot = profile.hot_objects(limit)
    out = [f"hot objects (top {len(hot)} of {len(profile.objects)})"]
    if not hot:
        out.append("  (no shared-object traffic recorded)")
        return "\n".join(out)
    header = (f"  {'object':<26} {'fetches':>8} {'bcasts':>7} {'eager':>6} "
              f"{'moved':>12} {'vers':>5} {'mem-time':>10}")
    out.append(header)
    out.append("  " + "-" * (len(header) - 2))
    for obj in hot:
        out.append(
            f"  {obj.name[:26]:<26} {obj.fetches:>8} {obj.broadcasts:>7} "
            f"{obj.eager_updates:>6} {bytes_human(obj.bytes_moved):>12} "
            f"{obj.versions:>5} {_seconds(obj.comm_seconds):>10}")
    return "\n".join(out)


def render_timeline_summary(profile) -> str:
    """One-paragraph description of the resampled time series."""
    timeline = profile.timeline
    samples = timeline.get("samples", [])
    out = [f"timeline ({len(samples)} samples, "
           f"interval {_seconds(timeline.get('interval', 0.0))} s)"]
    if not samples:
        out.append("  (zero-length run — nothing sampled)")
        return "\n".join(out)
    peaks = timeline.get("peaks", {})
    ready = [row["ready_tasks"] for row in samples]
    inflight = [row["inflight_messages"] for row in samples]
    out.append(
        f"  ready-queue depth: mean {sum(ready) / len(ready):.2f}, "
        f"peak {peaks.get('ready_tasks', max(ready)):.0f}")
    out.append(
        f"  in-flight messages: mean {sum(inflight) / len(inflight):.2f}, "
        f"peak {peaks.get('inflight_messages', max(inflight)):.0f}")
    links = samples[-1].get("link_utilization", {})
    if links:
        totals = {name: sum(row["link_utilization"].get(name, 0.0)
                            for row in samples) / len(samples)
                  for name in links}
        busiest = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        rendered = ", ".join(f"{name} {100 * util:.1f}%"
                             for name, util in busiest)
        out.append(f"  busiest links (mean utilization): {rendered}")
    return "\n".join(out)
