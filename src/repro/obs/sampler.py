"""Time-series sampling over simulated time, without touching the event queue.

A naive periodic sampler would schedule itself on the simulator, which has
two problems: the run only terminates when the event queue drains (a
self-rescheduling sampler never lets it), and the sampler's own events can
advance the clock past the last real event, distorting ``elapsed``.

Instead the observability hooks record *change points* (queue depth moved,
a message departed/arrived) and *busy intervals* (a NIC served a message)
as they happen, and the profiler resamples those records onto a periodic
simulated-time grid after the run.  The output is identical to what an
in-simulation periodic sampler would have seen, with zero effect on the
event stream — which is what keeps profiled runs byte-identical to
unprofiled ones.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple


class StepTrack:
    """A piecewise-constant series recorded as ``(time, value)`` change points.

    Change points must arrive in nondecreasing time order (simulation time
    only moves forward); same-time updates overwrite, so a sample at ``t``
    reads the last value set at or before ``t``.
    """

    __slots__ = ("name", "points")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.points and self.points[-1][0] == time:
            self.points[-1] = (time, value)
        else:
            self.points.append((time, value))

    def sample(self, time: float) -> float:
        """Value of the series at ``time`` (0.0 before the first point)."""
        index = bisect.bisect_right(self.points, (time, float("inf"))) - 1
        return self.points[index][1] if index >= 0 else 0.0

    def peak(self) -> float:
        return max((v for _t, v in self.points), default=0.0)

    def __len__(self) -> int:
        return len(self.points)


class IntervalTrack:
    """Busy intervals ``[start, start + duration)`` of one server (a NIC).

    Records arrive in nondecreasing *completion* order and never overlap
    (a FIFO resource serves one job at a time), which keeps
    :meth:`busy_within` a simple clipped sum.
    """

    __slots__ = ("name", "intervals", "total")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.intervals: List[Tuple[float, float]] = []
        self.total = 0.0

    def record(self, start: float, duration: float) -> None:
        if duration > 0:
            self.intervals.append((start, duration))
            self.total += duration

    def busy_within(self, t0: float, t1: float) -> float:
        """Seconds of service delivered inside the window ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        busy = 0.0
        # Find the first interval that could overlap the window.
        index = bisect.bisect_left(self.intervals, (t0, 0.0))
        if index > 0 and self.intervals[index - 1][0] + self.intervals[index - 1][1] > t0:
            index -= 1
        for start, duration in self.intervals[index:]:
            if start >= t1:
                break
            busy += max(0.0, min(start + duration, t1) - max(start, t0))
        return busy

    def utilization(self, t0: float, t1: float) -> float:
        return self.busy_within(t0, t1) / (t1 - t0) if t1 > t0 else 0.0


def sample_grid(horizon: float, interval: Optional[float] = None,
                samples: int = 50) -> Tuple[float, List[float]]:
    """The periodic sampling grid: ``(interval, [t_0, t_1, ...])``.

    Without an explicit ``interval`` the horizon is divided into
    ``samples`` equal windows, so profile sizes stay bounded regardless
    of simulated duration.  A zero horizon yields an empty grid.
    """
    if horizon <= 0.0:
        return 0.0, []
    if interval is None or interval <= 0.0:
        interval = horizon / max(1, samples)
    times = []
    t = interval
    while t < horizon + interval / 2:
        times.append(min(t, horizon))
        t += interval
    if not times or times[-1] < horizon:
        times.append(horizon)
    return interval, times


def build_timeline(
    horizon: float,
    ready: StepTrack,
    inflight: StepTrack,
    links: Dict[str, IntervalTrack],
    interval: Optional[float] = None,
    samples: int = 50,
) -> Dict[str, object]:
    """Resample the recorded tracks onto a periodic grid.

    Each output sample covers the window ending at its timestamp: step
    tracks report their value *at* the timestamp, link tracks report their
    utilization *over* the window.  Link keys (``tx0``, ``rx3``, ...) are
    emitted sorted for stable output.
    """
    dt, times = sample_grid(horizon, interval, samples)
    link_names = sorted(links)
    rows = []
    prev = 0.0
    for t in times:
        rows.append({
            "t": t,
            "ready_tasks": ready.sample(t),
            "inflight_messages": inflight.sample(t),
            "link_utilization": {
                name: links[name].utilization(prev, t) for name in link_names
            },
        })
        prev = t
    return {
        "interval": dt,
        "horizon": horizon,
        "samples": rows,
        "peaks": {
            "ready_tasks": ready.peak(),
            "inflight_messages": inflight.peak(),
        },
    }
