"""Engine flight recorder: a bounded interval sampler inside the Simulator.

The profile snapshot already carries *end-of-run* aggregates (totals,
per-optimization attribution, critical path), but nothing answers "what
was the engine doing at t=0.8s?" — was the event queue deep, were many
messages in flight, had the broadcast optimization kicked in yet?  A
:class:`FlightRecorder` answers that with a time series sampled as the
simulation runs, exported as the ``flight`` section of a ``repro.obs/4``
profile snapshot.

Two properties drive the design:

**Zero perturbation.**  The recorder only ever *reads* simulator state —
it never schedules events, touches an RNG, or feeds anything back into
the run.  Attaching one therefore cannot change what the simulation
computes, and :mod:`tests.test_flight` enforces this with byte-identity:
the metrics document of a run with a recorder attached must equal, byte
for byte, the document of a run without one.  The hook itself follows
the ``sim.perturb`` precedent — a single ``is not None`` predicate in
:meth:`Simulator.step`, so runs without a recorder pay one branch.

**Bounded memory with full-run coverage.**  A fixed-capacity buffer that
simply stops sampling would only show the start of a long run; a true
ring buffer would only show the end.  Instead the recorder *decimates*:
when the buffer fills, every other sample is dropped and the sampling
interval doubles.  The result always spans the whole run at the finest
resolution that fits in ``capacity`` samples — the classic adaptive
trick of flight-data recorders.  Decimation is a deterministic function
of simulated time, so identical runs produce identical sample series.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class FlightRecorder:
    """Samples engine state at a (self-adapting) simulated-time interval.

    Parameters
    ----------
    capacity:
        Maximum number of retained samples.  When the buffer fills, the
        recorder halves it (keeping every other sample) and doubles the
        sampling interval, so memory stays bounded while the series
        always covers the whole run.
    interval:
        Initial sampling interval in simulated seconds.  The default is
        effectively "every event" until decimation finds the run's
        natural timescale; pass something coarser to start wide.

    Usage: ``recorder.install(machine.sim)`` before the run; the runtime
    calls :meth:`attach` with its :class:`~repro.runtime.metrics.RunMetrics`
    (for attribution counters) and the machine's profile collector (for
    the in-flight message gauge) when available.  After the run,
    :meth:`to_dict` yields the ``flight`` section for the snapshot.
    """

    def __init__(self, capacity: int = 256, interval: float = 1e-6) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity!r}")
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.capacity = int(capacity)
        self.interval = float(interval)
        self.decimations = 0
        self.samples: List[Dict[str, Any]] = []
        self.metrics: Optional[Any] = None
        self.collector: Optional[Any] = None
        self._next = 0.0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def install(self, sim: Any) -> "FlightRecorder":
        """Point ``sim.flight`` at this recorder; returns self."""
        sim.flight = self
        return self

    def attach(self, metrics: Any = None, collector: Any = None) -> None:
        """Give the recorder read-only views of runtime state.

        Called by the runtime once its :class:`RunMetrics` exists (and by
        whoever owns a :class:`ProfileCollector`).  Both are optional —
        samples taken before/without them carry ``None`` for the fields
        they back.
        """
        if metrics is not None:
            self.metrics = metrics
        if collector is not None:
            self.collector = collector

    # ------------------------------------------------------------------ #
    # sampling (called from Simulator.step after each fired event)
    # ------------------------------------------------------------------ #
    def on_event(self, sim: Any) -> None:
        if sim.now < self._next:
            return
        sample: Dict[str, Any] = {
            "t": sim.now,
            "events_fired": sim.events_fired,
            "queue_depth": sim.pending_events,
            "inflight": (self.collector._inflight_count
                         if self.collector is not None else None),
            "attribution": (dict(self.metrics.attribution())
                            if self.metrics is not None else None),
        }
        self.samples.append(sample)
        self._next = sim.now + self.interval
        if len(self.samples) >= self.capacity:
            # Keep every other sample and sample half as often from here
            # on: the series still spans t=0..now, at half the resolution.
            self.samples = self.samples[::2]
            self.interval *= 2.0
            self.decimations += 1

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The ``flight`` section of a ``repro.obs/4`` profile snapshot."""
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "decimations": self.decimations,
            "samples": [dict(sample) for sample in self.samples],
        }
