"""Per-optimization attribution: which §3.4 mechanism did (or saved) what.

The raw counters live on :class:`~repro.runtime.metrics.RunMetrics` and are
accumulated unconditionally by the runtimes and the communicator — plain
integer/float adds on paths that already update other metrics, so there is
no "attribution mode" whose state could perturb a run.  This module is the
read side: the reconciliation invariants that tie the attribution buckets
to the aggregate totals the paper reports, and the stable text rendering
used by ``repro profile``.

The invariants (checked by :func:`verify_attribution`, asserted across the
whole app×machine matrix in the test-suite):

* every shared-object transfer message is attributed to exactly one
  mechanism: ``fetches_remote + broadcast_deliveries + eager_updates ==
  object_messages``;
* so is every byte: ``fetch_bytes + broadcast_bytes + eager_update_bytes
  == object_bytes``;
* a broadcast saves exactly one point-to-point request per receiver, so
  ``broadcast_sends_saved == broadcast_deliveries``;
* overlap attributions are real time found inside measured waits:
  ``0 <= latency_hiding_overlap <= task_latency_total`` and
  ``0 <= concurrent_fetch_overlap <= object_latency_total``;
* fault/recovery counters are non-negative, zero in a fault-free run
  (no fault plan installed ⇒ no drops, no retransmissions, no ack
  traffic), and consistent with each other: suppressed duplicates
  require a source (a retransmission or an injected duplicate), and
  recovery stall requires at least one retransmission.
"""

from __future__ import annotations

from typing import List

from repro.runtime.metrics import RunMetrics

#: Absolute tolerance for byte/second reconciliations.  The quantities are
#: sums of the same integers/floats accumulated on different code paths,
#: so they agree exactly in practice; the epsilon only guards against
#: benign last-bit float effects.
_EPS = 1e-6


def verify_attribution(metrics: RunMetrics) -> List[str]:
    """Check the attribution↔totals reconciliation invariants.

    Returns a list of human-readable problems, empty when every bucket
    reconciles with the aggregate ``RunMetrics`` totals.
    """
    problems: List[str] = []
    msg_sum = (metrics.fetches_remote + metrics.broadcast_deliveries
               + metrics.eager_updates)
    if msg_sum != metrics.object_messages:
        problems.append(
            f"fetches_remote({metrics.fetches_remote}) + "
            f"broadcast_deliveries({metrics.broadcast_deliveries}) + "
            f"eager_updates({metrics.eager_updates}) = {msg_sum} "
            f"!= object_messages({metrics.object_messages})")
    byte_sum = (metrics.fetch_bytes + metrics.broadcast_bytes
                + metrics.eager_update_bytes)
    if abs(byte_sum - metrics.object_bytes) > _EPS:
        problems.append(
            f"fetch_bytes({metrics.fetch_bytes}) + "
            f"broadcast_bytes({metrics.broadcast_bytes}) + "
            f"eager_update_bytes({metrics.eager_update_bytes}) = {byte_sum} "
            f"!= object_bytes({metrics.object_bytes})")
    if metrics.broadcast_sends_saved != metrics.broadcast_deliveries:
        problems.append(
            f"broadcast_sends_saved({metrics.broadcast_sends_saved}) != "
            f"broadcast_deliveries({metrics.broadcast_deliveries})")
    for name, value in (
        ("locality_hits", metrics.locality_hits),
        ("replication_hits", metrics.replication_hits),
        ("fetch_joins", metrics.fetch_joins),
        ("concurrent_fetch_overlap", metrics.concurrent_fetch_overlap),
        ("latency_hiding_overlap", metrics.latency_hiding_overlap),
    ):
        if value < 0:
            problems.append(f"{name} is negative: {value}")
    if metrics.latency_hiding_overlap > metrics.task_latency_total + _EPS:
        problems.append(
            f"latency_hiding_overlap({metrics.latency_hiding_overlap}) "
            f"exceeds task_latency_total({metrics.task_latency_total})")
    if metrics.concurrent_fetch_overlap > metrics.object_latency_total + _EPS:
        problems.append(
            f"concurrent_fetch_overlap({metrics.concurrent_fetch_overlap}) "
            f"exceeds object_latency_total({metrics.object_latency_total})")

    # Fault / reliable-delivery reconciliation -------------------------
    for name, value in (
        ("messages_dropped", metrics.messages_dropped),
        ("messages_duplicated", metrics.messages_duplicated),
        ("retransmissions", metrics.retransmissions),
        ("duplicates_suppressed", metrics.duplicates_suppressed),
        ("ack_bytes", metrics.ack_bytes),
        ("recovery_stall_us", metrics.recovery_stall_us),
    ):
        if value < 0:
            problems.append(f"{name} is negative: {value}")
    # Every suppressed arrival is an extra wire copy of a data message,
    # and extra copies only come from the ARQ layer retransmitting or the
    # fault plan duplicating.
    extra_copies = metrics.retransmissions + metrics.messages_duplicated
    if metrics.duplicates_suppressed > extra_copies:
        problems.append(
            f"duplicates_suppressed({metrics.duplicates_suppressed}) exceeds "
            f"retransmissions({metrics.retransmissions}) + "
            f"messages_duplicated({metrics.messages_duplicated})")
    # Recovery stall is only accumulated on entries that retransmitted.
    if metrics.recovery_stall_us > 0 and metrics.retransmissions == 0:
        problems.append(
            f"recovery_stall_us({metrics.recovery_stall_us}) without any "
            "retransmissions")
    return problems


def render_attribution(metrics: RunMetrics) -> str:
    """Stable text block: what each optimization did in this run."""
    a = metrics.attribution()
    needs = (metrics.locality_hits + metrics.replication_hits
             + metrics.fetch_joins + metrics.fetches_remote)

    def pct(part: float) -> str:
        return f"{100.0 * part / needs:5.1f}%" if needs else "    -"

    out = ["per-optimization attribution"]
    out.append(f"  object needs served          {needs:>10}")
    out.append(f"    locality (owner-local)     {metrics.locality_hits:>10} "
               f"{pct(metrics.locality_hits)}")
    out.append(f"    replication (copy-local)   {metrics.replication_hits:>10} "
               f"{pct(metrics.replication_hits)}")
    out.append(f"    joined in-flight fetch     {metrics.fetch_joins:>10} "
               f"{pct(metrics.fetch_joins)}")
    out.append(f"    remote fetch               {metrics.fetches_remote:>10} "
               f"{pct(metrics.fetches_remote)}")
    out.append(f"  adaptive broadcast           {metrics.broadcasts:>10} ops, "
               f"{metrics.broadcast_deliveries} deliveries, "
               f"{metrics.broadcast_sends_saved} requests saved")
    out.append(f"  eager updates                {metrics.eager_updates:>10} "
               f"pushes")
    out.append(f"  concurrent-fetch overlap     {a['concurrent_fetch_overlap']:>10.6g} s")
    out.append(f"  latency-hiding overlap       {a['latency_hiding_overlap']:>10.6g} s")
    if (metrics.messages_dropped or metrics.messages_duplicated
            or metrics.retransmissions or metrics.duplicates_suppressed):
        out.append(f"  faults injected              "
                   f"{metrics.messages_dropped:>10} drops, "
                   f"{metrics.messages_duplicated} duplicates")
        out.append(f"  reliable delivery            "
                   f"{metrics.retransmissions:>10} retransmissions, "
                   f"{metrics.duplicates_suppressed} suppressed, "
                   f"{metrics.ack_bytes:.0f} ack bytes")
        out.append(f"  recovery stall               "
                   f"{metrics.recovery_stall_us:>10.6g} us")
    return "\n".join(out)
