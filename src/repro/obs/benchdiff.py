"""``repro bench-diff`` — the benchmark regression gate.

Compares two schema-versioned snapshots (``repro.bench/1`` envelopes or
``repro.obs/*`` profile snapshots), flattens every numeric leaf to a
dotted path (``metrics.elapsed``, ``data.rows[3].elapsed``), prints a
per-metric delta table, and exits nonzero when any metric moved past the
threshold.  Because every quantity in a snapshot is *simulated* —
deterministic event counts and simulated seconds, never host wall-clock —
a committed baseline compares exactly across machines and Python
versions: any delta at all is a real behavior change, and the threshold
only decides how large a change fails CI.

Exit codes: ``0`` no regression, ``1`` at least one metric regressed past
the threshold, ``2`` usage / I/O / schema error.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def flatten_numeric(doc: Any, prefix: str = "") -> Dict[str, float]:
    """Flatten a snapshot's numeric leaves to ``{dotted.path: value}``.

    Booleans and strings are skipped (they are configuration echoes, not
    measurements); list elements use ``path[i]`` so table rows stay
    addressable.
    """
    out: Dict[str, float] = {}
    if isinstance(doc, dict):
        for key in doc:
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(doc[key], path))
    elif isinstance(doc, list):
        for index, item in enumerate(doc):
            out.update(flatten_numeric(item, f"{prefix}[{index}]"))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        if math.isfinite(doc):
            out[prefix] = float(doc)
    return out


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between the two snapshots."""

    path: str
    old: float
    new: float

    @property
    def rel_pct(self) -> float:
        """Relative change in percent; infinite when the baseline is 0."""
        if self.old == self.new:
            return 0.0
        if self.old == 0.0:
            return math.inf if self.new > 0 else -math.inf
        return 100.0 * (self.new - self.old) / abs(self.old)


@dataclass
class DiffResult:
    """The comparison of two snapshots at one threshold."""

    threshold_pct: float
    compared: int = 0
    changed: List[MetricDelta] = field(default_factory=list)
    regressions: List[MetricDelta] = field(default_factory=list)
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_snapshots(
    old: Dict[str, float],
    new: Dict[str, float],
    threshold_pct: float,
    ignore: Tuple[str, ...] = (),
) -> DiffResult:
    """Compare two flattened snapshots.

    Any metric whose relative change exceeds ``threshold_pct`` **in either
    direction** is a regression — a simulated metric that moved without an
    intentional change is wrong even when it moved "the good way", and an
    intentional improvement is exactly when the baseline must be re-blessed.
    Paths starting with any ``ignore`` prefix are excluded.
    """
    def ignored(path: str) -> bool:
        return any(path.startswith(pre) for pre in ignore)

    result = DiffResult(threshold_pct=threshold_pct)
    result.only_old = sorted(p for p in old if p not in new and not ignored(p))
    result.only_new = sorted(p for p in new if p not in old and not ignored(p))
    for path in sorted(old):
        if path not in new or ignored(path):
            continue
        result.compared += 1
        delta = MetricDelta(path, old[path], new[path])
        if delta.old != delta.new:
            result.changed.append(delta)
            if abs(delta.rel_pct) > threshold_pct:
                result.regressions.append(delta)
    return result


def render_diff(result: DiffResult, limit: int = 40) -> str:
    """The per-metric delta table ``repro bench-diff`` prints."""
    out = [f"bench-diff: {result.compared} metrics compared, "
           f"{len(result.changed)} changed, {len(result.regressions)} past "
           f"threshold ({result.threshold_pct:g}%)"]
    if result.only_old:
        out.append(f"  only in old snapshot: {len(result.only_old)} paths "
                   f"(e.g. {result.only_old[0]})")
    if result.only_new:
        out.append(f"  only in new snapshot: {len(result.only_new)} paths "
                   f"(e.g. {result.only_new[0]})")
    if not result.changed:
        out.append("  snapshots are numerically identical")
        return "\n".join(out)
    ranked = sorted(result.changed,
                    key=lambda d: (-abs(d.rel_pct), d.path))[:limit]
    header = f"  {'metric':<48} {'old':>14} {'new':>14} {'delta':>10}"
    out.append(header)
    out.append("  " + "-" * (len(header) - 2))
    flagged = set(id(d) for d in result.regressions)
    for delta in ranked:
        pct = delta.rel_pct
        rendered = f"{pct:+9.2f}%" if math.isfinite(pct) else "      inf%"
        marker = "  <- REGRESSION" if id(delta) in flagged else ""
        out.append(f"  {delta.path[:48]:<48} {delta.old:>14.6g} "
                   f"{delta.new:>14.6g} {rendered}{marker}")
    if len(result.changed) > limit:
        out.append(f"  ... {len(result.changed) - limit} more changed metrics "
                   "not shown")
    return "\n".join(out)


def _load(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read snapshot {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(doc, dict) or not isinstance(doc.get("schema"), str):
        print(f"error: {path} is not a schema-versioned snapshot "
              "(missing 'schema' tag)", file=sys.stderr)
        return None
    return doc


def add_benchdiff_parser(sub) -> None:
    """Register the ``bench-diff`` subcommand."""
    p = sub.add_parser(
        "bench-diff",
        help="compare two bench/profile snapshots; nonzero on regression",
        description="Flatten every numeric metric in two schema-versioned "
                    "snapshots to dotted paths, print the per-metric delta "
                    "table, and exit 1 if any metric moved more than the "
                    "threshold in either direction.",
    )
    p.add_argument("old", help="baseline snapshot (JSON)")
    p.add_argument("new", help="candidate snapshot (JSON)")
    p.add_argument("--threshold", type=float, default=0.0, metavar="PCT",
                   help="relative change tolerated per metric, in percent "
                        "(default 0: any change fails)")
    p.add_argument("--ignore", action="append", default=[], metavar="PREFIX",
                   help="exclude metrics whose dotted path starts with "
                        "PREFIX (repeatable)")
    p.set_defaults(func=cmd_bench_diff)


def cmd_bench_diff(args) -> int:
    if args.threshold < 0:
        print(f"error: --threshold must be >= 0, got {args.threshold}",
              file=sys.stderr)
        return 2
    old_doc = _load(args.old)
    new_doc = _load(args.new)
    if old_doc is None or new_doc is None:
        return 2
    if old_doc["schema"] != new_doc["schema"]:
        print(f"error: schema mismatch: {args.old} is "
              f"{old_doc['schema']!r}, {args.new} is {new_doc['schema']!r}",
              file=sys.stderr)
        return 2
    result = diff_snapshots(
        flatten_numeric(old_doc), flatten_numeric(new_doc),
        args.threshold, tuple(args.ignore),
    )
    print(render_diff(result))
    return 0 if result.ok else 1
