"""Machine-readable snapshots: profile JSON and ``BENCH_*.json`` files.

All serialization funnels through :func:`dump_json`, which delegates to
:func:`repro.util.canon.canonical_json`: sorted keys, normalized floats,
and a hard refusal of NaN and Infinity — the JSON standard has no spelling
for them, and an ``Infinity`` literal from an empty accumulator is exactly
the kind of silent corruption the schema validator exists to catch.
Because the serve cache keys and the byte-identity comparisons use the
same canonical serializer, "equal documents" and "equal bytes" are the
same statement.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.obs.schema import BENCH_SCHEMA, assert_valid
from repro.util.canon import canonical_json

#: Environment variable selecting where ``BENCH_*.json`` files land.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def dump_json(payload: Any) -> str:
    """Serialize a snapshot payload to strict, canonical JSON text."""
    return canonical_json(payload, indent=2)


def write_profile_snapshot(path: str, profile) -> Dict[str, Any]:
    """Validate and write a profile's snapshot document; return the dict."""
    doc = profile.to_dict()
    assert_valid(doc)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_json(doc) + "\n")
    return doc


def bench_snapshot(name: str, data: Any,
                   meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Wrap benchmark data in the versioned ``repro.bench/1`` envelope."""
    doc: Dict[str, Any] = {"schema": BENCH_SCHEMA, "name": name, "data": data}
    if meta:
        doc["meta"] = meta
    return doc


def write_bench_snapshot(name: str, data: Any,
                         directory: Optional[str] = None,
                         meta: Optional[Dict[str, Any]] = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    The directory defaults to ``$REPRO_BENCH_DIR`` or the current working
    directory; it is created if missing.  ``name`` must be a bare artifact
    name (it becomes part of the filename).
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"bench snapshot name {name!r} must be a bare name")
    directory = directory or os.environ.get(BENCH_DIR_ENV) or os.getcwd()
    os.makedirs(directory, exist_ok=True)
    doc = bench_snapshot(name, data, meta)
    assert_valid(doc)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_json(doc) + "\n")
    return path
