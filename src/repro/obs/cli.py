"""The ``repro profile`` subcommand.

Runs one application configuration with the :class:`~repro.obs.profile.
ProfileCollector` attached, prints the stable text report, and optionally
writes the schema-versioned JSON snapshot (``--json``) and a Perfetto-
loadable trace (``--trace-out``).  Registered from ``repro.__main__`` the
same way the ``repro check`` subcommand is.
"""

from __future__ import annotations

import sys


def add_profile_parser(sub) -> None:
    """Register the ``profile`` subcommand on an argparse subparsers object."""
    from repro.apps import ALL_APPLICATIONS
    from repro.runtime.options import LocalityLevel

    p = sub.add_parser(
        "profile",
        help="run one configuration with the profiler attached",
        description="Execute one application configuration and report its "
                    "communication matrix, hot objects, per-processor "
                    "utilization breakdown and time-series samples.",
    )
    p.add_argument("--app", required=True, choices=sorted(ALL_APPLICATIONS))
    p.add_argument("--machine", default="ipsc860", choices=["dash", "ipsc860"])
    p.add_argument("--scale", default="paper", choices=["tiny", "paper"])
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--level", default="locality",
                   choices=[l.value for l in LocalityLevel])
    p.add_argument("--no-broadcast", action="store_true")
    p.add_argument("--no-replication", action="store_true")
    p.add_argument("--serial-fetches", action="store_true")
    p.add_argument("--target-tasks", type=int, default=1)
    p.add_argument("--eager-update", action="store_true")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the validated repro.obs/4 snapshot here")
    p.add_argument("--max-sim-time", type=float, default=None,
                   metavar="SECONDS",
                   help="runaway guard: abort (exit 3) if simulated time "
                        "would pass this limit")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="also record a span trace (Chrome/Perfetto JSON for "
                        "*.json, JSON Lines otherwise)")
    p.add_argument("--samples", type=int, default=50,
                   help="time-series sample count (default 50)")
    p.add_argument("--sample-interval", type=float, default=None,
                   help="time-series sample spacing in simulated seconds "
                        "(overrides --samples)")
    p.add_argument("--flight", action="store_true",
                   help="attach the engine flight recorder (bounded "
                        "queue-depth/in-flight/attribution time series in "
                        "the snapshot's 'flight' section)")
    p.add_argument("--flight-capacity", type=int, default=256,
                   metavar="N", help="flight-recorder sample capacity "
                                     "(default 256)")
    p.set_defaults(func=cmd_profile)


def cmd_profile(args) -> int:
    from repro.apps import ALL_APPLICATIONS
    from repro.errors import (
        ExperimentError,
        JadeError,
        MachineError,
        SimulationError,
    )
    from repro.obs.snapshot import write_profile_snapshot
    from repro.serve import api
    from repro.serve.requests import run_request_from_args

    try:
        request = run_request_from_args(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out:
        from repro.sim.trace import Tracer

        try:
            open(args.trace_out, "w").close()
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 2
        tracer = Tracer(enabled=True)
    flight = None
    if getattr(args, "flight", False):
        from repro.obs.flight import FlightRecorder

        try:
            flight = FlightRecorder(capacity=args.flight_capacity)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        _metrics, profile = api.profile_metrics(
            request, tracer=tracer,
            interval=args.sample_interval, samples=args.samples,
            flight=flight,
        )
    except (SimulationError, JadeError, MachineError) as exc:
        # Exit 3: the simulation itself raised (SimTimeLimitError included),
        # as opposed to exit 2 for a malformed request.
        print(f"error: simulation failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    except ExperimentError as exc:
        print(f"error: {exc}\nvalid applications: "
              f"{', '.join(sorted(ALL_APPLICATIONS))}", file=sys.stderr)
        return 2
    print(profile.format())
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"\ntrace: {len(tracer)} events -> {args.trace_out}")
    if args.json:
        try:
            write_profile_snapshot(args.json, profile)
        except (ValueError, OSError) as exc:
            print(f"error: cannot write snapshot to {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"snapshot: {args.json}")
    return 0
