"""``repro.obs`` — the observability subsystem.

Span-based timelines, a run profiler (communication matrix, hot objects,
utilization breakdown), a simulated-time series sampler, and
schema-versioned machine-readable snapshots.  Everything here is **off by
default**: runs pay one ``is not None`` predicate per hook until a
:class:`ProfileCollector` (or an enabled tracer) is attached, and a
profiled run is byte-identical to an unprofiled one because the collector
only observes — it never schedules simulation events.

Entry points: ``repro profile`` / ``repro run --profile[-json]`` /
``repro bench-diff`` on the command line, or
:func:`repro.lab.experiments.profile_app` as a library.
"""

from repro.obs.attrib import render_attribution, verify_attribution
from repro.obs.benchdiff import diff_snapshots, flatten_numeric, render_diff
from repro.obs.critical import (
    CriticalPath,
    Segment,
    extract_critical_path,
    render_critical_path,
)
from repro.obs.profile import ObjectProfile, Profile, ProfileCollector, build_profile
from repro.obs.report import render_profile
from repro.obs.sampler import IntervalTrack, StepTrack, build_timeline, sample_grid
from repro.obs.schema import (
    BENCH_SCHEMA,
    CHAOS_SCHEMA,
    PROFILE_SCHEMA,
    PROFILE_SCHEMAS,
    assert_valid,
    validate_bench,
    validate_chaos,
    validate_profile,
    validate_snapshot,
)
from repro.obs.snapshot import (
    bench_snapshot,
    dump_json,
    write_bench_snapshot,
    write_profile_snapshot,
)

__all__ = [
    "render_attribution",
    "verify_attribution",
    "diff_snapshots",
    "flatten_numeric",
    "render_diff",
    "CriticalPath",
    "Segment",
    "extract_critical_path",
    "render_critical_path",
    "PROFILE_SCHEMAS",
    "ObjectProfile",
    "Profile",
    "ProfileCollector",
    "build_profile",
    "render_profile",
    "IntervalTrack",
    "StepTrack",
    "build_timeline",
    "sample_grid",
    "BENCH_SCHEMA",
    "CHAOS_SCHEMA",
    "PROFILE_SCHEMA",
    "assert_valid",
    "validate_bench",
    "validate_chaos",
    "validate_profile",
    "validate_snapshot",
    "bench_snapshot",
    "dump_json",
    "write_bench_snapshot",
    "write_profile_snapshot",
]
