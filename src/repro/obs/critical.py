"""Critical-path extraction from a run's span trace.

The sweep tables say *how long* a configuration took; this module says
*why*.  It consumes the spans a traced run records — task and serial
execution, task-management work (creation, assignment, dispatch,
completion handling, protocol processing), message in-flight time, and
object fetch waits — and walks the end-to-end critical path backward
from the run's finish, attributing every second of elapsed time to one
of five buckets on one processor:

* ``compute`` — inside task or serial-section bodies (on DASH, the
  memory-system share of an execution span is split out using the
  ``compute``/``comm`` attributes the runtime records on it);
* ``task_management`` — the serial Jade bookkeeping the paper blames for
  the Ocean and Panel Cholesky rolloffs (Figures 10/11/20/21);
* ``communication`` — messages in flight and processors waiting on
  object fetches;
* ``recovery`` — the reliable-delivery layer waiting out drops: the
  retransmit spans :class:`repro.runtime.reliable.ReliableNetwork`
  records under a fault plan (always zero in fault-free runs);
* ``stall`` — elapsed time covered by no recorded activity (idle
  processors waiting on dependences).

The walk is the standard greedy backward scan: starting at the run's
elapsed time, repeatedly attribute the interval that *ends latest* at or
before the current time, jump to its start, and mark uncovered gaps as
stall.  The resulting segments partition ``[0, elapsed]`` exactly, so
the bucket totals sum to the elapsed time — the analyzer cannot invent
or lose time, which is what makes "task management is 96% of the
critical path" a checkable statement rather than a vibe.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.trace import Tracer

#: Bucket names, in the order reports print them.
BUCKET_COMPUTE = "compute"
BUCKET_MGMT = "task_management"
BUCKET_COMM = "communication"
BUCKET_RECOVERY = "recovery"
BUCKET_STALL = "stall"
BUCKETS = (BUCKET_COMPUTE, BUCKET_MGMT, BUCKET_COMM, BUCKET_RECOVERY,
           BUCKET_STALL)

#: Tolerance for endpoint comparisons.  Simulated times are sums of
#: microsecond-scale costs, so real span durations dwarf this.
_EPS = 1e-9


@dataclass(frozen=True)
class Segment:
    """One attributed stretch of the critical path (start < end)."""

    start: float
    end: float
    bucket: str
    proc: int
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class _Interval:
    start: float
    end: float
    bucket: str
    proc: int
    label: str
    #: Fraction of the interval attributed to communication instead of its
    #: nominal bucket (DASH execution spans embed memory-system time).
    comm_fraction: float = 0.0


@dataclass
class CriticalPath:
    """The attributed critical path of one run."""

    elapsed: float
    segments: List[Segment] = field(default_factory=list)

    def buckets(self) -> Dict[str, float]:
        """Seconds of critical path per bucket; sums to ``elapsed``."""
        out = {b: 0.0 for b in BUCKETS}
        for seg in self.segments:
            if seg.bucket == BUCKET_COMPUTE and isinstance(seg, _SplitSegment):
                out[BUCKET_COMPUTE] += seg.duration * (1.0 - seg.comm_fraction)
                out[BUCKET_COMM] += seg.duration * seg.comm_fraction
            else:
                out[seg.bucket] += seg.duration
        return out

    def per_processor(self) -> Dict[int, Dict[str, float]]:
        """``{proc: {bucket: seconds}}`` for processors on the path."""
        out: Dict[int, Dict[str, float]] = {}
        for seg in self.segments:
            row = out.setdefault(seg.proc, {b: 0.0 for b in BUCKETS})
            if seg.bucket == BUCKET_COMPUTE and isinstance(seg, _SplitSegment):
                row[BUCKET_COMPUTE] += seg.duration * (1.0 - seg.comm_fraction)
                row[BUCKET_COMM] += seg.duration * seg.comm_fraction
            else:
                row[seg.bucket] += seg.duration
        return out

    @property
    def dominant_bucket(self) -> str:
        """The bucket holding the largest share of the critical path."""
        totals = self.buckets()
        return max(BUCKETS, key=lambda b: totals[b])

    def main_processor_mgmt(self, main: int = 0) -> float:
        """Seconds of the path spent in task management on ``main``."""
        return self.per_processor().get(main, {}).get(BUCKET_MGMT, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary for the profile snapshot (``repro.obs/3``)."""
        totals = self.buckets()
        per_proc = [
            dict({"proc": proc}, **{b: row[b] for b in BUCKETS})
            for proc, row in sorted(self.per_processor().items())
        ]
        return {
            "elapsed": self.elapsed,
            "buckets": {b: totals[b] for b in BUCKETS},
            "dominant_bucket": self.dominant_bucket,
            "main_processor_mgmt": self.main_processor_mgmt(),
            "per_processor": per_proc,
            "num_segments": len(self.segments),
        }


@dataclass(frozen=True)
class _SplitSegment(Segment):
    """A compute segment carrying a DASH memory-system share."""

    comm_fraction: float = 0.0


def _intervals_from_spans(tracer: Tracer) -> List[_Interval]:
    """Flatten the trace's spans into attributable intervals."""
    intervals: List[_Interval] = []
    for begin, end in tracer.spans():
        if end.attr("open") is True or end.time - begin.time <= _EPS:
            continue
        cat, label = begin.category, begin.label
        proc = begin.attr("proc")
        if proc is None:
            proc = begin.attr("dst", 0)
        if cat in ("task", "serial") and label == "exec":
            compute = float(begin.attr("compute", 0.0) or 0.0)
            comm = float(begin.attr("comm", 0.0) or 0.0)
            fraction = comm / (compute + comm) if (compute + comm) > 0 else 0.0
            intervals.append(_Interval(begin.time, end.time, BUCKET_COMPUTE,
                                       int(proc), f"{cat}:{label}", fraction))
        elif cat == "mgmt":
            intervals.append(_Interval(begin.time, end.time, BUCKET_MGMT,
                                       int(proc), f"{cat}:{label}"))
        elif cat == "object" or cat == "message":
            intervals.append(_Interval(begin.time, end.time, BUCKET_COMM,
                                       int(proc), f"{cat}:{label}"))
        elif cat == "recovery":
            intervals.append(_Interval(begin.time, end.time, BUCKET_RECOVERY,
                                       int(proc), f"{cat}:{label}"))
    return intervals


class _MaxEndTree:
    """Segment tree over interval ends, in start-sorted order.

    Supports the two walk queries in O(log n): the maximum end over a
    prefix, and the *rightmost* prefix index whose end reaches a
    threshold — "among the intervals that began before ``t``, which one
    reaches ``t``, preferring the latest start".
    """

    def __init__(self, ends: List[float]):
        size = 1
        while size < len(ends):
            size *= 2
        self.size = size
        self.tree = [-math.inf] * (2 * size)
        for i, value in enumerate(ends):
            self.tree[size + i] = value
        for i in range(size - 1, 0, -1):
            self.tree[i] = max(self.tree[2 * i], self.tree[2 * i + 1])

    def prefix_max(self, hi: int) -> float:
        """Max end over indices ``[0, hi]``."""
        return self._max(1, 0, self.size - 1, hi)

    def _max(self, node: int, lo: int, hi: int, limit: int) -> float:
        if lo > limit:
            return -math.inf
        if hi <= limit:
            return self.tree[node]
        mid = (lo + hi) // 2
        return max(self._max(2 * node, lo, mid, limit),
                   self._max(2 * node + 1, mid + 1, hi, limit))

    def rightmost_at_least(self, hi: int, threshold: float) -> int:
        """Rightmost index in ``[0, hi]`` with end >= threshold, or -1."""
        return self._find(1, 0, self.size - 1, hi, threshold)

    def _find(self, node: int, lo: int, hi: int, limit: int,
              threshold: float) -> int:
        if lo > limit or self.tree[node] < threshold:
            return -1
        if lo == hi:
            return lo
        mid = (lo + hi) // 2
        right = self._find(2 * node + 1, mid + 1, hi, limit, threshold)
        if right != -1:
            return right
        return self._find(2 * node, lo, mid, limit, threshold)


def extract_critical_path(tracer: Tracer, elapsed: float) -> CriticalPath:
    """Walk the critical path backward from ``elapsed`` through the spans.

    At each step the walk attributes the interval *active* at the cursor
    (began before it, ran up to or past it), preferring the latest start —
    the tightest causal predecessor — with ties broken toward task
    management over recovery over communication over compute so the
    serialized main-processor story is never hidden behind an
    overlapping bulk span.
    When nothing was active, the latest-finishing earlier interval is
    chosen and the uncovered gap becomes a ``stall`` segment charged to
    the processor that was waiting (the consumer just walked from).  The
    returned segments partition ``[0, elapsed]``.
    """
    path = CriticalPath(elapsed=elapsed)
    if elapsed <= 0:
        return path
    bucket_rank = {BUCKET_MGMT: 4, BUCKET_RECOVERY: 3, BUCKET_COMM: 2,
                   BUCKET_COMPUTE: 1}
    intervals = sorted(
        _intervals_from_spans(tracer),
        key=lambda iv: (iv.start, bucket_rank.get(iv.bucket, 0), iv.end,
                        iv.proc, iv.label),
    )
    starts = [iv.start for iv in intervals]
    tree = _MaxEndTree([iv.end for iv in intervals]) if intervals else None
    segments: List[Segment] = []
    t = elapsed
    last_proc = 0

    def attribute(iv: _Interval, end: float) -> None:
        start = max(iv.start, 0.0)
        if iv.bucket == BUCKET_COMPUTE and iv.comm_fraction > 0.0:
            segments.append(_SplitSegment(start, end, iv.bucket, iv.proc,
                                          iv.label, iv.comm_fraction))
        else:
            segments.append(Segment(start, end, iv.bucket, iv.proc, iv.label))

    # Every attributed interval began strictly before the cursor, so each
    # step lowers t; the guard is belt-and-braces against float surprises.
    for _ in range(2 * len(intervals) + 2):
        if t <= _EPS:
            break
        # Candidates: intervals that began strictly before the cursor.
        j = bisect_left(starts, t - _EPS) - 1
        if j < 0:
            segments.append(Segment(0.0, t, BUCKET_STALL, last_proc, "idle"))
            t = 0.0
            break
        idx = tree.rightmost_at_least(j, t - _EPS)
        if idx >= 0:
            # Active at the cursor: attribute it up to t (an end within
            # _EPS below t is absorbed to keep the partition exact).
            iv = intervals[idx]
            attribute(iv, t)
        else:
            # Nothing active: stall back to the latest earlier finish.
            latest_end = tree.prefix_max(j)
            if latest_end <= _EPS:
                segments.append(
                    Segment(0.0, t, BUCKET_STALL, last_proc, "idle"))
                t = 0.0
                break
            idx = tree.rightmost_at_least(j, latest_end - _EPS)
            iv = intervals[idx]
            segments.append(
                Segment(iv.end, t, BUCKET_STALL, last_proc, "idle"))
            attribute(iv, iv.end)
        last_proc = iv.proc
        t = max(iv.start, 0.0)
    if t > _EPS:
        segments.append(Segment(0.0, t, BUCKET_STALL, last_proc, "idle"))
    segments.reverse()
    path.segments = segments
    return path


def render_critical_path(path: CriticalPath, main: int = 0) -> str:
    """Stable text block for ``repro profile`` output."""
    totals = path.buckets()
    out = [f"critical path ({path.elapsed:.6g} s end-to-end, "
           f"{len(path.segments)} segments)"]
    for bucket in BUCKETS:
        share = 100.0 * totals[bucket] / path.elapsed if path.elapsed else 0.0
        marker = "  <- dominant" if bucket == path.dominant_bucket else ""
        out.append(f"  {bucket:<16} {totals[bucket]:>12.6g} s {share:5.1f}%"
                   f"{marker}")
    mgmt_main = path.main_processor_mgmt(main)
    share = 100.0 * mgmt_main / path.elapsed if path.elapsed else 0.0
    out.append(f"  main processor (proc {main}) task management: "
               f"{mgmt_main:.6g} s ({share:.1f}% of the critical path)")
    return "\n".join(out)
