"""The run profiler: communication matrix, hot objects, utilization.

A :class:`ProfileCollector` is attached to a run the same way the
``repro.check`` recorder is: the machines, communicator and runtimes each
hold an optional reference and guard every hook with one ``is not None``
predicate, so an unprofiled run pays nothing and a profiled run is not
perturbed (the collector only *observes* — it never schedules events or
touches simulation state).

After the run, :func:`build_profile` assembles the collector's raw records
and the run's :class:`~repro.runtime.metrics.RunMetrics` into a
:class:`Profile`: the src×dst communication matrix, the per-object hot
table, the per-processor utilization breakdown (compute / memory-comm /
mgmt / idle, reconciling with ``RunMetrics.busy_per_processor``) and the
resampled time series of §5-style queue/network load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.runtime.metrics import RunMetrics
from repro.sim.stats import Accumulator
from repro.sim.trace import Tracer
from repro.obs.critical import CriticalPath, extract_critical_path
from repro.obs.sampler import IntervalTrack, StepTrack, build_timeline
from repro.obs.schema import PROFILE_SCHEMA

#: Float comparisons in reconciliation checks (seconds).
_EPS = 1e-9


@dataclass
class ObjectProfile:
    """Per-shared-object communication totals (the hot-object table)."""

    object_id: int
    name: str
    nbytes: int = 0
    fetches: int = 0
    broadcasts: int = 0
    eager_updates: int = 0
    bytes_moved: float = 0.0
    versions: int = 0
    #: DASH only: seconds of in-task memory-system time spent on this object.
    comm_seconds: float = 0.0
    accesses: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "object_id": self.object_id,
            "name": self.name,
            "nbytes": self.nbytes,
            "fetches": self.fetches,
            "broadcasts": self.broadcasts,
            "eager_updates": self.eager_updates,
            "bytes_moved": self.bytes_moved,
            "versions": self.versions,
            "comm_seconds": self.comm_seconds,
            "accesses": self.accesses,
        }


class ProfileCollector:
    """Accumulates observability records during one run.

    Every ``on_*`` method is a hook called from exactly one instrumented
    site; none of them interacts with the simulator, so attaching a
    collector cannot change what a run computes or when.
    """

    def __init__(self) -> None:
        # src×dst communication (diagonal = node-local deliveries).
        self.matrix_messages: Dict[Tuple[int, int], int] = {}
        self.matrix_bytes: Dict[Tuple[int, int], float] = {}
        self.message_latency = Accumulator("message_latency")
        # Hot-object table.
        self.objects: Dict[int, ObjectProfile] = {}
        # Per-processor execution time split (indexed lazily).
        self.compute_seconds: Dict[int, float] = {}
        self.memory_comm_seconds: Dict[int, float] = {}
        self.serial_seconds: Dict[int, float] = {}
        # Time-series tracks.
        self.ready_queue = StepTrack("ready_queue")
        self.inflight = StepTrack("inflight_messages")
        self._inflight_count = 0
        self.links: Dict[str, IntervalTrack] = {}

    # ------------------------------------------------------------------ #
    # network hooks
    # ------------------------------------------------------------------ #
    def on_message(self, time: float, src: int, dst: int, nbytes: int,
                   kind: str, latency: float) -> None:
        """A message was delivered (called once per delivery, local or not)."""
        key = (src, dst)
        self.matrix_messages[key] = self.matrix_messages.get(key, 0) + 1
        self.matrix_bytes[key] = self.matrix_bytes.get(key, 0.0) + nbytes
        self.message_latency.add(latency)
        self._inflight_count -= 1
        self.inflight.record(time, self._inflight_count)

    def on_message_sent(self, time: float) -> None:
        """A message was injected (in-flight count goes up)."""
        self._inflight_count += 1
        self.inflight.record(time, self._inflight_count)

    def on_link_busy(self, node: int, direction: str, start: float,
                     seconds: float) -> None:
        """A NIC served one message for ``seconds`` starting at ``start``."""
        name = f"{direction}{node}"
        track = self.links.get(name)
        if track is None:
            track = self.links[name] = IntervalTrack(name)
        track.record(start, seconds)

    # ------------------------------------------------------------------ #
    # runtime hooks
    # ------------------------------------------------------------------ #
    def on_task_exec(self, proc: int, compute: float, comm: float,
                     serial: bool) -> None:
        """A task body (or serial section) finished executing on ``proc``."""
        if serial:
            self.serial_seconds[proc] = self.serial_seconds.get(proc, 0.0) + compute
        else:
            self.compute_seconds[proc] = self.compute_seconds.get(proc, 0.0) + compute
        self.memory_comm_seconds[proc] = \
            self.memory_comm_seconds.get(proc, 0.0) + comm

    def on_queue_depth(self, time: float, depth: int) -> None:
        """The scheduler's pool of enabled-but-unassigned tasks changed."""
        self.ready_queue.record(time, depth)

    # ------------------------------------------------------------------ #
    # communicator / memory-system hooks
    # ------------------------------------------------------------------ #
    def _object(self, object_id: int, name: str, nbytes: int) -> ObjectProfile:
        entry = self.objects.get(object_id)
        if entry is None:
            entry = self.objects[object_id] = ObjectProfile(object_id, name, nbytes)
        return entry

    def on_fetch(self, object_id: int, name: str, nbytes: int) -> None:
        """One object version arrived at a requester (fetch or migration)."""
        entry = self._object(object_id, name, nbytes)
        entry.fetches += 1
        entry.bytes_moved += nbytes

    def on_broadcast(self, object_id: int, name: str, nbytes: int,
                     receivers: int) -> None:
        """One adaptive-broadcast operation pushed a version to ``receivers``."""
        entry = self._object(object_id, name, nbytes)
        entry.broadcasts += 1
        entry.bytes_moved += nbytes * receivers

    def on_eager_update(self, object_id: int, name: str, nbytes: int) -> None:
        """The eager-update protocol pushed a version to one holder."""
        entry = self._object(object_id, name, nbytes)
        entry.eager_updates += 1
        entry.bytes_moved += nbytes

    def on_version(self, object_id: int, name: str, nbytes: int,
                   version: int) -> None:
        """A new version of the object was produced."""
        entry = self._object(object_id, name, nbytes)
        if version > entry.versions:
            entry.versions = version

    def on_access(self, object_id: int, name: str, nbytes: int,
                  seconds: float) -> None:
        """DASH: a task access to the object cost ``seconds`` of memory time."""
        entry = self._object(object_id, name, nbytes)
        entry.accesses += 1
        entry.comm_seconds += seconds


@dataclass
class Profile:
    """The assembled observability snapshot of one run."""

    metrics: RunMetrics
    comm_messages: List[List[int]]
    comm_bytes: List[List[float]]
    objects: List[ObjectProfile]
    utilization: List[Dict[str, float]]
    timeline: Dict[str, object]
    network: Dict[str, object] = field(default_factory=dict)
    scale: Optional[str] = None
    #: Critical-path attribution, present when the run was traced.
    critical: Optional[CriticalPath] = None
    #: Flight-recorder time series (``FlightRecorder.to_dict()``), present
    #: when a recorder was installed on the run's simulator.
    flight: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    @property
    def total_matrix_messages(self) -> int:
        return sum(sum(row) for row in self.comm_messages)

    @property
    def total_matrix_bytes(self) -> float:
        return sum(sum(row) for row in self.comm_bytes)

    def hot_objects(self, limit: int = 10) -> List[ObjectProfile]:
        """The objects moving the most bytes (DASH: costing the most time)."""
        ranked = sorted(
            self.objects,
            key=lambda o: (-o.bytes_moved, -o.comm_seconds, o.object_id),
        )
        return ranked[:limit]

    def to_dict(self) -> Dict[str, object]:
        """The schema-versioned, JSON-safe snapshot document."""
        return {
            "schema": PROFILE_SCHEMA,
            "run": {
                "application": self.metrics.application,
                "machine": self.metrics.machine,
                "num_processors": self.metrics.num_processors,
                "scale": self.scale,
                "options": (self.metrics.options.describe()
                            if self.metrics.options else None),
            },
            "metrics": self.metrics.to_json(),
            "comm_matrix": {
                "messages": self.comm_messages,
                "bytes": self.comm_bytes,
                "total_messages": self.total_matrix_messages,
                "total_bytes": self.total_matrix_bytes,
            },
            "network": self.network,
            "objects": [o.as_dict() for o in self.objects],
            "utilization": self.utilization,
            "timeline": self.timeline,
            "critical_path": self.critical.to_dict() if self.critical else None,
            "flight": self.flight,
        }

    def format(self) -> str:
        from repro.obs.report import render_profile

        return render_profile(self)


def build_profile(
    metrics: RunMetrics,
    collector: ProfileCollector,
    interval: Optional[float] = None,
    samples: int = 50,
    scale: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    flight: Optional["object"] = None,
) -> Profile:
    """Assemble the post-run :class:`Profile` from the collector's records.

    When ``tracer`` holds a span trace of the run, the critical-path
    analyzer (:mod:`repro.obs.critical`) runs over it and the resulting
    bucket attribution joins the snapshot as ``critical_path``.  When
    ``flight`` holds the run's :class:`~repro.obs.flight.FlightRecorder`,
    its sampled time series joins as the ``flight`` section.
    """
    n = metrics.num_processors
    comm_messages = [[0] * n for _ in range(n)]
    comm_bytes = [[0.0] * n for _ in range(n)]
    for (src, dst), count in collector.matrix_messages.items():
        if 0 <= src < n and 0 <= dst < n:
            comm_messages[src][dst] = count
            comm_bytes[src][dst] = collector.matrix_bytes[(src, dst)]

    busy = list(metrics.busy_per_processor) or [0.0] * n
    utilization: List[Dict[str, float]] = []
    for p in range(n):
        p_busy = busy[p] if p < len(busy) else 0.0
        compute = collector.compute_seconds.get(p, 0.0)
        serial = collector.serial_seconds.get(p, 0.0)
        comm = collector.memory_comm_seconds.get(p, 0.0)
        # Management is what remains of the processor's busy time after
        # task bodies: creation/assignment/completion handling, protocol
        # bookkeeping.  Derived as a residual so the breakdown reconciles
        # with busy_per_processor by construction.
        mgmt = max(0.0, p_busy - compute - serial - comm)
        idle = max(0.0, metrics.elapsed - p_busy)
        tx = collector.links.get(f"tx{p}")
        rx = collector.links.get(f"rx{p}")
        utilization.append({
            "proc": p,
            "busy": p_busy,
            "compute": compute,
            "serial": serial,
            "memory_comm": comm,
            "mgmt": mgmt,
            "idle": idle,
            "busy_fraction": (p_busy / metrics.elapsed
                              if metrics.elapsed > 0 else 0.0),
            "nic_tx": tx.total if tx else 0.0,
            "nic_rx": rx.total if rx else 0.0,
            "tasks": (metrics.tasks_per_processor[p]
                      if p < len(metrics.tasks_per_processor) else 0),
        })

    timeline = build_timeline(
        metrics.elapsed, collector.ready_queue, collector.inflight,
        collector.links, interval=interval, samples=samples,
    )
    network = {
        "messages": metrics.total_messages,
        "bytes": metrics.total_bytes,
        "latency": collector.message_latency.as_dict(),
    }
    objects = sorted(
        collector.objects.values(),
        key=lambda o: (-o.bytes_moved, -o.comm_seconds, o.object_id),
    )
    critical: Optional[CriticalPath] = None
    if tracer is not None and len(tracer):
        critical = extract_critical_path(tracer, metrics.elapsed)
    return Profile(
        metrics=metrics,
        comm_messages=comm_messages,
        comm_bytes=comm_bytes,
        objects=objects,
        utilization=utilization,
        timeline=timeline,
        network=network,
        scale=scale,
        critical=critical,
        flight=flight.to_dict() if flight is not None else None,
    )
