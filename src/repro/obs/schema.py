"""Schema versioning and validation for machine-readable snapshots.

Three document kinds are versioned:

* ``repro.obs/4`` — the full run-profile snapshot written by
  ``repro profile --json`` / ``repro run --profile-json``.  Version 2
  added the ``metrics.attribution`` per-optimization counters and the
  ``critical_path`` section (``null`` when the run was not traced);
  version 3 adds the fault/reliable-delivery counters to the
  attribution block and the ``recovery`` critical-path bucket; version 4
  adds the ``flight`` section — the engine flight recorder's bounded
  time series of queue depth, in-flight messages and attribution
  counters (``null`` when no recorder was attached).  Versions 1–3 are
  still accepted by the validator, each against its own requirements;
* ``repro.bench/1`` — the lighter ``BENCH_*.json`` envelope the benchmark
  suite writes around its table/figure series;
* ``repro.chaos/1`` — the verdict document ``repro chaos`` writes: the
  fault spec, the two runs' fault/recovery counters, and the
  coherence/determinism verdicts;
* ``repro.sweep/2`` — the row document ``repro sweep --json`` writes (one
  metrics dict per level x procs configuration, in canonical unit order).
  Version 2 adds the ``fleet`` section — per-worker health and scraped
  ``repro.telemetry/1`` snapshots plus the host's own fleet counters —
  and is emitted only when ``--fleet`` asked for it: a sweep without a
  fleet section still writes byte-identical ``repro.sweep/1`` documents;
* ``repro.fleet.trace/1`` — the merged fleet timeline ``repro sweep
  --trace-out`` writes for remote sweeps: a Chrome/Perfetto trace
  (``traceEvents`` with one process track per worker, host dispatch /
  requeue / steal events on process 0) plus the ``schema`` tag and the
  per-worker clock-offset estimates (Perfetto ignores unknown keys, so
  the file loads directly);
* ``repro.serve/1`` — the result document the service returns for a job:
  the canonical request, its content-addressed cache key, and the
  kind-specific result payload.  Deliberately free of wall-clock fields,
  so a cache hit is byte-identical to the fresh computation;
* ``repro.telemetry/1`` — the metrics snapshot ``GET /v1/metrics``
  serves alongside the Prometheus text exposition: every metric family
  (counter/gauge/histogram) with its samples, in deterministic
  name-then-label order.  Values are operational and wall-clock
  dependent; the *layout* is canonical.

The validator is hand-rolled (structural checks, no external dependency)
so it runs in the minimal CI image; it returns a list of human-readable
problems, empty when the document is valid.  ``assert_valid`` is the
raising convenience used by the CLI before it writes anything.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

PROFILE_SCHEMA = "repro.obs/4"
#: Older profile snapshots the validator still accepts (read compatibility).
PROFILE_SCHEMAS = ("repro.obs/1", "repro.obs/2", "repro.obs/3",
                   PROFILE_SCHEMA)
BENCH_SCHEMA = "repro.bench/1"
CHAOS_SCHEMA = "repro.chaos/1"
CHAOS_FLEET_SCHEMA = "repro.chaos/2"
SWEEP_SCHEMA = "repro.sweep/1"
#: The fleet-annotated sweep snapshot (``--fleet``); plain sweeps keep
#: emitting ``repro.sweep/1`` so their bytes never move.
SWEEP_FLEET_SCHEMA = "repro.sweep/2"
SWEEP_SCHEMAS = (SWEEP_SCHEMA, SWEEP_FLEET_SCHEMA)
SERVE_SCHEMA = "repro.serve/1"
TELEMETRY_SCHEMA = "repro.telemetry/1"
FLEET_TRACE_SCHEMA = "repro.fleet.trace/1"

#: The request kinds a ``repro.serve/1`` document may carry.
SERVE_KINDS = ("run", "sweep", "chaos")

_RUN_KEYS = ("application", "machine", "num_processors", "options")
_MATRIX_KEYS = ("messages", "bytes", "total_messages", "total_bytes")
_UTILIZATION_KEYS = ("proc", "busy", "compute", "serial", "memory_comm",
                     "mgmt", "idle", "tasks")
_OBJECT_KEYS = ("object_id", "name", "fetches", "broadcasts",
                "eager_updates", "bytes_moved", "versions")
_TIMELINE_KEYS = ("interval", "horizon", "samples")
_METRIC_KEYS = ("elapsed", "tasks_executed", "total_messages", "total_bytes",
                "broadcasts", "eager_updates", "busy_per_processor")
_CRITICAL_KEYS = ("elapsed", "buckets", "dominant_bucket", "per_processor")
_CRITICAL_BUCKETS_V2 = ("compute", "task_management", "communication",
                        "stall")
_CRITICAL_BUCKETS_V3 = ("compute", "task_management", "communication",
                        "recovery", "stall")
#: Fault/reliable-delivery counters version 3 requires in the attribution.
_FAULT_COUNTER_KEYS = ("messages_dropped", "retransmissions",
                       "duplicates_suppressed", "ack_bytes",
                       "recovery_stall_us")
_CHAOS_KEYS = ("schema", "run", "fault_spec", "counters", "verdicts")
_CHAOS_VERDICT_KEYS = ("coherent", "deterministic")
_CHAOS_FLEET_KEYS = ("schema", "sweep", "fault_spec", "counters",
                     "verdicts")
_CHAOS_FLEET_VERDICT_KEYS = ("completed", "byte_identical")
#: The counter groups a ``repro.chaos/2`` verdict must attribute:
#: what the host survived, what the proxies injected, what the workers saw.
_CHAOS_FLEET_COUNTER_GROUPS = ("host", "proxy", "worker")


def _profile_version(doc: Dict[str, Any]) -> int:
    """Parse the integer version out of a ``repro.obs/N`` tag (0 if alien)."""
    tag = doc.get("schema")
    if isinstance(tag, str) and tag in PROFILE_SCHEMAS:
        return int(tag.rsplit("/", 1)[1])
    return 0


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def validate_profile(doc: Any) -> List[str]:
    """Structurally validate a ``repro.obs/*`` snapshot document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") not in PROFILE_SCHEMAS:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected one of "
            f"{list(PROFILE_SCHEMAS)!r}")
    version = _profile_version(doc)
    v2 = version >= 2

    run = doc.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' section")
    else:
        for key in _RUN_KEYS:
            if key not in run:
                problems.append(f"run.{key} missing")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' section")
    else:
        for key in _METRIC_KEYS:
            if key not in metrics:
                problems.append(f"metrics.{key} missing")
        if v2:
            attribution = metrics.get("attribution")
            if not isinstance(attribution, dict):
                problems.append("metrics.attribution missing (required by "
                                "repro.obs/2 and later)")
            elif not attribution:
                # A present-but-empty attribution block would satisfy the
                # naive "all values finite" check vacuously; it carries no
                # information and means the producer is broken.
                problems.append("metrics.attribution is empty")
            else:
                if any(not _finite(v) for v in attribution.values()):
                    problems.append(
                        "metrics.attribution has non-finite values")
                if version >= 3:
                    for key in _FAULT_COUNTER_KEYS:
                        if key not in attribution:
                            problems.append(
                                f"metrics.attribution.{key} missing "
                                f"(required by {PROFILE_SCHEMA})")

    n = run.get("num_processors") if isinstance(run, dict) else None
    matrix = doc.get("comm_matrix")
    if not isinstance(matrix, dict):
        problems.append("missing 'comm_matrix' section")
    else:
        for key in _MATRIX_KEYS:
            if key not in matrix:
                problems.append(f"comm_matrix.{key} missing")
        for key in ("messages", "bytes"):
            grid = matrix.get(key)
            if isinstance(grid, list) and isinstance(n, int):
                if len(grid) != n or any(
                        not isinstance(row, list) or len(row) != n
                        for row in grid):
                    problems.append(f"comm_matrix.{key} is not {n}x{n}")
                elif any(not _finite(v) for row in grid for v in row):
                    problems.append(f"comm_matrix.{key} has non-finite cells")
            elif key in matrix:
                problems.append(f"comm_matrix.{key} is not a matrix")
        messages = matrix.get("messages")
        total = matrix.get("total_messages")
        if isinstance(messages, list) and _finite(total):
            if sum(sum(row) for row in messages if isinstance(row, list)) != total:
                problems.append("comm_matrix.total_messages != matrix sum")

    objects = doc.get("objects")
    if not isinstance(objects, list):
        problems.append("missing 'objects' section")
    else:
        for index, entry in enumerate(objects):
            if not isinstance(entry, dict):
                problems.append(f"objects[{index}] is not an object")
                continue
            for key in _OBJECT_KEYS:
                if key not in entry:
                    problems.append(f"objects[{index}].{key} missing")

    utilization = doc.get("utilization")
    if not isinstance(utilization, list):
        problems.append("missing 'utilization' section")
    else:
        if isinstance(n, int) and len(utilization) != n:
            problems.append(
                f"utilization has {len(utilization)} rows, expected {n}")
        for index, entry in enumerate(utilization):
            if not isinstance(entry, dict):
                problems.append(f"utilization[{index}] is not an object")
                continue
            for key in _UTILIZATION_KEYS:
                if key not in entry:
                    problems.append(f"utilization[{index}].{key} missing")
                elif key != "proc" and not _finite(entry[key]):
                    problems.append(f"utilization[{index}].{key} not finite")

    timeline = doc.get("timeline")
    if not isinstance(timeline, dict):
        problems.append("missing 'timeline' section")
    else:
        for key in _TIMELINE_KEYS:
            if key not in timeline:
                problems.append(f"timeline.{key} missing")
        samples = timeline.get("samples")
        if isinstance(samples, list):
            last = -math.inf
            for index, row in enumerate(samples):
                if not isinstance(row, dict) or "t" not in row:
                    problems.append(f"timeline.samples[{index}] malformed")
                    continue
                if not _finite(row["t"]) or row["t"] <= last:
                    problems.append(
                        f"timeline.samples[{index}].t not increasing")
                    continue
                last = row["t"]
        elif "samples" in timeline:
            problems.append("timeline.samples is not a list")

    if v2:
        if "critical_path" not in doc:
            problems.append(
                "critical_path missing (required by repro.obs/2 and later; "
                "null for untraced runs)")
        else:
            critical = doc["critical_path"]
            if critical is not None:
                problems.extend(_validate_critical(critical, version))

    if version >= 4:
        if "flight" not in doc:
            problems.append(
                "flight missing (required by repro.obs/4; null when no "
                "flight recorder was attached)")
        elif doc["flight"] is not None:
            problems.extend(_validate_flight(doc["flight"]))

    return problems


_FLIGHT_KEYS = ("interval", "capacity", "decimations", "samples")
_FLIGHT_SAMPLE_KEYS = ("t", "events_fired", "queue_depth")


def _validate_flight(flight: Any) -> List[str]:
    """Validate a non-null ``flight`` section of a v4+ snapshot."""
    problems: List[str] = []
    if not isinstance(flight, dict):
        return ["flight is not an object"]
    for key in _FLIGHT_KEYS:
        if key not in flight:
            problems.append(f"flight.{key} missing")
    samples = flight.get("samples")
    if not isinstance(samples, list):
        if "samples" in flight:
            problems.append("flight.samples is not a list")
        return problems
    capacity = flight.get("capacity")
    if isinstance(capacity, int) and len(samples) > capacity:
        problems.append(
            f"flight has {len(samples)} samples, exceeding its declared "
            f"capacity {capacity} (the ring buffer is bounded)")
    last = -math.inf
    for index, row in enumerate(samples):
        if not isinstance(row, dict):
            problems.append(f"flight.samples[{index}] is not an object")
            continue
        for key in _FLIGHT_SAMPLE_KEYS:
            value = row.get(key)
            if not _finite(value) or value < 0:
                problems.append(
                    f"flight.samples[{index}].{key} missing or not a "
                    "non-negative finite number")
        t = row.get("t")
        if _finite(t):
            if t <= last:
                problems.append(
                    f"flight.samples[{index}].t not strictly increasing")
            last = t
        attribution = row.get("attribution")
        if attribution is not None:
            if not isinstance(attribution, dict):
                problems.append(
                    f"flight.samples[{index}].attribution is not an object")
            elif any(not _finite(v) for v in attribution.values()):
                problems.append(
                    f"flight.samples[{index}].attribution has non-finite "
                    "values")
    return problems


def _validate_critical(critical: Any, version: int = 2) -> List[str]:
    """Validate a non-null ``critical_path`` section of a v2+ snapshot."""
    problems: List[str] = []
    if not isinstance(critical, dict):
        return ["critical_path is not an object"]
    for key in _CRITICAL_KEYS:
        if key not in critical:
            problems.append(f"critical_path.{key} missing")
    expected_buckets = (_CRITICAL_BUCKETS_V3 if version >= 3
                        else _CRITICAL_BUCKETS_V2)
    buckets = critical.get("buckets")
    if isinstance(buckets, dict):
        total = 0.0
        for bucket in expected_buckets:
            value = buckets.get(bucket)
            if not _finite(value) or value < 0:
                problems.append(
                    f"critical_path.buckets.{bucket} missing or not a "
                    "non-negative finite number")
            else:
                total += value
        elapsed = critical.get("elapsed")
        if _finite(elapsed) and abs(total - elapsed) > 1e-6 * max(1.0, elapsed):
            problems.append(
                f"critical_path buckets sum to {total}, expected elapsed "
                f"{elapsed}")
    elif "buckets" in critical:
        problems.append("critical_path.buckets is not an object")
    per_proc = critical.get("per_processor")
    if isinstance(per_proc, list):
        for index, row in enumerate(per_proc):
            if not isinstance(row, dict) or "proc" not in row:
                problems.append(
                    f"critical_path.per_processor[{index}] malformed")
    elif "per_processor" in critical:
        problems.append("critical_path.per_processor is not a list")
    return problems


def validate_bench(doc: Any) -> List[str]:
    """Structurally validate a ``repro.bench/1`` (``BENCH_*.json``) document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.append("missing 'name'")
    if "data" not in doc:
        problems.append("missing 'data'")
    return problems


def validate_chaos(doc: Any) -> List[str]:
    """Structurally validate a ``repro.chaos/1`` verdict document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != CHAOS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {CHAOS_SCHEMA!r}")
    for key in _CHAOS_KEYS:
        if key not in doc:
            problems.append(f"missing {key!r}")
    run = doc.get("run")
    if isinstance(run, dict):
        for key in _RUN_KEYS:
            if key not in run:
                problems.append(f"run.{key} missing")
    elif "run" in doc:
        problems.append("'run' is not an object")
    counters = doc.get("counters")
    if isinstance(counters, dict):
        for key in _FAULT_COUNTER_KEYS:
            if key not in counters:
                problems.append(f"counters.{key} missing")
            elif not _finite(counters[key]) or counters[key] < 0:
                problems.append(
                    f"counters.{key} not a non-negative finite number")
    elif "counters" in doc:
        problems.append("'counters' is not an object")
    verdicts = doc.get("verdicts")
    if isinstance(verdicts, dict):
        for key in _CHAOS_VERDICT_KEYS:
            if not isinstance(verdicts.get(key), bool):
                problems.append(f"verdicts.{key} missing or not a boolean")
    elif "verdicts" in doc:
        problems.append("'verdicts' is not an object")
    return problems


def validate_chaos_fleet(doc: Any) -> List[str]:
    """Structurally validate a ``repro.chaos/2`` fleet-chaos verdict.

    Written by ``repro chaos-fleet``: a sweep pushed through fault-
    injecting proxies, with counter groups attributing what the host
    survived (breaker transitions, corrupt responses, drained and
    requeued dispatches), what the proxies injected, and what the
    workers observed — plus the two verdicts the exit code reports
    (``completed``, ``byte_identical`` vs the clean serial run).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != CHAOS_FLEET_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected "
            f"{CHAOS_FLEET_SCHEMA!r}")
    for key in _CHAOS_FLEET_KEYS:
        if key not in doc:
            problems.append(f"missing {key!r}")
    sweep = doc.get("sweep")
    if isinstance(sweep, dict):
        for key in ("app", "machine", "scale", "units", "workers"):
            if key not in sweep:
                problems.append(f"sweep.{key} missing")
    elif "sweep" in doc:
        problems.append("'sweep' is not an object")
    counters = doc.get("counters")
    if isinstance(counters, dict):
        for group in _CHAOS_FLEET_COUNTER_GROUPS:
            block = counters.get(group)
            if not isinstance(block, dict):
                problems.append(
                    f"counters.{group} missing or not an object")
                continue
            for key, value in block.items():
                if not _finite(value) or value < 0:
                    problems.append(
                        f"counters.{group}.{key} not a non-negative "
                        "finite number")
    elif "counters" in doc:
        problems.append("'counters' is not an object")
    verdicts = doc.get("verdicts")
    if isinstance(verdicts, dict):
        for key in _CHAOS_FLEET_VERDICT_KEYS:
            if not isinstance(verdicts.get(key), bool):
                problems.append(f"verdicts.{key} missing or not a boolean")
    elif "verdicts" in doc:
        problems.append("'verdicts' is not an object")
    return problems


def validate_sweep(doc: Any) -> List[str]:
    """Structurally validate a ``repro.sweep/*`` row document.

    Version 1 is the plain row document; version 2 additionally requires
    the ``fleet`` section (per-worker scrape results plus the host's own
    telemetry snapshot) a ``repro sweep --fleet`` run embeds.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") not in SWEEP_SCHEMAS:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected one of "
            f"{list(SWEEP_SCHEMAS)!r}")
    if doc.get("schema") == SWEEP_FLEET_SCHEMA:
        problems.extend(_validate_fleet_section(doc.get("fleet")))
    for key in ("app", "machine", "scale"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"missing {key!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        problems.append("'rows' missing or not a list")
        return problems
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"rows[{index}] is not an object")
            continue
        for key in ("level", "procs", "metrics"):
            if key not in row:
                problems.append(f"rows[{index}].{key} missing")
        metrics = row.get("metrics")
        if isinstance(metrics, dict):
            for key in ("elapsed", "tasks_executed"):
                if not _finite(metrics.get(key)):
                    problems.append(
                        f"rows[{index}].metrics.{key} missing or not finite")
        elif "metrics" in row:
            problems.append(f"rows[{index}].metrics is not an object")
    return problems


def _validate_fleet_section(fleet: Any) -> List[str]:
    """Validate the ``fleet`` section of a ``repro.sweep/2`` document."""
    problems: List[str] = []
    if not isinstance(fleet, dict):
        return ["fleet section missing or not an object (required by "
                f"{SWEEP_FLEET_SCHEMA})"]
    workers = fleet.get("workers")
    if not isinstance(workers, list) or not workers:
        problems.append("fleet.workers missing or empty")
        workers = []
    for index, entry in enumerate(workers):
        if not isinstance(entry, dict):
            problems.append(f"fleet.workers[{index}] is not an object")
            continue
        if not isinstance(entry.get("url"), str) or not entry.get("url"):
            problems.append(f"fleet.workers[{index}].url missing")
        if "metrics" not in entry:
            problems.append(
                f"fleet.workers[{index}].metrics missing (null when the "
                "scrape failed)")
        elif entry["metrics"] is not None:
            problems.extend(
                f"fleet.workers[{index}].metrics: {p}"
                for p in validate_telemetry(entry["metrics"]))
    host = fleet.get("host")
    if "host" not in fleet:
        problems.append("fleet.host missing (the dispatching host's own "
                        "telemetry snapshot)")
    elif host is not None:
        problems.extend(f"fleet.host: {p}" for p in validate_telemetry(host))
    return problems


_SERVE_KEYS = ("schema", "kind", "request", "cache_key", "result")
_HEX = set("0123456789abcdef")


def validate_serve(doc: Any) -> List[str]:
    """Structurally validate a ``repro.serve/1`` result document.

    The nested ``result`` payload is validated against its own kind:
    run results carry the headline metric keys, sweep results are
    ``repro.sweep/1`` documents, chaos results are ``repro.chaos/1``
    documents (each validated in place, problems prefixed ``result.``).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != SERVE_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SERVE_SCHEMA!r}")
    for key in _SERVE_KEYS:
        if key not in doc:
            problems.append(f"missing {key!r}")
    kind = doc.get("kind")
    if kind not in SERVE_KINDS:
        problems.append(
            f"kind is {kind!r}, expected one of {list(SERVE_KINDS)!r}")
    request = doc.get("request")
    if isinstance(request, dict):
        if request.get("kind") != kind:
            problems.append(
                f"request.kind {request.get('kind')!r} does not match "
                f"document kind {kind!r}")
        for key in ("app", "machine", "scale"):
            if key not in request:
                problems.append(f"request.{key} missing")
    elif "request" in doc:
        problems.append("'request' is not an object")
    key = doc.get("cache_key")
    if "cache_key" in doc and not (
            isinstance(key, str) and len(key) == 64 and set(key) <= _HEX):
        problems.append("cache_key is not a 64-char lowercase SHA-256 hex")
    result = doc.get("result")
    if isinstance(result, dict):
        if kind == "run":
            for mkey in _METRIC_KEYS:
                if mkey not in result:
                    problems.append(f"result.{mkey} missing")
        elif kind == "sweep":
            problems.extend(
                f"result.{p}" for p in validate_sweep(result))
        elif kind == "chaos":
            problems.extend(
                f"result.{p}" for p in validate_chaos(result))
    elif "result" in doc:
        problems.append("'result' is not an object")
    return problems


_TELEMETRY_TYPES = ("counter", "gauge", "histogram")


def _validate_telemetry_sample(index: int, sindex: int, entry: Dict[str, Any],
                               sample: Any, problems: List[str]) -> None:
    prefix = f"metrics[{index}].samples[{sindex}]"
    if not isinstance(sample, dict):
        problems.append(f"{prefix} is not an object")
        return
    labels = sample.get("labels")
    if not isinstance(labels, dict):
        problems.append(f"{prefix}.labels missing or not an object")
    else:
        names = entry.get("label_names")
        if isinstance(names, list) and sorted(labels) != sorted(names):
            problems.append(
                f"{prefix}.labels {sorted(labels)} do not match "
                f"label_names {sorted(names)}")
        if any(not isinstance(v, str) for v in labels.values()):
            problems.append(f"{prefix}.labels has non-string values")
    if entry.get("type") in ("counter", "gauge"):
        value = sample.get("value")
        if not _finite(value):
            problems.append(f"{prefix}.value missing or not finite")
        elif entry.get("type") == "counter" and value < 0:
            problems.append(f"{prefix}.value is a negative counter")
        return
    # histogram
    count = sample.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        problems.append(f"{prefix}.count missing or not a non-negative int")
        count = None
    if not _finite(sample.get("sum")):
        problems.append(f"{prefix}.sum missing or not finite")
    buckets = sample.get("buckets")
    if not isinstance(buckets, list):
        problems.append(f"{prefix}.buckets missing or not a list")
        return
    last_le, last_count = -math.inf, 0
    for bindex, bucket in enumerate(buckets):
        if not isinstance(bucket, dict) or not _finite(bucket.get("le")) \
                or not isinstance(bucket.get("count"), int):
            problems.append(f"{prefix}.buckets[{bindex}] malformed")
            return
        if bucket["le"] <= last_le:
            problems.append(
                f"{prefix}.buckets[{bindex}].le not strictly increasing")
        if bucket["count"] < last_count:
            problems.append(
                f"{prefix}.buckets[{bindex}].count decreased "
                "(buckets are cumulative)")
        last_le, last_count = bucket["le"], bucket["count"]
    if count is not None and buckets and last_count > count:
        problems.append(
            f"{prefix}: largest bucket count {last_count} exceeds "
            f"total count {count}")


def validate_telemetry(doc: Any) -> List[str]:
    """Structurally validate a ``repro.telemetry/1`` metrics snapshot.

    Beyond per-field checks, the *deterministic layout* contract is
    enforced: family names strictly ascending, and each family's samples
    strictly ascending by label-value tuple (in ``label_names`` order).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != TELEMETRY_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {TELEMETRY_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        problems.append("'metrics' missing or not a list")
        return problems
    last_name = ""
    for index, entry in enumerate(metrics):
        if not isinstance(entry, dict):
            problems.append(f"metrics[{index}] is not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"metrics[{index}].name missing")
        else:
            if last_name and name <= last_name:
                problems.append(
                    f"metrics[{index}].name {name!r} not sorted after "
                    f"{last_name!r} (deterministic ordering violated)")
            last_name = name
        if entry.get("type") not in _TELEMETRY_TYPES:
            problems.append(
                f"metrics[{index}].type is {entry.get('type')!r}, expected "
                f"one of {list(_TELEMETRY_TYPES)!r}")
        if not isinstance(entry.get("help"), str):
            problems.append(f"metrics[{index}].help missing")
        names = entry.get("label_names")
        if not isinstance(names, list) \
                or any(not isinstance(n, str) for n in names):
            problems.append(
                f"metrics[{index}].label_names missing or malformed")
        samples = entry.get("samples")
        if not isinstance(samples, list):
            problems.append(f"metrics[{index}].samples missing or not a list")
            continue
        last_key: Any = None
        for sindex, sample in enumerate(samples):
            _validate_telemetry_sample(index, sindex, entry, sample, problems)
            if isinstance(sample, dict) and isinstance(names, list) \
                    and isinstance(sample.get("labels"), dict):
                key = tuple(str(sample["labels"].get(n, "")) for n in names)
                if last_key is not None and key <= last_key:
                    problems.append(
                        f"metrics[{index}].samples[{sindex}] labels not "
                        "sorted (deterministic ordering violated)")
                last_key = key
    return problems


_TRACE_PHASES = ("X", "B", "E", "i", "M")


def validate_fleet_trace(doc: Any) -> List[str]:
    """Structurally validate a ``repro.fleet.trace/1`` merged timeline.

    The document is Chrome-trace JSON plus the ``schema`` tag: Perfetto
    loads it directly (unknown top-level keys are ignored), and this
    validator enforces the merge contract — every timestamp normalized to
    a non-negative microsecond offset from the sweep's first event, every
    duration non-negative, and the clock-offset table covering one entry
    per worker process.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != FLEET_TRACE_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected "
            f"{FLEET_TRACE_SCHEMA!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("'traceEvents' missing or not a list")
        return problems
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("'displayTimeUnit' missing or not 'ms'/'ns'")
    offsets = doc.get("offsets")
    if not isinstance(offsets, dict):
        problems.append("'offsets' missing or not an object "
                        "(per-worker clock-offset estimates)")
    for index, event in enumerate(events):
        prefix = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{prefix} is not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{prefix}.name missing")
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            problems.append(
                f"{prefix}.ph is {phase!r}, expected one of "
                f"{list(_TRACE_PHASES)!r}")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{prefix}.pid missing or not an int")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not _finite(ts) or ts < 0:
            problems.append(
                f"{prefix}.ts missing or negative (timestamps must be "
                "normalized to the sweep's first event)")
        if "dur" in event and (not _finite(event["dur"]) or event["dur"] < 0):
            problems.append(f"{prefix}.dur negative or not finite")
    return problems


def validate_snapshot(doc: Any) -> List[str]:
    """Validate any snapshot kind, dispatching on the schema tag."""
    if isinstance(doc, dict) and doc.get("schema") == TELEMETRY_SCHEMA:
        return validate_telemetry(doc)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        return validate_bench(doc)
    if isinstance(doc, dict) and doc.get("schema") == CHAOS_SCHEMA:
        return validate_chaos(doc)
    if isinstance(doc, dict) and doc.get("schema") == CHAOS_FLEET_SCHEMA:
        return validate_chaos_fleet(doc)
    if isinstance(doc, dict) and doc.get("schema") in SWEEP_SCHEMAS:
        return validate_sweep(doc)
    if isinstance(doc, dict) and doc.get("schema") == SERVE_SCHEMA:
        return validate_serve(doc)
    if isinstance(doc, dict) and doc.get("schema") == FLEET_TRACE_SCHEMA:
        return validate_fleet_trace(doc)
    return validate_profile(doc)


def assert_valid(doc: Any) -> None:
    """Raise ``ValueError`` listing every problem when ``doc`` is invalid."""
    problems = validate_snapshot(doc)
    if problems:
        raise ValueError(
            "invalid snapshot: " + "; ".join(problems))
