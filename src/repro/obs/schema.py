"""Schema versioning and validation for machine-readable snapshots.

Two document kinds are versioned:

* ``repro.obs/2`` — the full run-profile snapshot written by
  ``repro profile --json`` / ``repro run --profile-json``.  Version 2
  adds the ``metrics.attribution`` per-optimization counters and the
  ``critical_path`` section (``null`` when the run was not traced);
  version 1 documents are still accepted by the validator, without the
  new requirements;
* ``repro.bench/1`` — the lighter ``BENCH_*.json`` envelope the benchmark
  suite writes around its table/figure series.

The validator is hand-rolled (structural checks, no external dependency)
so it runs in the minimal CI image; it returns a list of human-readable
problems, empty when the document is valid.  ``assert_valid`` is the
raising convenience used by the CLI before it writes anything.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

PROFILE_SCHEMA = "repro.obs/2"
#: Older profile snapshots the validator still accepts (read compatibility).
PROFILE_SCHEMAS = ("repro.obs/1", PROFILE_SCHEMA)
BENCH_SCHEMA = "repro.bench/1"

_RUN_KEYS = ("application", "machine", "num_processors", "options")
_MATRIX_KEYS = ("messages", "bytes", "total_messages", "total_bytes")
_UTILIZATION_KEYS = ("proc", "busy", "compute", "serial", "memory_comm",
                     "mgmt", "idle", "tasks")
_OBJECT_KEYS = ("object_id", "name", "fetches", "broadcasts",
                "eager_updates", "bytes_moved", "versions")
_TIMELINE_KEYS = ("interval", "horizon", "samples")
_METRIC_KEYS = ("elapsed", "tasks_executed", "total_messages", "total_bytes",
                "broadcasts", "eager_updates", "busy_per_processor")
_CRITICAL_KEYS = ("elapsed", "buckets", "dominant_bucket", "per_processor")
_CRITICAL_BUCKETS = ("compute", "task_management", "communication", "stall")


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def validate_profile(doc: Any) -> List[str]:
    """Structurally validate a ``repro.obs/*`` snapshot document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") not in PROFILE_SCHEMAS:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected one of "
            f"{list(PROFILE_SCHEMAS)!r}")
    v2 = doc.get("schema") == PROFILE_SCHEMA

    run = doc.get("run")
    if not isinstance(run, dict):
        problems.append("missing 'run' section")
    else:
        for key in _RUN_KEYS:
            if key not in run:
                problems.append(f"run.{key} missing")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("missing 'metrics' section")
    else:
        for key in _METRIC_KEYS:
            if key not in metrics:
                problems.append(f"metrics.{key} missing")
        if v2:
            attribution = metrics.get("attribution")
            if not isinstance(attribution, dict):
                problems.append("metrics.attribution missing (required by "
                                f"{PROFILE_SCHEMA})")
            elif any(not _finite(v) for v in attribution.values()):
                problems.append("metrics.attribution has non-finite values")

    n = run.get("num_processors") if isinstance(run, dict) else None
    matrix = doc.get("comm_matrix")
    if not isinstance(matrix, dict):
        problems.append("missing 'comm_matrix' section")
    else:
        for key in _MATRIX_KEYS:
            if key not in matrix:
                problems.append(f"comm_matrix.{key} missing")
        for key in ("messages", "bytes"):
            grid = matrix.get(key)
            if isinstance(grid, list) and isinstance(n, int):
                if len(grid) != n or any(
                        not isinstance(row, list) or len(row) != n
                        for row in grid):
                    problems.append(f"comm_matrix.{key} is not {n}x{n}")
                elif any(not _finite(v) for row in grid for v in row):
                    problems.append(f"comm_matrix.{key} has non-finite cells")
            elif key in matrix:
                problems.append(f"comm_matrix.{key} is not a matrix")
        messages = matrix.get("messages")
        total = matrix.get("total_messages")
        if isinstance(messages, list) and _finite(total):
            if sum(sum(row) for row in messages if isinstance(row, list)) != total:
                problems.append("comm_matrix.total_messages != matrix sum")

    objects = doc.get("objects")
    if not isinstance(objects, list):
        problems.append("missing 'objects' section")
    else:
        for index, entry in enumerate(objects):
            if not isinstance(entry, dict):
                problems.append(f"objects[{index}] is not an object")
                continue
            for key in _OBJECT_KEYS:
                if key not in entry:
                    problems.append(f"objects[{index}].{key} missing")

    utilization = doc.get("utilization")
    if not isinstance(utilization, list):
        problems.append("missing 'utilization' section")
    else:
        if isinstance(n, int) and len(utilization) != n:
            problems.append(
                f"utilization has {len(utilization)} rows, expected {n}")
        for index, entry in enumerate(utilization):
            if not isinstance(entry, dict):
                problems.append(f"utilization[{index}] is not an object")
                continue
            for key in _UTILIZATION_KEYS:
                if key not in entry:
                    problems.append(f"utilization[{index}].{key} missing")
                elif key != "proc" and not _finite(entry[key]):
                    problems.append(f"utilization[{index}].{key} not finite")

    timeline = doc.get("timeline")
    if not isinstance(timeline, dict):
        problems.append("missing 'timeline' section")
    else:
        for key in _TIMELINE_KEYS:
            if key not in timeline:
                problems.append(f"timeline.{key} missing")
        samples = timeline.get("samples")
        if isinstance(samples, list):
            last = -math.inf
            for index, row in enumerate(samples):
                if not isinstance(row, dict) or "t" not in row:
                    problems.append(f"timeline.samples[{index}] malformed")
                    continue
                if not _finite(row["t"]) or row["t"] <= last:
                    problems.append(
                        f"timeline.samples[{index}].t not increasing")
                    continue
                last = row["t"]
        elif "samples" in timeline:
            problems.append("timeline.samples is not a list")

    if v2:
        if "critical_path" not in doc:
            problems.append(
                f"critical_path missing (required by {PROFILE_SCHEMA}; "
                "null for untraced runs)")
        else:
            critical = doc["critical_path"]
            if critical is not None:
                problems.extend(_validate_critical(critical))

    return problems


def _validate_critical(critical: Any) -> List[str]:
    """Validate a non-null ``critical_path`` section of a v2 snapshot."""
    problems: List[str] = []
    if not isinstance(critical, dict):
        return ["critical_path is not an object"]
    for key in _CRITICAL_KEYS:
        if key not in critical:
            problems.append(f"critical_path.{key} missing")
    buckets = critical.get("buckets")
    if isinstance(buckets, dict):
        total = 0.0
        for bucket in _CRITICAL_BUCKETS:
            value = buckets.get(bucket)
            if not _finite(value) or value < 0:
                problems.append(
                    f"critical_path.buckets.{bucket} missing or not a "
                    "non-negative finite number")
            else:
                total += value
        elapsed = critical.get("elapsed")
        if _finite(elapsed) and abs(total - elapsed) > 1e-6 * max(1.0, elapsed):
            problems.append(
                f"critical_path buckets sum to {total}, expected elapsed "
                f"{elapsed}")
    elif "buckets" in critical:
        problems.append("critical_path.buckets is not an object")
    per_proc = critical.get("per_processor")
    if isinstance(per_proc, list):
        for index, row in enumerate(per_proc):
            if not isinstance(row, dict) or "proc" not in row:
                problems.append(
                    f"critical_path.per_processor[{index}] malformed")
    elif "per_processor" in critical:
        problems.append("critical_path.per_processor is not a list")
    return problems


def validate_bench(doc: Any) -> List[str]:
    """Structurally validate a ``repro.bench/1`` (``BENCH_*.json``) document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["snapshot is not a JSON object"]
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        problems.append("missing 'name'")
    if "data" not in doc:
        problems.append("missing 'data'")
    return problems


def validate_snapshot(doc: Any) -> List[str]:
    """Validate either snapshot kind, dispatching on the schema tag."""
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        return validate_bench(doc)
    return validate_profile(doc)


def assert_valid(doc: Any) -> None:
    """Raise ``ValueError`` listing every problem when ``doc`` is invalid."""
    problems = validate_snapshot(doc)
    if problems:
        raise ValueError(
            "invalid snapshot: " + "; ".join(problems))
