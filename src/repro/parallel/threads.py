"""Execute a Jade program on real host threads.

The executor drives the same :class:`~repro.core.synchronizer.Synchronizer`
the simulated runtimes use, but dispatches enabled task bodies to a
``ThreadPoolExecutor``.  Serial sections run on the coordinating thread in
program order, exactly like Jade's main thread.

Concurrency model
-----------------

* One lock guards the synchronizer and the shared store's version
  bookkeeping; bodies run outside the lock.
* Tasks conflicting on an object are already ordered by the synchronizer
  — a task is only submitted once every conflicting predecessor
  *completed* — so bodies never race on payload data.  This makes the
  executor a true parallel implementation of Jade's semantics, not just a
  test harness (though the GIL limits the speedup of pure-Python bodies).
* Determinism of *results* is guaranteed by the dependence order;
  determinism of *timing* is, naturally, not.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.objects import ObjectStore
from repro.core.program import JadeProgram
from repro.core.synchronizer import Synchronizer
from repro.core.task import TaskContext, TaskSpec
from repro.errors import DeadlockError


@dataclass
class ThreadedRunResult:
    """Outcome of a threaded execution."""

    store: ObjectStore
    tasks_executed: int = 0
    serial_sections_executed: int = 0
    max_concurrent: int = 0
    errors: List[BaseException] = field(default_factory=list)

    def payload(self, obj):
        return self.store.get(obj.object_id)


class ThreadedExecutor:
    """Runs one Jade program on a host thread pool."""

    def __init__(self, program: JadeProgram, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker thread")
        program.validate()
        self.program = program
        self.num_workers = num_workers
        self.store = ObjectStore("threaded")
        self.sync = Synchronizer()
        self._lock = threading.Lock()
        self._all_done = threading.Event()
        self._serial_enabled = threading.Event()
        self._completed = 0
        self._running = 0
        self._max_running = 0
        self._errors: List[BaseException] = []
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    def run(self, timeout: float = 60.0) -> ThreadedRunResult:
        """Execute the program; returns once every task completed."""
        for obj in self.program.registry:
            self.store.install(obj)
        total = len(self.program.tasks)
        if total == 0:
            return ThreadedRunResult(store=self.store)

        with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
            self._pool = pool
            # The coordinating thread plays Jade's main thread: create
            # tasks in serial order, executing serial sections inline.
            for task in self.program.tasks:
                if self._errors:
                    break
                if task.serial:
                    self._serial_enabled.clear()
                    with self._lock:
                        enabled = self.sync.add_task(task)
                    if not enabled:
                        self._register_serial_wait(task)
                        if not self._serial_enabled.wait(timeout):
                            raise DeadlockError(
                                f"serial section {task.name!r} never enabled"
                            )
                    self._execute_body(task)
                    self._finish(task)
                else:
                    with self._lock:
                        enabled = self.sync.add_task(task)
                    if enabled:
                        pool.submit(self._run_task, task)
            # Wait for the parallel tail.
            if not self._wait_all(total, timeout):
                raise DeadlockError(
                    f"threaded run finished {self._completed}/{total} tasks"
                )

        if self._errors:
            raise self._errors[0]
        return ThreadedRunResult(
            store=self.store,
            tasks_executed=self._completed - sum(
                1 for t in self.program.tasks if t.serial
            ),
            serial_sections_executed=sum(
                1 for t in self.program.tasks if t.serial
            ),
            max_concurrent=self._max_running,
            errors=list(self._errors),
        )

    # ------------------------------------------------------------------ #
    def _wait_all(self, total: int, timeout: float) -> bool:
        self._check_all_done(total)
        return self._all_done.wait(timeout)

    def _check_all_done(self, total: int) -> None:
        with self._lock:
            if self._completed >= total or self._errors:
                self._all_done.set()

    def _register_serial_wait(self, task: TaskSpec) -> None:
        # complete() signals the event when the waiting serial section
        # becomes enabled; nothing to do here beyond remembering it.
        with self._lock:
            self._waiting_serial_id = task.task_id
            if self.sync.is_enabled(task.task_id):
                self._serial_enabled.set()

    # ------------------------------------------------------------------ #
    def _run_task(self, task: TaskSpec) -> None:
        try:
            with self._lock:
                self._running += 1
                self._max_running = max(self._max_running, self._running)
            self._execute_body(task)
        except BaseException as exc:  # noqa: BLE001 — reported to caller
            with self._lock:
                self._errors.append(exc)
                self._all_done.set()
            return
        finally:
            with self._lock:
                self._running -= 1
        self._finish(task)

    def _execute_body(self, task: TaskSpec) -> None:
        TaskContext(task, self.store, processor=0).run_body()

    def _finish(self, task: TaskSpec) -> None:
        with self._lock:
            for obj in task.spec.writes():
                self.store.bump_version(
                    obj.object_id,
                    self.sync.produced_version(task.task_id, obj.object_id),
                )
            newly = self.sync.complete_task(task)
            self._completed += 1
            to_submit = []
            for enabled_id in newly:
                enabled = self.program.tasks[enabled_id]
                if enabled.serial:
                    self._serial_enabled.set()
                else:
                    to_submit.append(enabled)
            done = self._completed >= len(self.program.tasks)
        for enabled in to_submit:
            self._pool.submit(self._run_task, enabled)
        if done:
            self._all_done.set()


def run_threaded(program: JadeProgram, num_workers: int = 4,
                 timeout: float = 60.0) -> ThreadedRunResult:
    """Convenience wrapper: execute ``program`` on host threads."""
    return ThreadedExecutor(program, num_workers).run(timeout=timeout)
