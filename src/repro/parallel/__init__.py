"""Real-machine execution of Jade programs (extension).

The reproduction's measurements come from the deterministic simulated
machines, but a Jade program is just tasks + dependences, so it can also
run on the *host* machine.  :mod:`repro.parallel.threads` executes task
bodies on a thread pool, releasing work in exactly the dependence order
the synchronizer dictates.

Because CPython's GIL serializes pure-Python bytecode, this executor
provides **functional** parallelism (and true parallelism only inside
GIL-releasing numpy kernels) — see the reproduction band notes in
DESIGN.md.  Its value is as an oracle: the same program, scheduled by a
completely independent mechanism (real threads, real races resolved by
locks), must still produce the stripped serial results.
"""

from repro.parallel.threads import ThreadedExecutor, run_threaded

__all__ = ["ThreadedExecutor", "run_threaded"]
