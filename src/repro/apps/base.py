"""Application interface shared by the four paper applications."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.program import JadeProgram
from repro.runtime.options import LocalityLevel


class MachineKind(enum.Enum):
    """Which machine's cost constants an elaborated program should carry."""

    DASH = "dash"
    IPSC860 = "ipsc860"


class Application:
    """One paper application.

    Subclasses set :attr:`name`, :attr:`supports_task_placement` and
    implement :meth:`build`.  An application object is configured once
    (with a ``Config`` carrying the real and cost geometries) and can then
    elaborate programs for any processor count / machine / locality level.

    ``build`` returns a fresh :class:`JadeProgram` each call — programs
    hold live payload state, so runs must not share them.
    """

    #: The paper's name for the application ("water", "string", ...).
    name: str = "application"
    #: Whether the programmer can improve locality with explicit task
    #: placement (§5.2: true for Ocean and Panel Cholesky; Water and
    #: String "cannot improve the locality ... using explicit task
    #: placement").
    supports_task_placement: bool = False

    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> JadeProgram:
        """Elaborate the Jade program for this configuration."""
        raise NotImplementedError

    def serial_overhead_factor(self, machine: MachineKind) -> float:
        """Ratio of the original *serial* version's time to the stripped
        version's (Tables 1 and 6 report both; the difference is the data
        structure modifications introduced by the Jade conversion)."""
        return 1.0

    def check_placement_supported(self, level: LocalityLevel) -> None:
        if level is LocalityLevel.TASK_PLACEMENT and not self.supports_task_placement:
            raise ValueError(
                f"{self.name} has no explicit task placement (§5.2: the "
                "programmer cannot improve its locality that way)"
            )


def placement_for(level: LocalityLevel, processor: Optional[int]) -> Optional[int]:
    """Helper: explicit placements apply only at the Task Placement level."""
    if level is LocalityLevel.TASK_PLACEMENT:
        return processor
    return None
