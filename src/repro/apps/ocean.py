"""Ocean: eddy and boundary-current simulation (§4 of the paper).

"The computationally intensive section of Ocean uses an iterative method
to solve a set of discretized spatial partial differential equations. ...
the programmer decomposed the array into a set of interior blocks and
boundary blocks.  Each block consists of a set of columns.  The size of
the interior blocks determines the granularity of the computation and is
adjusted to the number of processors executing the application.  There is
one boundary block two columns wide between every two adjacent interior
blocks.  At every iteration the application generates a set of tasks to
compute the new array values in parallel.  There is one task per interior
block; that task updates all of the elements in the interior block and one
column of elements in each of the border blocks.  The locality object is
the interior block."

Reproduced exactly, including the decomposition arithmetic: ``P-1``
interior blocks for ``P`` processors (the programmer devotes the main
processor to task creation), each a ``rows × width`` column block, with
2-column boundary blocks between neighbours.  Adjacent tasks conflict on
their shared boundary block — the object-granularity dependence that makes
Ocean communication-sensitive — and iterations pipeline through those
conflicts.  The main thread creates all iterations' tasks as fast as
creation allows; with the small tasks this grid produces, task management
on the main processor becomes the bottleneck at scale (Figures 10, 20).

Real numerics: a five-point-stencil sweep (Gauss–Seidel-flavoured, since
blocks update in place in dependence order) with fixed boundary columns;
parallel executions must equal the stripped serial sweep bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import Application, MachineKind
from repro.core.access import AccessSpec
from repro.core.program import JadeBuilder, JadeProgram
from repro.runtime.options import LocalityLevel
from repro.util.rng import substream


@dataclass
class OceanConfig:
    """Geometry and calibration for one Ocean instance."""

    #: Real grid (rows, cols) the bodies compute on.
    real_grid: Tuple[int, int] = (16, 32)
    #: Iterations of the solve.
    iterations: int = 4
    #: Cost-model grid (the paper ran a square 192 × 192 grid).
    cost_grid: Tuple[int, int] = (16, 32)
    #: Target stripped execution time per machine (Tables 1 / 6).
    stripped_seconds: Dict[MachineKind, float] = field(
        default_factory=lambda: {MachineKind.DASH: 0.04, MachineKind.IPSC860: 0.04}
    )
    seed: int = 22

    @classmethod
    def tiny(cls) -> "OceanConfig":
        return cls()

    @classmethod
    def paper(cls) -> "OceanConfig":
        """The paper's 192 × 192 grid.  Iteration count chosen so that the
        per-cell update cost implied by the Table 1 / 6 stripped times is
        a plausible handful of flops per point on each machine."""
        return cls(
            # Wide enough to decompose into 31 interior blocks (32-proc
            # runs); bodies stay cheap because the rows are few.
            real_grid=(16, 128),
            iterations=120,
            cost_grid=(192, 192),
            stripped_seconds={
                MachineKind.DASH: 100.03,    # Table 1, "Stripped"
                MachineKind.IPSC860: 60.99,  # Table 6, "Stripped"
            },
        )

    def cell_cost(self, machine: MachineKind) -> float:
        rows, cols = self.cost_grid
        return self.stripped_seconds[machine] / (self.iterations * rows * cols)


@dataclass
class _Decomposition:
    """Column decomposition into interior and boundary blocks."""

    interior_cols: List[Tuple[int, int]]
    boundary_cols: List[Tuple[int, int]]

    @property
    def num_blocks(self) -> int:
        return len(self.interior_cols)


def decompose(cols: int, num_blocks: int) -> _Decomposition:
    """Split ``cols`` columns into interior blocks with 2-column boundary
    blocks between adjacent ones (plus one fixed column at each edge).

    >>> d = decompose(32, 3)
    >>> d.interior_cols
    [(1, 10), (12, 21), (23, 31)]
    >>> d.boundary_cols
    [(10, 12), (21, 23)]
    """
    if num_blocks < 1:
        raise ValueError("need at least one interior block")
    inner = cols - 2 - 2 * (num_blocks - 1)
    if inner < num_blocks:
        raise ValueError(
            f"grid of {cols} columns too narrow for {num_blocks} blocks"
        )
    bounds = np.linspace(0, inner, num_blocks + 1).astype(int)
    interior, boundary = [], []
    offset = 1
    for b in range(num_blocks):
        width = int(bounds[b + 1] - bounds[b])
        interior.append((offset, offset + width))
        offset += width
        if b < num_blocks - 1:
            boundary.append((offset, offset + 2))
            offset += 2
    return _Decomposition(interior, boundary)


class Ocean(Application):
    """The Ocean application."""

    name = "ocean"
    supports_task_placement = True

    def __init__(self, config: OceanConfig = None) -> None:
        self.config = config or OceanConfig.tiny()

    def serial_overhead_factor(self, machine: MachineKind) -> float:
        # Table 1: 102.99 / 100.03; Table 6: 54.19 / 60.99 (the stripped
        # version is *slower* on the iPSC/860 — the Jade data structure
        # changes hurt the i860's small cache).
        return 1.030 if machine is MachineKind.DASH else 0.889

    def num_blocks(self, num_processors: int) -> int:
        """One task per interior block; the main processor only creates
        tasks (§5.2: the programmer "omits the main processor")."""
        return max(1, num_processors - 1)

    # ------------------------------------------------------------------ #
    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> JadeProgram:
        cfg = self.config
        P = num_processors
        B = self.num_blocks(P)
        rows, cols = cfg.real_grid
        crows, ccols = cfg.cost_grid
        real = decompose(cols, B)
        cost = decompose(ccols, B)
        jade = JadeBuilder()

        rng = substream(cfg.seed, "ocean.state")
        grid0 = rng.random((rows, cols))

        def block_home(b: int) -> int:
            return 0 if P == 1 else 1 + b % (P - 1)

        interior = [
            jade.object(
                f"interior{b}",
                initial=grid0[:, lo:hi].copy(),
                sim_nbytes=crows * (cost.interior_cols[b][1] - cost.interior_cols[b][0]) * 8,
                home=block_home(b),
            )
            for b, (lo, hi) in enumerate(real.interior_cols)
        ]
        boundary = [
            jade.object(
                f"boundary{b}",
                initial=grid0[:, lo:hi].copy(),
                sim_nbytes=crows * 2 * 8,
                home=block_home(b),
            )
            for b, (lo, hi) in enumerate(real.boundary_cols)
        ]
        # Fixed edge columns, read-only parameters of the stencil.
        edges = jade.object(
            "edges", initial=np.stack([grid0[:, 0], grid0[:, -1]]),
            sim_nbytes=crows * 2 * 8, home=0,
        )
        result = jade.object("result", initial=np.zeros(1), home=0)

        def update_body(b: int):
            def body(ctx) -> None:
                own = ctx.wr(interior[b])
                left = ctx.wr(boundary[b - 1]) if b > 0 else None
                right = ctx.wr(boundary[b]) if b < B - 1 else None
                edge = ctx.rd(edges)
                # Assemble the block's neighbourhood: [left ghost | interior
                # | right ghost], update interior plus one column of each
                # adjacent boundary block (§4), five-point stencil.
                lcol = left[:, 1] if left is not None else edge[0]
                rcol = right[:, 0] if right is not None else edge[1]
                panel = np.column_stack([lcol, own, rcol])
                _stencil_sweep(panel)
                own[:, :] = panel[:, 1:-1]
                if left is not None:
                    left[:, 1] = panel[:, 0]
                if right is not None:
                    right[:, 0] = panel[:, -1]
            return body

        def gather_body(ctx) -> None:
            total = sum(float(np.sum(ctx.rd(block))) for block in interior)
            total += sum(float(np.sum(ctx.rd(block))) for block in boundary)
            ctx.wr(result)[0] = total

        cell_cost = cfg.cell_cost(machine)
        for it in range(cfg.iterations):
            for b in range(B):
                clo, chi = cost.interior_cols[b]
                cells = crows * (chi - clo + 2)  # interior + 2 border columns
                spec = AccessSpec().rw(interior[b])
                if b > 0:
                    spec.rw(boundary[b - 1])
                if b < B - 1:
                    spec.rw(boundary[b])
                spec.rd(edges)
                jade.task(
                    f"relax.{it}.{b}", body=update_body(b), spec=spec,
                    cost=cells * cell_cost, phase=f"iter.{it}",
                    placement=(block_home(b)
                               if level is LocalityLevel.TASK_PLACEMENT else None),
                )
        jade.serial("gather", body=gather_body,
                    rd=interior + boundary, wr=[result], cost=0.0)
        return jade.finish("ocean")


def _stencil_sweep(panel: np.ndarray) -> None:
    """One in-place five-point relaxation over the panel's interior.

    Top/bottom rows are fixed; the first and last columns are the ghost
    columns whose *new* values this task owns one of (§4's "one column of
    elements in each of the border blocks" — the caller writes them back).
    """
    interior = panel[1:-1, 1:-1]
    interior[:, :] = 0.25 * (
        panel[0:-2, 1:-1] + panel[2:, 1:-1] + panel[1:-1, 0:-2] + panel[1:-1, 2:]
    )
    # The ghost columns' interior rows relax against their own neighbours.
    panel[1:-1, 0] = 0.5 * panel[1:-1, 0] + 0.5 * panel[1:-1, 1]
    panel[1:-1, -1] = 0.5 * panel[1:-1, -1] + 0.5 * panel[1:-1, -2]
