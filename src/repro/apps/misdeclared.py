"""A deliberately mis-declared application — the checker's canary.

Jade's correctness story collapses silently when an access specification
under-declares: the synchronizer extracts the wrong dependence graph, the
communicator fetches the wrong objects, and the run "succeeds" with wrong
numbers.  This app seeds exactly that bug so ``python -m repro check`` has
a known-bad input it must flag (and the test suite can assert it does):

* ``init.<i>`` tasks each write their own cell — correctly declared;
* ``smooth.1`` averages its cell with its *left neighbor's* cell, but
  declares only ``wr(cell1)`` — the read of ``cell0`` is undeclared.  The
  checker must report an :class:`~repro.check.record.AccessViolation`
  naming the task, the object and the access kind, and the race detector
  must flag the undeclared read as concurrent with ``init.0``'s write.

Do **not** add this application to ``ALL_APPLICATIONS``: it is not part of
the paper's evaluation set and must never feed experiment tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application, MachineKind
from repro.runtime.options import LocalityLevel


@dataclass
class MisdeclaredConfig:
    """Geometry of the canary program."""

    num_cells: int = 4
    cell_len: int = 8
    task_cost: float = 1e-4

    @classmethod
    def tiny(cls) -> "MisdeclaredConfig":
        return cls()

    @classmethod
    def paper(cls) -> "MisdeclaredConfig":
        # There is no paper-scale version of a bug; same geometry.
        return cls()


class Misdeclared(Application):
    """Stencil-like toy program with one missing ``rd`` declaration."""

    name = "misdeclared"
    supports_task_placement = False

    def __init__(self, config: MisdeclaredConfig) -> None:
        self.config = config

    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> "JadeProgram":
        from repro.core.program import JadeBuilder

        self.check_placement_supported(level)
        cfg = self.config
        jade = JadeBuilder()
        cells = [
            jade.object(f"cell{i}", initial=np.zeros(cfg.cell_len),
                        home=i % num_processors)
            for i in range(cfg.num_cells)
        ]

        def init(i):
            def body(ctx):
                ctx.wr(cells[i])[:] = float(i + 1)
            return body

        for i in range(cfg.num_cells):
            jade.task(f"init.{i}", body=init(i), wr=[cells[i]],
                      cost=cfg.task_cost, phase="init")

        def smooth(ctx):
            # BUG (deliberate): reads the left neighbor without declaring
            # rd(cell0).  The synchronizer therefore never orders this task
            # after init.0 — an access violation and an object race.
            left = ctx.rd(cells[0])
            ctx.wr(cells[1])[:] = (ctx.rd(cells[1]) + left) * 0.5

        jade.task("smooth.1", body=smooth,
                  rw=[cells[1]], cost=cfg.task_cost, phase="smooth")
        return jade.finish("misdeclared")
