"""The paper's application set (§4).

Three complete scientific applications and one computational kernel:

* :mod:`repro.apps.water` — Water: forces and potentials in a system of
  water molecules in the liquid state (O(N²) pairwise phases with serial
  update phases between them);
* :mod:`repro.apps.string_app` — String: seismic tomography between two
  oil wells (ray tracing + backprojection, one parallel phase per
  iteration);
* :mod:`repro.apps.ocean` — Ocean: eddy/boundary-current simulation
  (five-point-stencil iteration over a block-decomposed grid);
* :mod:`repro.apps.cholesky` — Panel Cholesky: sparse positive-definite
  panel factorization (internal/external update task DAG), on the
  :mod:`repro.apps.sparse` substrate (synthetic BCSSTK15-profile matrix
  plus panel-granularity symbolic factorization).

Every application separates its *real* geometry (small arrays the task
bodies genuinely compute on — validated against serial execution) from its
*cost* geometry (the paper's data-set sizes, which drive the simulated
times and object sizes).  ``Config.tiny()`` makes both small for tests;
``Config.paper()`` sets the cost geometry to the paper's data sets.
"""

from repro.apps.base import Application, MachineKind
from repro.apps.water import Water, WaterConfig
from repro.apps.string_app import String, StringConfig
from repro.apps.ocean import Ocean, OceanConfig
from repro.apps.cholesky import PanelCholesky, CholeskyConfig
from repro.apps import sparse

__all__ = [
    "Application",
    "MachineKind",
    "Water",
    "WaterConfig",
    "String",
    "StringConfig",
    "Ocean",
    "OceanConfig",
    "PanelCholesky",
    "CholeskyConfig",
    "sparse",
]

#: The four applications keyed by their paper names.
ALL_APPLICATIONS = {
    "water": Water,
    "string": String,
    "ocean": Ocean,
    "cholesky": PanelCholesky,
}
