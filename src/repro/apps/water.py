"""Water: molecular dynamics of liquid water (§4 of the paper).

"Water performs an interleaved sequence of parallel and serial phases.
The parallel phases compute the intermolecular interactions of all pairs
of molecules; each serial phase uses the results of the previous parallel
phase to update an overall property of the set of molecules such as the
positions of the molecules.  Each parallel task reads the array containing
the molecule positions and updates an explicitly replicated contribution
array. ... At the end of the parallel phase the computation performs a
parallel reduction of the replicated contribution arrays ...  The locality
object for each task is the copy of the replicated contribution array that
it will write."

Structure reproduced exactly: per iteration, a force phase and a potential
phase, each of ``P`` tasks (the paper's programmer "matches the amount of
exposed concurrency to the number of processors" — §5.4), each followed by
a serial reduction/update section on the main processor.  The positions
object is updated in every serial section and read by every task of the
following parallel phase — it is *the* adaptive-broadcast candidate, and
its paper-scale size is the 165,888 bytes of §5.3.

Real numerics: a soft-sphere pairwise interaction on a small molecule set
(``real_molecules``), validated bit-for-bit against the stripped serial
execution.  Costs and object sizes come from the paper's 1728-molecule
data set via ``cost_molecules``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.apps.base import Application, MachineKind
from repro.core.access import AccessSpec
from repro.core.program import JadeBuilder, JadeProgram
from repro.runtime.options import LocalityLevel
from repro.util.rng import substream

#: Bytes per molecule in the positions object: 1728 molecules → the
#: 165,888-byte updated object of §5.3.
_POSITION_BYTES_PER_MOLECULE = 96
#: Bytes per molecule in a contribution array (forces + energy).
_CONTRIB_BYTES_PER_MOLECULE = 24


@dataclass
class WaterConfig:
    """Geometry and calibration for one Water instance."""

    #: Molecules the task bodies actually simulate (real numpy arrays).
    real_molecules: int = 24
    #: Molecules of the cost model (the paper ran 1728).
    cost_molecules: int = 24
    #: Iterations; each has two parallel phases (the paper ran 8).
    iterations: int = 2
    #: Target stripped (zero-overhead serial) execution time per machine,
    #: from Tables 1 and 6 of the paper for the paper-scale config.
    stripped_seconds: Dict[MachineKind, float] = field(
        default_factory=lambda: {MachineKind.DASH: 0.08, MachineKind.IPSC860: 0.08}
    )
    #: Fraction of the stripped time spent in the serial phases.  The
    #: serial work is O(N) against the phases' O(N²); at N=1728 that is a
    #: fraction of a percent (the paper's near-linear 32-way speedups
    #: bound it from above).
    serial_fraction: float = 0.0015
    #: RNG seed for the initial molecule placement.
    seed: int = 20

    @classmethod
    def tiny(cls) -> "WaterConfig":
        """Small everything: unit tests."""
        return cls()

    @classmethod
    def paper(cls) -> "WaterConfig":
        """The paper's data set: 1728 molecules, 8 iterations (§4), with
        Table 1 / Table 6 stripped times as the cost calibration."""
        return cls(
            real_molecules=48,
            cost_molecules=1728,
            iterations=8,
            stripped_seconds={
                MachineKind.DASH: 3285.90,   # Table 1, "Stripped"
                MachineKind.IPSC860: 2406.72,  # Table 6, "Stripped"
            },
        )

    # -- derived cost quantities ----------------------------------------
    def pair_count(self) -> float:
        n = self.cost_molecules
        return n * (n - 1) / 2.0

    def phase_work_seconds(self, machine: MachineKind) -> float:
        """Cost of one full parallel phase (all pairs), on ``machine``."""
        phases = 2 * self.iterations
        return self.stripped_seconds[machine] * (1.0 - self.serial_fraction) / phases

    def serial_section_seconds(self, machine: MachineKind) -> float:
        phases = 2 * self.iterations
        return self.stripped_seconds[machine] * self.serial_fraction / phases

    def positions_nbytes(self) -> int:
        return self.cost_molecules * _POSITION_BYTES_PER_MOLECULE

    def contrib_nbytes(self) -> int:
        return self.cost_molecules * _CONTRIB_BYTES_PER_MOLECULE


class Water(Application):
    """The Water application."""

    name = "water"
    supports_task_placement = False

    def __init__(self, config: WaterConfig = None) -> None:
        self.config = config or WaterConfig.tiny()

    def serial_overhead_factor(self, machine: MachineKind) -> float:
        # Table 1: 3628.29 / 3285.90; Table 6: 2482.91 / 2406.72.
        return 1.104 if machine is MachineKind.DASH else 1.032

    # ------------------------------------------------------------------ #
    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> JadeProgram:
        self.check_placement_supported(level)
        cfg = self.config
        P = num_processors
        jade = JadeBuilder()

        rng = substream(cfg.seed, "water.positions")
        initial_positions = rng.random((cfg.real_molecules, 3))

        params = jade.object("params", initial=np.array([0.05, 1e-4]),
                             sim_nbytes=4096, home=0)
        positions = jade.object("positions", initial=initial_positions,
                                sim_nbytes=cfg.positions_nbytes(), home=0)
        energy = jade.object("energy", initial=np.zeros(1), home=0)
        # One replicated contribution array per task slot, homed across the
        # machine (the language-level replication of §4).
        contribs = [
            jade.object(f"contrib{t}", initial=np.zeros((cfg.real_molecules, 4)),
                        sim_nbytes=cfg.contrib_nbytes(), home=t % P)
            for t in range(P)
        ]

        slices = _molecule_slices(cfg.real_molecules, P)
        task_cost = cfg.phase_work_seconds(machine) / P
        serial_cost = cfg.serial_section_seconds(machine)

        def interactions_body(t: int, energy_phase: bool):
            lo, hi = slices[t]

            def body(ctx) -> None:
                eps, _dt = ctx.rd(params)
                pos = ctx.rd(positions)
                out = ctx.wr(contribs[t])
                out[:] = 0.0
                if lo >= hi:
                    return
                # Pairwise soft-sphere interactions of this task's molecule
                # slice against the whole set (vectorized; no Python loop).
                diff = pos[lo:hi, None, :] - pos[None, :, :]
                d2 = np.sum(diff * diff, axis=2) + eps
                if energy_phase:
                    inv = 1.0 / d2
                    idx = np.arange(lo, hi)
                    inv[idx - lo, idx] = 0.0
                    out[lo:hi, 3] = np.sum(inv, axis=1)
                else:
                    w = 1.0 / (d2 * d2)
                    idx = np.arange(lo, hi)
                    w[idx - lo, idx] = 0.0
                    out[lo:hi, 0:3] = np.sum(diff * w[:, :, None], axis=1)

            return body

        def force_update_body(ctx) -> None:
            _eps, dt = ctx.rd(params)
            total = np.zeros((cfg.real_molecules, 4))
            for c in contribs:
                total += ctx.rd(c)
            pos = ctx.wr(positions)
            pos += dt * total[:, 0:3]
            np.mod(pos, 1.0, out=pos)

        def energy_update_body(ctx) -> None:
            _eps, dt = ctx.rd(params)
            total = np.zeros((cfg.real_molecules, 4))
            for c in contribs:
                total += ctx.rd(c)
            ctx.wr(energy)[0] = float(np.sum(total[:, 3]))
            # The serial phase also perturbs positions (velocity rescale),
            # so every parallel phase reads a freshly updated object — the
            # §5.3 broadcast pattern.
            pos = ctx.wr(positions)
            pos += (dt * 0.1) * total[:, 0:3]
            np.mod(pos, 1.0, out=pos)

        for it in range(cfg.iterations):
            for t in range(P):
                jade.task(
                    f"forces.{it}.{t}", body=interactions_body(t, False),
                    spec=AccessSpec().wr(contribs[t]).rd(positions).rd(params),
                    cost=task_cost, phase=f"forces.{it}",
                )
            jade.serial(
                f"update-positions.{it}", body=force_update_body,
                rd=contribs + [params], rw=[positions], cost=serial_cost,
                phase=f"serial.forces.{it}",
            )
            for t in range(P):
                jade.task(
                    f"potentials.{it}.{t}", body=interactions_body(t, True),
                    spec=AccessSpec().wr(contribs[t]).rd(positions).rd(params),
                    cost=task_cost, phase=f"potentials.{it}",
                )
            jade.serial(
                f"update-energy.{it}", body=energy_update_body,
                rd=contribs + [params], wr=[energy], rw=[positions],
                cost=serial_cost, phase=f"serial.potentials.{it}",
            )
        return jade.finish("water")


def _molecule_slices(n: int, parts: int):
    """Split ``range(n)`` into ``parts`` contiguous near-equal slices."""
    bounds = np.linspace(0, n, parts + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]
