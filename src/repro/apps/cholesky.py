"""Panel Cholesky: sparse SPD factorization kernel (§4 of the paper).

"The Panel Cholesky computation decomposes the matrix into a set of
panels.  Each panel contains several adjacent columns.  The algorithm
generates two kinds of tasks: internal update tasks, which update one
panel, and external update tasks, which read a panel and update another
panel.  The computation generates one internal update task for each panel
and one external update task for each pair of panels with overlapping
nonzero patterns.  The locality object for each task is the updated
panel."

The program opens with a serial section that initializes every panel —
this is why, on the message-passing machine, "the computation starts out
with the current version of all panels owned by the main processor, which
just initialized them" and the Task Placement runs top out at ~92% task
locality (§5.2.2).  Timing-wise the initialization and the symbolic
factorization are free (the paper's numbers "only measure the actual
numerical factorization").

Two modes, selected by the config:

* ``real_numeric=True`` (tiny/test configs): panels carry real dense
  column-slices of a synthetic SPD matrix; internal tasks factor their
  diagonal block, external tasks apply rank-w updates, and the test-suite
  validates ``L·Lᵀ = A`` against ``numpy``/``scipy``.
* ``real_numeric=False`` (paper-scale config, n = 3948): bodies are empty
  and the program carries the task DAG and the calibrated cost model only
  — running 3948-column dense-block numerics in pure Python would add
  minutes per bench run without changing any measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.linalg

from repro.apps import sparse
from repro.apps.base import Application, MachineKind
from repro.core.access import AccessSpec
from repro.core.program import JadeBuilder, JadeProgram
from repro.runtime.options import LocalityLevel


@dataclass
class CholeskyConfig:
    """Geometry and calibration for one Panel Cholesky instance."""

    #: Matrix order (the paper's BCSSTK15 is 3948).
    n: int = 96
    #: Columns per panel.
    panel_width: int = 12
    #: Pattern parameters for the synthetic SPD matrix.
    band: int = 24
    extras_per_col: float = 1.0
    #: Whether task bodies perform the real factorization numerics.
    real_numeric: bool = True
    #: Target stripped execution time per machine (Tables 1 / 6).
    stripped_seconds: Dict[MachineKind, float] = field(
        default_factory=lambda: {MachineKind.DASH: 0.05, MachineKind.IPSC860: 0.05}
    )
    seed: int = 23

    @classmethod
    def tiny(cls) -> "CholeskyConfig":
        return cls()

    @classmethod
    def paper(cls) -> "CholeskyConfig":
        """BCSSTK15-profile: n=3948, ≈60k stored nonzeros, 16-col panels."""
        return cls(
            n=3948,
            panel_width=16,
            band=48,
            extras_per_col=2.0,
            real_numeric=False,
            stripped_seconds={
                MachineKind.DASH: 28.91,     # Table 1, "Stripped"
                MachineKind.IPSC860: 28.53,  # Table 6, "Stripped"
            },
        )


class PanelCholesky(Application):
    """The Panel Cholesky kernel."""

    name = "cholesky"
    supports_task_placement = True

    def __init__(self, config: CholeskyConfig = None) -> None:
        self.config = config or CholeskyConfig.tiny()
        cfg = self.config
        self.pattern = sparse.synthetic_spd_pattern(
            cfg.n, cfg.band, cfg.extras_per_col, cfg.seed
        )
        self.panels = sparse.panelize(cfg.n, cfg.panel_width)
        #: Panel DAG from the (free) symbolic factorization.
        self.struct = sparse.panel_dag(self.pattern, self.panels)
        self.flops = sparse.panel_flops(self.panels, self.struct)
        self.matrix: Optional[np.ndarray] = (
            sparse.build_spd_matrix(self.pattern, cfg.seed + 1)
            if cfg.real_numeric else None
        )

    def serial_overhead_factor(self, machine: MachineKind) -> float:
        # Table 1: 26.67 / 28.91; Table 6: 27.60 / 28.53 (the stripped
        # version is slower than the original serial code on DASH).
        return 0.923 if machine is MachineKind.DASH else 0.967

    def task_count(self) -> int:
        """Internal + external tasks the factorization generates."""
        return len(self.panels) + sum(len(t) for t in self.struct)

    # ------------------------------------------------------------------ #
    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> JadeProgram:
        cfg = self.config
        P = num_processors
        B = len(self.panels)
        jade = JadeBuilder()

        def panel_home(k: int) -> int:
            # Panels map round-robin omitting the main processor (§5.2).
            return 0 if P == 1 else 1 + k % (P - 1)

        scale = (self.stripped_target(machine)) / self.flops.total()

        nnz_estimates = sparse.panel_nnz_estimates(self.panels, self.struct)
        panel_objs = []
        for k, (lo, hi) in enumerate(self.panels):
            initial = (self.matrix[lo:, lo:hi].copy()
                       if self.matrix is not None else np.zeros(1))
            panel_objs.append(jade.object(
                f"panel{k}", initial=initial,
                sim_nbytes=int(nnz_estimates[k] * 8), home=panel_home(k),
            ))

        def init_body(ctx) -> None:
            # Touch every panel: the main thread "just initialized them".
            for obj in panel_objs:
                payload = ctx.wr(obj)
                if isinstance(payload, np.ndarray):
                    payload *= 1.0

        jade.serial("init", body=init_body, rw=panel_objs, cost=0.0)

        for k in range(B):
            placement = (panel_home(k)
                         if level is LocalityLevel.TASK_PLACEMENT else None)
            jade.task(
                f"internal.{k}",
                body=self._internal_body(k) if cfg.real_numeric else None,
                spec=AccessSpec().rw(panel_objs[k]),
                cost=self.flops.internal[k] * scale,
                placement=placement, phase="factor",
                metadata={"kind": "internal", "panel": k},
            )
            for j in self.struct[k]:
                placement_j = (panel_home(j)
                               if level is LocalityLevel.TASK_PLACEMENT else None)
                jade.task(
                    f"external.{k}.{j}",
                    body=self._external_body(k, j) if cfg.real_numeric else None,
                    spec=AccessSpec().rw(panel_objs[j]).rd(panel_objs[k]),
                    cost=self.flops.external[(k, j)] * scale,
                    placement=placement_j, phase="factor",
                    metadata={"kind": "external", "src": k, "dst": j},
                )

        self._panel_objs = panel_objs
        return jade.finish("cholesky")

    def stripped_target(self, machine: MachineKind) -> float:
        return self.config.stripped_seconds[machine]

    # ------------------------------------------------------------------ #
    # numeric bodies (right-looking panel factorization)
    # ------------------------------------------------------------------ #
    def _internal_body(self, k: int):
        lo, hi = self.panels[k]
        w = hi - lo

        def body(ctx) -> None:
            panel = ctx.wr(ctx.task.spec.objects()[0])
            diag = np.linalg.cholesky(panel[:w, :w])
            panel[:w, :w] = np.tril(diag)
            if panel.shape[0] > w:
                # Solve L_kk · Xᵀ = Aᵀ for the subdiagonal rows.
                panel[w:, :] = scipy.linalg.solve_triangular(
                    diag, panel[w:, :].T, lower=True
                ).T

        return body

    def _external_body(self, k: int, j: int):
        lo_k, hi_k = self.panels[k]
        lo_j, hi_j = self.panels[j]
        wj = hi_j - lo_j

        def body(ctx) -> None:
            target = ctx.wr(ctx.task.spec.objects()[0])
            source = ctx.rd(ctx.task.spec.objects()[1])
            rows = source[lo_j - lo_k:, :]          # L rows lo_j..n, panel k
            diag_rows = source[lo_j - lo_k: lo_j - lo_k + wj, :]
            target[:, :] -= rows @ diag_rows.T

        return body

    # ------------------------------------------------------------------ #
    # validation helpers
    # ------------------------------------------------------------------ #
    def assemble_factor(self, store) -> np.ndarray:
        """Rebuild the dense L from the panel payloads in ``store``."""
        if self.matrix is None:
            raise ValueError("structure-only configuration has no numerics")
        n = self.config.n
        L = np.zeros((n, n))
        for k, (lo, hi) in enumerate(self.panels):
            payload = store.get(self._panel_objs[k].object_id)
            L[lo:, lo:hi] = payload
        return np.tril(L)

    def verify_factorization(self, store, atol: float = 1e-8) -> float:
        """Assert L·Lᵀ reconstructs A; returns the max abs error."""
        L = self.assemble_factor(store)
        err = float(np.max(np.abs(L @ L.T - self.matrix)))
        if err > atol:
            raise AssertionError(f"factorization error {err} exceeds {atol}")
        return err
