"""Sparse symmetric-positive-definite substrate for Panel Cholesky.

The paper factors BCSSTK15 from the Harwell-Boeing set — a 3948×3948
structural-engineering stiffness matrix (≈60k stored nonzeros) that is not
redistributable here.  This module synthesizes a pattern with the same
character (banded dominant structure plus scattered off-band couplings,
diagonally dominant values) and provides the pieces a panel factorization
needs:

* :func:`synthetic_spd_pattern` — the lower-triangular nonzero pattern;
* :func:`build_spd_matrix` — a dense SPD matrix realizing a (small)
  pattern, for numeric validation;
* :func:`panelize` — grouping of adjacent columns into panels;
* :func:`panel_dag` — panel-granularity symbolic factorization: for each
  panel, the later panels its columns update, *including fill-in* (the
  elimination adds a clique among a pivot panel's neighbours).  This is
  exactly the "pair of panels with overlapping nonzero patterns" relation
  that generates the paper's external update tasks (§4);
* :func:`panel_flops` — a flop model over the DAG, used to apportion the
  calibrated stripped time across tasks.

The experiment's behaviour depends on the *shape* of the panel DAG (depth,
fan-out, how many consumers each panel has), which a same-profile banded
SPD pattern reproduces; the entries' numeric values do not matter to any
measured quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.util.rng import substream


def synthetic_spd_pattern(
    n: int,
    band: int = 40,
    extras_per_col: float = 2.0,
    seed: int = 15,
) -> List[np.ndarray]:
    """Lower-triangular pattern: ``pattern[j]`` = sorted rows ≥ j with a
    stored nonzero in column ``j`` (diagonal always present).

    BCSSTK15-like profile: a dense-ish band (finite-element node
    coupling) plus a few longer-range couplings per column.
    """
    rng = substream(seed, "sparse.pattern")
    pattern: List[np.ndarray] = []
    for j in range(n):
        rows: Set[int] = {j}
        hi = min(n, j + band)
        # Dense near-band coupling with distance fall-off.
        for i in range(j + 1, hi):
            if rng.random() < 0.8 * (1.0 - (i - j) / band):
                rows.add(i)
        # Scattered off-band couplings.
        far_hi = min(n, j + band * 6)
        if far_hi > hi:
            k = rng.poisson(extras_per_col)
            for _ in range(int(k)):
                rows.add(int(rng.integers(hi, far_hi)))
        pattern.append(np.array(sorted(rows), dtype=np.int64))
    return pattern


def build_spd_matrix(pattern: List[np.ndarray], seed: int = 16) -> np.ndarray:
    """A dense SPD matrix realizing ``pattern`` (for small n).

    Off-diagonal entries are small negatives (stiffness-matrix flavour);
    diagonals exceed each row's absolute sum, guaranteeing positive
    definiteness.
    """
    n = len(pattern)
    rng = substream(seed, "sparse.values")
    A = np.zeros((n, n))
    for j, rows in enumerate(pattern):
        for i in rows:
            if i != j:
                v = -(0.1 + 0.9 * rng.random())
                A[i, j] = v
                A[j, i] = v
    A[np.diag_indices(n)] = np.abs(A).sum(axis=1) + 1.0
    return A


def panelize(n: int, width: int) -> List[Tuple[int, int]]:
    """Split columns 0..n into panels of ``width`` adjacent columns."""
    if width < 1:
        raise ValueError("panel width must be >= 1")
    return [(lo, min(lo + width, n)) for lo in range(0, n, width)]


def panel_dag(
    pattern: List[np.ndarray],
    panels: List[Tuple[int, int]],
) -> List[List[int]]:
    """Panel-granularity symbolic factorization.

    Returns ``struct`` where ``struct[k]`` lists the panels ``j > k`` whose
    rows panel ``k``'s factored columns update — the targets of panel
    ``k``'s external update tasks.  Includes fill: eliminating panel ``k``
    couples all its below-diagonal panel neighbours pairwise (the classic
    clique update, run here on the panel quotient graph, so it is exact at
    panel granularity and cheap even for the 3948-column configuration).
    """
    n = len(pattern)
    B = len(panels)
    panel_of = np.empty(n, dtype=np.int64)
    for idx, (lo, hi) in enumerate(panels):
        panel_of[lo:hi] = idx

    adj: List[Set[int]] = [set() for _ in range(B)]
    for j, rows in enumerate(pattern):
        pj = int(panel_of[j])
        for pi in np.unique(panel_of[rows]):
            if pi > pj:
                adj[pj].add(int(pi))

    struct: List[List[int]] = []
    for k in range(B):
        nbrs = sorted(adj[k])
        struct.append(nbrs)
        # Fill: the eliminated panel's Schur complement couples all its
        # remaining neighbours.
        for a_idx, a in enumerate(nbrs):
            rest = nbrs[a_idx + 1:]
            adj[a].update(rest)
    return struct


def dense_panel_dag(num_panels: int) -> List[List[int]]:
    """The DAG of a fully dense matrix: every later panel is a target.

    Used by tests as the worst-case structure (and by the numeric path,
    where skipping structurally-zero updates is an optimization, not a
    correctness requirement).
    """
    return [list(range(k + 1, num_panels)) for k in range(num_panels)]


@dataclass
class PanelFlops:
    """Flop counts per task kind, used to apportion calibrated time."""

    internal: List[float]
    external: Dict[Tuple[int, int], float]

    def total(self) -> float:
        return float(sum(self.internal) + sum(self.external.values()))


def panel_flops(
    panels: List[Tuple[int, int]],
    struct: List[List[int]],
) -> PanelFlops:
    """Flop model over the panel DAG.

    * internal(k): factor the w×w diagonal block (w³/3) and triangular-
      solve the r_k rows below it (r_k · w²);
    * external(k, j): rank-w update of panel j's rows from panel k
      (2 · w_k · w_j · r_kj, where r_kj is the span of panel k's rows at
      or below panel j).
    """
    widths = [hi - lo for lo, hi in panels]
    internal: List[float] = []
    external: Dict[Tuple[int, int], float] = {}
    for k, targets in enumerate(struct):
        w = widths[k]
        r_k = sum(widths[j] for j in targets)
        internal.append(w ** 3 / 3.0 + r_k * w ** 2)
        for idx, j in enumerate(targets):
            r_kj = sum(widths[m] for m in targets[idx:])
            external[(k, j)] = 2.0 * w * widths[j] * r_kj
    return PanelFlops(internal=internal, external=external)


def pattern_nnz(pattern: List[np.ndarray]) -> int:
    """Stored (lower-triangular) nonzeros of a pattern."""
    return int(sum(len(rows) for rows in pattern))


def panel_nnz_estimates(
    panels: List[Tuple[int, int]],
    struct: List[List[int]],
    block_density: float = 0.55,
) -> List[float]:
    """Estimated L nonzeros per panel, for object-size modelling.

    A panel's factor data is its dense diagonal triangle plus its
    below-diagonal panel blocks; the panel DAG says *which* blocks are
    structurally nonzero, and ``block_density`` approximates how full each
    such block is (sparse factors' blocks are partially dense; 0.55 puts
    the synthetic BCSSTK15-profile factor near the real one's ≈650k
    nonzeros).  The communicator prices a
    panel transfer at ``nnz × 8`` bytes: the real implementation shipped
    the packed nonzero values (the index metadata is shared, from the
    symbolic factorization).
    """
    widths = [hi - lo for lo, hi in panels]
    out = []
    for k, targets in enumerate(struct):
        w = widths[k]
        below = sum(widths[j] for j in targets)
        out.append(w * (w + 1) / 2.0 + block_density * w * below)
    return out
