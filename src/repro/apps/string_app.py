"""String: seismic tomography between two oil wells (§4 of the paper).

"The parallel phases trace rays through a discretized velocity model,
computing the difference between the simulated and experimentally observed
travel times of the rays.  After tracing each ray the computation
backprojects the difference linearly along the path of the ray.  Each task
traces a group of rays, reading an array storing the velocity model and
updating an explicitly replicated difference array ... Each serial phase
uses the comprehensive difference array generated in the previous parallel
phase to generate an updated velocity model.  The locality object for each
task is the copy of the replicated difference array that it will update."

Substitution: the paper's data set is a proprietary West Texas oil-field
survey (185 ft × 450 ft at 1-ft resolution).  We synthesize an equivalent:
a hidden "true" slowness model produces the observed travel times, and the
program runs the same straight-ray trace + linear backprojection loop
(SIRT) against a uniform starting model.  The parallel/serial structure,
object sizes (the 383,528-byte velocity model of §5.3) and compute/
communication ratios are what the paper's results depend on, and all are
preserved; the seismic data values are not, and are not needed.

Real numerics: each ray is sampled along its straight path with a fixed
per-cell step; travel time is the line integral of slowness.  Iterating
provably reduces the residual against the synthetic observations (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import Application, MachineKind
from repro.core.access import AccessSpec
from repro.core.program import JadeBuilder, JadeProgram
from repro.runtime.options import LocalityLevel
from repro.util.rng import substream

#: §5.3: the updated velocity-model object is 383,528 bytes.
_PAPER_MODEL_NBYTES = 383_528


@dataclass
class StringConfig:
    """Geometry and calibration for one String instance."""

    #: Real grid the bodies compute on (depth cells, width cells).
    real_grid: Tuple[int, int] = (12, 18)
    #: Real rays traced by the bodies (sources on one well, receivers on
    #: the other, all pairs).
    real_sources: int = 6
    real_receivers: int = 6
    #: Iterations, one parallel phase each (the paper ran six).
    iterations: int = 3
    #: Cost-model grid (the paper's 185 × 450 at 1-ft resolution).
    cost_grid: Tuple[int, int] = (12, 18)
    #: Cost-model ray count per iteration.
    cost_rays: int = 36
    #: Target stripped execution time per machine (Tables 1 / 6).
    stripped_seconds: Dict[MachineKind, float] = field(
        default_factory=lambda: {MachineKind.DASH: 0.08, MachineKind.IPSC860: 0.08}
    )
    #: Fraction of the stripped time in the serial update phases; the
    #: paper's mean parallel phase length (106 s of ~113 s per iteration
    #: at 32 processors → backprojection dominates) bounds it small.
    serial_fraction: float = 0.004
    #: Velocity-model object size for the cost model; ``None`` derives it
    #: from ``cost_grid`` (4-byte floats + header).
    model_nbytes: int = None
    seed: int = 21

    @classmethod
    def tiny(cls) -> "StringConfig":
        return cls()

    @classmethod
    def paper(cls) -> "StringConfig":
        """The paper's data set: 185×450 ft at 1 ft, six iterations."""
        return cls(
            real_grid=(12, 18),
            real_sources=6,
            real_receivers=6,
            iterations=6,
            cost_grid=(185, 450),
            cost_rays=32_000,
            stripped_seconds={
                MachineKind.DASH: 19_314.80,   # Table 1, "Stripped"
                MachineKind.IPSC860: 19_629.42,  # Table 6, "Stripped"
            },
            model_nbytes=_PAPER_MODEL_NBYTES,
        )

    # -- derived ---------------------------------------------------------
    def velocity_nbytes(self) -> int:
        if self.model_nbytes is not None:
            return self.model_nbytes
        return self.cost_grid[0] * self.cost_grid[1] * 4 + 128

    def diff_nbytes(self) -> int:
        # The difference array stores a correction and a hit count per cell.
        return self.cost_grid[0] * self.cost_grid[1] * 8 + 128

    def phase_work_seconds(self, machine: MachineKind) -> float:
        return self.stripped_seconds[machine] * (1.0 - self.serial_fraction) \
            / self.iterations

    def serial_section_seconds(self, machine: MachineKind) -> float:
        return self.stripped_seconds[machine] * self.serial_fraction \
            / self.iterations


class String(Application):
    """The String application."""

    name = "string"
    supports_task_placement = False

    def __init__(self, config: StringConfig = None) -> None:
        self.config = config or StringConfig.tiny()

    def serial_overhead_factor(self, machine: MachineKind) -> float:
        # Table 1: 20594.50 / 19314.80; Table 6: 20270.45 / 19629.42.
        return 1.066 if machine is MachineKind.DASH else 1.033

    # ------------------------------------------------------------------ #
    def build(
        self,
        num_processors: int,
        machine: MachineKind = MachineKind.IPSC860,
        level: LocalityLevel = LocalityLevel.LOCALITY,
    ) -> JadeProgram:
        self.check_placement_supported(level)
        cfg = self.config
        P = num_processors
        nz, nx = cfg.real_grid
        jade = JadeBuilder()

        rays = _ray_endpoints(nz, nx, cfg.real_sources, cfg.real_receivers)
        observed = _observed_times(nz, nx, rays, cfg.seed)

        velocity = jade.object(
            "velocity", initial=np.full((nz, nx), 1.0),
            sim_nbytes=cfg.velocity_nbytes(), home=0,
        )
        observations = jade.object(
            "observations", initial=observed, sim_nbytes=8 * len(rays) + 128, home=0,
        )
        residual = jade.object("residual", initial=np.zeros(1), home=0)
        diffs = [
            jade.object(
                f"diff{t}", initial=np.zeros((2, nz, nx)),
                sim_nbytes=cfg.diff_nbytes(), home=t % P,
            )
            for t in range(P)
        ]

        groups = _ray_groups(len(rays), P)
        task_cost = cfg.phase_work_seconds(machine) / P
        serial_cost = cfg.serial_section_seconds(machine)

        def trace_body(t: int):
            lo, hi = groups[t]

            def body(ctx) -> None:
                slowness = ctx.rd(velocity)
                obs = ctx.rd(observations)
                out = ctx.wr(diffs[t])
                out[:] = 0.0
                for r in range(lo, hi):
                    cells, lengths = _trace(rays[r], nz, nx)
                    simulated = float(np.sum(slowness[cells[:, 0], cells[:, 1]] * lengths))
                    delta = obs[r] - simulated
                    total_len = float(np.sum(lengths))
                    if total_len <= 0.0:
                        continue
                    # Linear backprojection of the travel-time difference
                    # along the ray path (§4).
                    out[0, cells[:, 0], cells[:, 1]] += delta * lengths / total_len
                    out[1, cells[:, 0], cells[:, 1]] += 1.0

            return body

        def update_body(ctx) -> None:
            total = np.zeros((2, nz, nx))
            for d in diffs:
                total += ctx.rd(d)
            counts = np.maximum(total[1], 1.0)
            model = ctx.wr(velocity)
            model += 0.5 * total[0] / counts
            np.clip(model, 0.2, 5.0, out=model)
            ctx.wr(residual)[0] = float(np.sum(np.abs(total[0])))

        for it in range(cfg.iterations):
            for t in range(P):
                jade.task(
                    f"trace.{it}.{t}", body=trace_body(t),
                    spec=(AccessSpec().wr(diffs[t]).rd(velocity)
                          .rd(observations)),
                    cost=task_cost, phase=f"trace.{it}",
                )
            jade.serial(
                f"update-model.{it}", body=update_body,
                rd=diffs, rw=[velocity], wr=[residual], cost=serial_cost,
                phase=f"serial.{it}",
            )
        return jade.finish("string")


# ---------------------------------------------------------------------- #
# ray geometry (pure helpers, reusable and unit-tested)
# ---------------------------------------------------------------------- #
def _ray_endpoints(nz: int, nx: int, sources: int, receivers: int
                   ) -> List[Tuple[float, float, float, float]]:
    """All source→receiver rays between the two wells (x=0 and x=nx)."""
    zs = np.linspace(0.5, nz - 0.5, sources)
    zr = np.linspace(0.5, nz - 0.5, receivers)
    return [(float(a), 0.0, float(b), float(nx)) for a in zs for b in zr]


def _trace(ray, nz: int, nx: int, step: float = 0.25):
    """Sample a straight ray; return (cells, per-cell path lengths).

    Fixed-step sampling: each sample contributes ``step`` of path length
    to the cell it falls in.  Duplicate consecutive cells accumulate, so
    the result is a compact (cells, lengths) pair.
    """
    z0, x0, z1, x1 = ray
    length = float(np.hypot(z1 - z0, x1 - x0))
    n = max(2, int(length / step))
    ts = (np.arange(n) + 0.5) / n
    zc = np.clip((z0 + (z1 - z0) * ts).astype(int), 0, nz - 1)
    xc = np.clip((x0 + (x1 - x0) * ts).astype(int), 0, nx - 1)
    seg = length / n
    flat = zc * nx + xc
    uniq, counts = np.unique(flat, return_counts=True)
    cells = np.stack([uniq // nx, uniq % nx], axis=1)
    return cells, counts * seg


def _observed_times(nz: int, nx: int, rays, seed: int) -> np.ndarray:
    """Travel times through a hidden 'true' model (the synthetic survey)."""
    rng = substream(seed, "string.true-model")
    true_model = 1.0 + 0.4 * rng.random((nz, nx))
    # A smooth low-slowness channel, so the inversion has structure to find.
    zc = nz / 2.0
    for z in range(nz):
        true_model[z, :] -= 0.3 * np.exp(-((z - zc) ** 2) / (nz / 4.0) ** 2)
    out = np.empty(len(rays))
    for r, ray in enumerate(rays):
        cells, lengths = _trace(ray, nz, nx)
        out[r] = float(np.sum(true_model[cells[:, 0], cells[:, 1]] * lengths))
    return out


def _ray_groups(n_rays: int, parts: int):
    bounds = np.linspace(0, n_rays, parts + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]
