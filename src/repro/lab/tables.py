"""Plain-text rendering of tables and figure series.

The paper's figures plot one quantity against processor count per
configuration; the reproduction renders the same quantities as aligned
text series (the data is the target, not the PostScript).  Renderers are
deliberately dependency-free so benchmark output stays readable in CI
logs and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_seconds(value: float) -> str:
    """Format like the paper's tables (two decimals, seconds)."""
    if value >= 1000:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_table(
    title: str,
    columns: Sequence,
    rows: Dict[str, Dict],
    fmt=format_seconds,
    paper: Optional[Dict[str, Dict]] = None,
) -> str:
    """Render ``{row label: {column: value}}`` as an aligned text table.

    With ``paper`` given (same structure), each measured row is followed
    by the paper's row for side-by-side comparison.
    """
    col_headers = [str(c) for c in columns]
    label_width = max(
        [24] + [len(label) + 11 for label in rows]
        + ([len(label) + 11 for label in paper] if paper else [])
    )
    widths = [max(9, len(h) + 1) for h in col_headers]

    def line(label: str, values: Dict, formatter) -> str:
        cells = []
        for c, w in zip(columns, widths):
            if c in values and values[c] is not None:
                cells.append(f"{formatter(values[c]):>{w}}")
            else:
                cells.append(f"{'-':>{w}}")
        return f"{label:<{label_width}}" + "".join(cells)

    out = [title]
    header = f"{'':<{label_width}}" + "".join(
        f"{h:>{w}}" for h, w in zip(col_headers, widths)
    )
    out.append(header)
    out.append("-" * len(header))
    for label, values in rows.items():
        out.append(line(label, values, fmt))
        if paper and label in paper:
            out.append(line(f"  (paper) {label}", paper[label], fmt))
    return "\n".join(out)


def render_series(
    title: str,
    procs: Sequence[int],
    series: Dict[str, Dict[int, float]],
    unit: str = "",
    fmt=None,
) -> str:
    """Render a figure as data series: one line per configuration."""
    fmt = fmt or (lambda v: f"{v:8.2f}")
    out = [f"{title}" + (f"  [{unit}]" if unit else "")]
    header = f"{'procs':<28}" + "".join(f"{p:>9}" for p in procs)
    out.append(header)
    out.append("-" * len(header))
    for label, values in series.items():
        cells = []
        for p in procs:
            cells.append(f"{fmt(values[p]):>9}" if p in values else f"{'-':>9}")
        out.append(f"{label:<28}" + "".join(cells))
    return "\n".join(out)


def rows_to_series(rows, value) -> Dict[str, Dict[int, float]]:
    """Group ExperimentRow objects into ``{level: {procs: value}}``.

    ``value`` is a callable taking a row and returning the plotted number.
    """
    series: Dict[str, Dict[int, float]] = {}
    for row in rows:
        series.setdefault(row.level, {})[row.procs] = value(row)
    return series
