"""Calibrated constants and the paper's published numbers.

Every constant below exists for one of two reasons:

1. it is a **published machine parameter** (Appendices A/B, §5.3) used
   directly — those live in the machine models' defaults and are only
   *assembled* here; or
2. it is a **calibrated runtime constant** whose value is chosen so one of
   the paper's own single-processor or overhead measurements is
   reproduced; each carries a comment naming that measurement.

``PAPER_TABLES`` transcribes the paper's Tables 1–14 so that reports (and
EXPERIMENTS.md) can print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List

from repro.machines.dash import DashParams
from repro.machines.ipsc860 import IpscParams

#: The processor counts of every experiment in §5.
PAPER_PROCS: List[int] = [1, 2, 4, 8, 16, 24, 32]


# ---------------------------------------------------------------------- #
# DASH runtime constants
# ---------------------------------------------------------------------- #
#: Main-processor time to create one task (build the access specification,
#: insert it into the synchronizer queues).  Calibrated against Table 5:
#: Panel Cholesky's 1-processor Jade run takes 34.94 s against a 28.91 s
#: stripped time — ≈6 s of overhead over the ≈3.3k tasks of BCSSTK15's
#: panel DAG, split ≈2:1 between creation and dispatch.
DASH_TASK_CREATE_SECONDS = 1.2e-3
#: Scheduler work to dispatch/complete one task on DASH.
DASH_TASK_DISPATCH_SECONDS = 0.6e-3
#: Idle-processor patience before stealing (see DashParams docstring).
DASH_STEAL_PATIENCE_SECONDS = 0.5e-3


def dash_params() -> DashParams:
    """The calibrated DASH configuration used by all experiments."""
    params = DashParams()
    params.task_create_seconds = DASH_TASK_CREATE_SECONDS
    params.task_dispatch_seconds = DASH_TASK_DISPATCH_SECONDS
    params.steal_patience_seconds = DASH_STEAL_PATIENCE_SECONDS
    return params


# ---------------------------------------------------------------------- #
# iPSC/860 runtime constants
# ---------------------------------------------------------------------- #
#: Main-processor time to create one task.  The iPSC/860 "does not support
#: the fine-grained communication required for efficient task management"
#: (§5.2.2).  Calibration anchors: (a) Table 14's broadcast-off
#: 1-processor Panel Cholesky run (37.25 s against a 28.53 s stripped time
#: — ≈2 ms/task of *local* management over ≈4.4k tasks) and (b) the
#: ≥16-processor plateau of Tables 9/10, where remote assignment and
#: completion messages put ≈10 ms/task of serialized work on the main
#: processor.  The gap between the two is the ``local_mgmt_factor``
#: discount on the message-handling components.
IPSC_TASK_CREATE_SECONDS = 1.5e-3
#: Scheduler work to assign one enabled task (mostly message handling).
IPSC_TASK_ASSIGN_SECONDS = 4.5e-3
#: Receiver-side work to unpack a task message and issue its fetches.
IPSC_TASK_RECEIVE_SECONDS = 0.3e-3
#: Main-processor work to process one completion message.
IPSC_COMPLETION_SECONDS = 4.0e-3
#: Producer-side bookkeeping charged per update of a broadcast-mode
#: object, on top of the (size-proportional) message-buffer copy-out.
#: Calibrated against the degenerate single-processor runs of Tables
#: 13/14, where switching adaptive broadcast on costs Panel Cholesky
#: 54.56 − 37.25 ≈ 17 s over its ≈4.4k panel updates and Ocean
#: 77.44 − 63.14 ≈ 14 s over ≈120 full-grid updates (§5.3: "the algorithm
#: therefore generates a broadcast operation every time an object is
#: updated, which degrades the performance").
IPSC_BROADCAST_TRIGGER_SECONDS = 1.0e-3


def ipsc_params() -> IpscParams:
    """The calibrated iPSC/860 configuration used by all experiments."""
    params = IpscParams()
    params.task_create_seconds = IPSC_TASK_CREATE_SECONDS
    params.task_assign_seconds = IPSC_TASK_ASSIGN_SECONDS
    params.task_receive_seconds = IPSC_TASK_RECEIVE_SECONDS
    params.completion_handling_seconds = IPSC_COMPLETION_SECONDS
    return params


# ---------------------------------------------------------------------- #
# The paper's published results (§5), transcribed for comparison.
# Keys: table number → {row label → {processor count → seconds}} for the
# execution-time tables; Tables 1/6 use {application → {version → s}}.
# ---------------------------------------------------------------------- #
PAPER_TABLES: Dict = {
    1: {  # Serial and stripped times on DASH
        "water": {"serial": 3628.29, "stripped": 3285.90},
        "string": {"serial": 20594.50, "stripped": 19314.80},
        "ocean": {"serial": 102.99, "stripped": 100.03},
        "cholesky": {"serial": 26.67, "stripped": 28.91},
    },
    2: {  # Water on DASH
        "Locality": {1: 3270.71, 2: 1648.96, 4: 833.19, 8: 423.14,
                     16: 220.63, 24: 153.03, 32: 119.48},
        "No Locality": {1: 3290.47, 2: 1648.60, 4: 832.91, 8: 434.36,
                        16: 229.84, 24: 160.82, 32: 124.74},
    },
    3: {  # String on DASH
        "Locality": {1: 19621.15, 2: 9774.07, 4: 5003.69, 8: 2534.62,
                     16: 1320.00, 24: 903.95, 32: 705.84},
        "No Locality": {1: 19396.12, 2: 9756.71, 4: 5017.82, 8: 2559.44,
                        16: 1350.06, 24: 948.73, 32: 769.21},
    },
    4: {  # Ocean on DASH
        "Task Placement": {1: 105.21, 2: 105.36, 4: 36.36, 8: 16.14,
                           16: 9.24, 24: 8.39, 32: 10.71},
        "Locality": {1: 105.33, 2: 99.22, 4: 37.79, 8: 25.30,
                     16: 17.58, 24: 14.52, 32: 13.26},
        "No Locality": {1: 104.51, 2: 99.20, 4: 38.97, 8: 31.21,
                        16: 22.31, 24: 18.88, 32: 17.31},
    },
    5: {  # Panel Cholesky on DASH
        "Task Placement": {1: 35.71, 2: 33.64, 4: 15.24, 8: 7.82,
                           16: 5.95, 24: 5.61, 32: 5.76},
        "Locality": {1: 34.94, 2: 17.99, 4: 11.77, 8: 7.53,
                     16: 7.30, 24: 7.43, 32: 7.86},
        "No Locality": {1: 35.09, 2: 18.99, 4: 12.97, 8: 9.29,
                        16: 7.88, 24: 8.00, 32: 8.48},
    },
    6: {  # Serial and stripped times on the iPSC/860
        "water": {"serial": 2482.91, "stripped": 2406.72},
        "string": {"serial": 20270.45, "stripped": 19629.42},
        "ocean": {"serial": 54.19, "stripped": 60.99},
        "cholesky": {"serial": 27.60, "stripped": 28.53},
    },
    7: {  # Water on the iPSC/860
        "Locality": {1: 2435.16, 2: 1219.71, 4: 617.28, 8: 315.69,
                     16: 165.64, 24: 118.09, 32: 91.53},
        "No Locality": {1: 2454.78, 2: 1231.91, 4: 623.34, 8: 318.34,
                        16: 167.77, 24: 119.72, 32: 93.11},
    },
    8: {  # String on the iPSC/860 (the 16-proc No Locality entry is
          # missing in the paper as well)
        "Locality": {1: 17382.07, 2: 9473.24, 4: 4773.02, 8: 2418.75,
                     16: 1249.69, 24: 873.14, 32: 678.55},
        "No Locality": {1: 18873.86, 2: 9529.52, 4: 4765.96, 8: 2424.12,
                        24: 869.27, 32: 680.94},
    },
    9: {  # Ocean on the iPSC/860
        "Task Placement": {1: 77.44, 2: 68.14, 4: 28.75, 8: 18.77,
                           16: 24.16, 24: 37.18, 32: 51.87},
        "Locality": {1: 77.71, 2: 93.74, 4: 95.95, 8: 57.28,
                     16: 39.50, 24: 44.48, 32: 55.96},
        "No Locality": {1: 78.03, 2: 100.29, 4: 159.77, 8: 88.86,
                        16: 56.33, 24: 55.56, 32: 63.58},
    },
    10: {  # Panel Cholesky on the iPSC/860
        "Task Placement": {1: 54.56, 2: 50.18, 4: 31.56, 8: 32.50,
                           16: 34.41, 24: 36.38, 32: 38.17},
        "Locality": {1: 54.54, 2: 34.17, 4: 33.65, 8: 35.97,
                     16: 43.73, 24: 47.62, 32: 50.83},
        "No Locality": {1: 54.43, 2: 107.43, 4: 99.39, 8: 75.84,
                        16: 59.02, 24: 56.41, 32: 59.45},
    },
    11: {  # Water, adaptive broadcast on/off, iPSC/860
        "Adaptive Broadcast": {1: 2435.16, 2: 1219.71, 4: 617.28, 8: 315.69,
                               16: 165.64, 24: 118.09, 32: 91.53},
        "No Adaptive Broadcast": {1: 2459.87, 2: 1233.98, 4: 625.27, 8: 323.84,
                                  16: 180.15, 24: 140.59, 32: 122.74},
    },
    12: {  # String, adaptive broadcast on/off
        "Adaptive Broadcast": {1: 17382.07, 2: 9473.24, 4: 4773.02, 8: 2418.75,
                               16: 1249.69, 24: 873.14, 32: 678.55},
        "No Adaptive Broadcast": {1: 18877.42, 2: 9469.36, 4: 4765.68,
                                  8: 2425.82, 16: 1255.29, 24: 874.18,
                                  32: 689.57},
    },
    13: {  # Ocean, adaptive broadcast on/off
        "Adaptive Broadcast": {1: 77.44, 2: 68.14, 4: 28.75, 8: 18.77,
                               16: 24.16, 24: 37.18, 32: 51.87},
        "No Adaptive Broadcast": {1: 63.14, 2: 65.54, 4: 28.73, 8: 19.11,
                                  16: 25.68, 24: 39.99, 32: 55.71},
    },
    14: {  # Panel Cholesky, adaptive broadcast on/off
        "Adaptive Broadcast": {1: 54.56, 2: 50.18, 4: 31.56, 8: 32.50,
                               16: 34.41, 24: 36.38, 32: 38.17},
        "No Adaptive Broadcast": {1: 37.25, 2: 49.76, 4: 31.29, 8: 32.01,
                                  16: 34.92, 24: 35.87, 32: 38.16},
    },
}

#: Figure-level qualitative expectations checked by the benchmark suite
#: (the paper's figures are read as shapes, not absolute values).
FIGURE_EXPECTATIONS = {
    "fig2-3": "Water/String task locality = 100% at Locality, decaying at No Locality",
    "fig4-5": "Ocean/Cholesky locality: TaskPlacement ≥ Locality > No Locality",
    "fig6-7": "Water/String DASH task time barely level-sensitive",
    "fig8-9": "Ocean/Cholesky DASH task time strongly level-sensitive",
    "fig10-11": "DASH task-management % grows with processors",
    "fig16-19": "iPSC comm/comp ratio: Water/String tiny, Ocean/Cholesky large",
    "fig20-21": "iPSC task-management % dominates Ocean ≥16 procs",
}
