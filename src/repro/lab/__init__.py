"""The experiment harness: regenerates every table and figure of §5.

* :mod:`repro.lab.calibration` — every calibrated constant with its
  provenance, plus the paper's published numbers for comparison;
* :mod:`repro.lab.experiments` — configured runs and sweeps (locality
  levels, broadcast on/off, work-free, latency hiding, fetch accounting);
* :mod:`repro.lab.tables` — plain-text renderers for the paper's tables
  and figures (figures are rendered as data series, one row per processor
  count, since the quantities — not the plotting — are the reproduction
  target).
"""

from repro.lab.calibration import (
    PAPER_PROCS,
    dash_params,
    ipsc_params,
    PAPER_TABLES,
)
from repro.lab.experiments import (
    ExperimentRow,
    make_application,
    run_app,
    levels_for,
    locality_sweep,
    broadcast_sweep,
    mgmt_percentage_sweep,
    latency_hiding_sweep,
    fetch_latency_rows,
    serial_and_stripped,
)
from repro.lab.tables import (
    render_table,
    render_series,
    rows_to_series,
    format_seconds,
)

__all__ = [
    "PAPER_PROCS",
    "dash_params",
    "ipsc_params",
    "PAPER_TABLES",
    "ExperimentRow",
    "make_application",
    "run_app",
    "levels_for",
    "locality_sweep",
    "broadcast_sweep",
    "mgmt_percentage_sweep",
    "latency_hiding_sweep",
    "fetch_latency_rows",
    "serial_and_stripped",
    "render_table",
    "render_series",
    "rows_to_series",
    "format_seconds",
]
