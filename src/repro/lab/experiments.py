"""Configured experiment runs and sweeps.

These functions are the single path through which the benchmarks (and the
EXPERIMENTS.md generator) execute the paper's experiments, so that every
table/figure uses identical machine calibration and option conventions:

* except where a sweep varies them, runs use the paper's §5.2 baseline —
  replication, concurrent fetches and adaptive broadcast on, latency
  hiding off;
* Water and String run at the Locality / No Locality levels only; Ocean
  and Panel Cholesky add Task Placement (§5.2);
* the work-free methodology of §5.2.1 measures task management at the
  Task Placement level, as the paper does (Figures 10/11/20/21).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps import ALL_APPLICATIONS, MachineKind
from repro.apps.base import Application
from repro.apps.cholesky import CholeskyConfig, PanelCholesky
from repro.apps.ocean import Ocean, OceanConfig
from repro.apps.string_app import String, StringConfig
from repro.apps.water import Water, WaterConfig
from repro.errors import ExperimentError
from repro.lab.calibration import dash_params, ipsc_params
from repro.machines.dash import DashMachine
from repro.machines.ipsc860 import Ipsc860Machine
from repro.runtime import (
    LocalityLevel,
    RunMetrics,
    RuntimeOptions,
    run_message_passing,
    run_shared_memory,
)
from repro.runtime.workfree import task_management_percentage

_CONFIG_FACTORIES = {
    ("water", "tiny"): WaterConfig.tiny,
    ("water", "paper"): WaterConfig.paper,
    ("string", "tiny"): StringConfig.tiny,
    ("string", "paper"): StringConfig.paper,
    ("ocean", "tiny"): OceanConfig.tiny,
    ("ocean", "paper"): OceanConfig.paper,
    ("cholesky", "tiny"): CholeskyConfig.tiny,
    ("cholesky", "paper"): CholeskyConfig.paper,
}

#: Memoized applications: construction can be costly (Panel Cholesky's
#: paper-scale symbolic factorization) and Application objects are
#: stateless across ``build`` calls.
_APP_CACHE: Dict = {}


def make_application(name: str, scale: str = "paper") -> Application:
    """Instantiate (and cache) one of the four applications."""
    key = (name, scale)
    if key not in _APP_CACHE:
        try:
            config = _CONFIG_FACTORIES[key]()
        except KeyError:
            raise ExperimentError(f"unknown application/scale {key!r}") from None
        _APP_CACHE[key] = ALL_APPLICATIONS[name](config)
    return _APP_CACHE[key]


@dataclass
class ExperimentRow:
    """One measured configuration, for table rendering."""

    app: str
    machine: str
    level: str
    procs: int
    metrics: RunMetrics
    extra: Dict[str, float] = field(default_factory=dict)


# ---------------------------------------------------------------------- #
# single runs
# ---------------------------------------------------------------------- #
def run_app(
    name: str,
    procs: int,
    machine: MachineKind = MachineKind.IPSC860,
    level: LocalityLevel = LocalityLevel.LOCALITY,
    options: Optional[RuntimeOptions] = None,
    scale: str = "paper",
    tracer=None,
    profiler=None,
    faults=None,
    flight=None,
) -> RunMetrics:
    """Build and execute one application configuration.

    ``tracer`` optionally attaches a :class:`~repro.sim.trace.Tracer` to
    the machine, recording the execution for export or determinism checks;
    ``profiler`` attaches a :class:`~repro.obs.ProfileCollector` (see
    :func:`profile_app` for the assembled result); ``faults`` attaches a
    :class:`repro.faults.FaultSpec` — a fresh :class:`repro.faults.
    FaultPlan` is built per run (plan RNG state is the run's fault
    history), iPSC/860 only; ``flight`` installs a
    :class:`~repro.obs.flight.FlightRecorder` on the machine's simulator
    (read-only sampling, never perturbs the run).
    """
    app = make_application(name, scale)
    program = app.build(procs, machine=machine, level=level)
    if options is None:
        options = RuntimeOptions(locality=level)
    elif options.locality is not level:
        options = options.but(locality=level)
    if machine is MachineKind.DASH:
        if faults is not None:
            raise ExperimentError(
                "fault injection models an unreliable message fabric; the "
                "DASH machine has no message layer to perturb — use the "
                "ipsc860 machine")
        machine_obj = DashMachine(procs, dash_params(), tracer=tracer,
                                  profiler=profiler)
        if flight is not None:
            flight.install(machine_obj.sim)
        return run_shared_memory(program, procs, options, machine=machine_obj)
    plan = None
    if faults is not None:
        from repro.faults import FaultPlan

        plan = FaultPlan(faults)
    hw = Ipsc860Machine(procs, ipsc_params(), tracer=tracer, profiler=profiler,
                        faults=plan)
    if flight is not None:
        flight.install(hw.sim)
    runtime_metrics = _run_mp(program, hw, options)
    return runtime_metrics


def profile_app(
    name: str,
    procs: int,
    machine: MachineKind = MachineKind.IPSC860,
    level: LocalityLevel = LocalityLevel.LOCALITY,
    options: Optional[RuntimeOptions] = None,
    scale: str = "paper",
    tracer=None,
    interval: Optional[float] = None,
    samples: int = 50,
    faults=None,
    flight=None,
):
    """Run one configuration with the profiler attached.

    Returns ``(metrics, profile)`` where ``profile`` is the assembled
    :class:`repro.obs.Profile` (communication matrix, hot objects,
    utilization breakdown, resampled time series, critical path).  When no
    ``tracer`` is supplied, an internal span tracer is attached anyway so
    the critical-path analyzer always has a timeline to walk; tracing only
    records — it never schedules events — so the measured run is identical
    either way.
    """
    from repro.obs import ProfileCollector, build_profile
    from repro.sim.trace import Tracer

    collector = ProfileCollector()
    if tracer is None:
        tracer = Tracer(enabled=True)
    metrics = run_app(name, procs, machine, level, options, scale,
                      tracer=tracer, profiler=collector, faults=faults,
                      flight=flight)
    profile = build_profile(metrics, collector, interval=interval,
                            samples=samples, scale=scale, tracer=tracer,
                            flight=flight)
    return metrics, profile


def _run_mp(program, hw, options) -> RunMetrics:
    from repro.runtime.message_passing import MessagePassingRuntime
    from repro.lab.calibration import IPSC_BROADCAST_TRIGGER_SECONDS

    runtime = MessagePassingRuntime(program, hw, options)
    runtime.comm.broadcast_trigger_overhead = IPSC_BROADCAST_TRIGGER_SECONDS
    return runtime.run()


def serial_and_stripped(name: str, machine: MachineKind,
                        scale: str = "paper") -> Dict[str, float]:
    """The Table 1 / Table 6 rows: original-serial and stripped times.

    The stripped time is the program's summed cost (zero-overhead serial
    execution); the original serial version differs by the data-structure
    modifications of the Jade conversion, modelled by each application's
    ``serial_overhead_factor``.
    """
    app = make_application(name, scale)
    program = app.build(1, machine=machine)
    stripped = program.total_cost()
    return {
        "serial": stripped * app.serial_overhead_factor(machine),
        "stripped": stripped,
    }


# ---------------------------------------------------------------------- #
# sweeps
# ---------------------------------------------------------------------- #
def levels_for(name: str) -> List[LocalityLevel]:
    """§5.2: Ocean/Cholesky run at three levels, Water/String at two."""
    app = make_application(name, "tiny")
    levels = []
    if app.supports_task_placement:
        levels.append(LocalityLevel.TASK_PLACEMENT)
    levels.extend([LocalityLevel.LOCALITY, LocalityLevel.NO_LOCALITY])
    return levels


def locality_sweep(
    name: str,
    machine: MachineKind,
    procs: List[int],
    scale: str = "paper",
    options: Optional[RuntimeOptions] = None,
) -> List[ExperimentRow]:
    """Tables 2–5 / 7–10 and Figures 2–9 / 12–19: locality-level sweep."""
    rows = []
    for level in levels_for(name):
        for p in procs:
            metrics = run_app(name, p, machine, level, options, scale)
            rows.append(ExperimentRow(name, machine.value, level.value, p, metrics))
    return rows


def broadcast_sweep(
    name: str,
    procs: List[int],
    scale: str = "paper",
) -> List[ExperimentRow]:
    """Tables 11–14: adaptive broadcast on vs off on the iPSC/860.

    Per §5.3 the runs use locality, replication and concurrent fetches on
    and latency hiding off.
    """
    rows = []
    for broadcast in (True, False):
        label = "broadcast" if broadcast else "no-broadcast"
        for p in procs:
            metrics = run_app(
                name, p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                RuntimeOptions(adaptive_broadcast=broadcast), scale,
            )
            rows.append(ExperimentRow(name, "ipsc860", label, p, metrics))
    return rows


def mgmt_percentage_sweep(
    name: str,
    machine: MachineKind,
    procs: List[int],
    scale: str = "paper",
) -> List[ExperimentRow]:
    """Figures 10/11/20/21: work-free ÷ original elapsed, at Task Placement."""
    level = LocalityLevel.TASK_PLACEMENT
    rows = []
    for p in procs:
        original = run_app(name, p, machine, level, scale=scale)
        workfree = run_app(
            name, p, machine, level,
            RuntimeOptions(locality=level, work_free=True), scale,
        )
        pct = task_management_percentage(workfree.elapsed, original.elapsed)
        rows.append(ExperimentRow(
            name, machine.value, level.value, p, original,
            extra={"workfree_elapsed": workfree.elapsed, "mgmt_pct": pct},
        ))
    return rows


def latency_hiding_sweep(
    name: str,
    procs: List[int],
    scale: str = "paper",
) -> List[ExperimentRow]:
    """§5.4: target tasks per processor 1 vs 2 (Panel Cholesky)."""
    rows = []
    for target in (1, 2):
        for p in procs:
            metrics = run_app(
                name, p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                RuntimeOptions(target_tasks_per_processor=target), scale,
            )
            rows.append(ExperimentRow(
                name, "ipsc860", f"target={target}", p, metrics,
            ))
    return rows


def fetch_latency_rows(
    names: List[str],
    procs: int,
    scale: str = "paper",
) -> List[ExperimentRow]:
    """§5.5: object-latency ÷ task-latency ratios at the Locality level."""
    rows = []
    for name in names:
        metrics = run_app(name, procs, MachineKind.IPSC860,
                          LocalityLevel.LOCALITY, scale=scale)
        rows.append(ExperimentRow(
            name, "ipsc860", "locality", procs, metrics,
            extra={"latency_ratio": metrics.object_to_task_latency_ratio},
        ))
    return rows
