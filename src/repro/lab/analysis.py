"""Static analysis of Jade programs: dependences, critical path, concurrency.

The paper attributes part of Panel Cholesky's limited scaling to "an
inherent lack of concurrency in the basic parallel computation" (§5.2.1,
citing Rothberg).  These tools quantify that kind of statement for any
Jade program:

* :func:`dependence_edges` / :func:`dependence_graph` — the task DAG
  implied by the access specifications and serial creation order (the
  exact dependences the synchronizer enforces);
* :func:`critical_path` — the longest cost-weighted chain: a lower bound
  on any execution's elapsed time, communication and overheads aside;
* :func:`max_speedup` — total work ÷ critical path;
* :func:`concurrency_profile` — task-level parallelism over time under an
  idealized infinite-processor, zero-overhead schedule;
* :func:`average_parallelism` — the profile's time-weighted mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.program import JadeProgram
from repro.core.task import TaskSpec


def dependence_edges(program: JadeProgram) -> List[Tuple[int, int]]:
    """Edges (pred_id, succ_id) of the program's task dependence DAG.

    Built by replaying the synchronizer's object-queue rules in program
    order: a read depends on the object's last writer; a write depends on
    the last writer and on every read since it.  Redundant (transitively
    implied) duplicates between the same pair are emitted once.
    """
    last_writer: Dict[int, int] = {}
    readers_since: Dict[int, List[int]] = {}
    edges = set()
    for task in program.tasks:
        tid = task.task_id
        for decl in task.spec:
            oid = decl.obj.object_id
            if decl.mode.reads:
                if oid in last_writer:
                    edges.add((last_writer[oid], tid))
            if decl.mode.writes:
                if oid in last_writer:
                    edges.add((last_writer[oid], tid))
                for reader in readers_since.get(oid, ()):  # WAR ordering
                    if reader != tid:
                        edges.add((reader, tid))
            # Update the queue state after computing this task's deps.
        for decl in task.spec:
            oid = decl.obj.object_id
            if decl.mode.writes:
                last_writer[oid] = tid
                readers_since[oid] = []
            elif decl.mode.reads:
                readers_since.setdefault(oid, []).append(tid)
    return sorted(edges)


def dependence_graph(program: JadeProgram) -> "nx.DiGraph":
    """The dependence DAG as a networkx digraph (nodes carry costs)."""
    graph = nx.DiGraph()
    for task in program.tasks:
        graph.add_node(task.task_id, cost=task.cost, name=task.name,
                       serial=task.serial)
    graph.add_edges_from(dependence_edges(program))
    return graph


@dataclass
class CriticalPath:
    """The longest cost-weighted dependence chain."""

    length_seconds: float
    task_ids: List[int]

    def __len__(self) -> int:
        return len(self.task_ids)


def critical_path(program: JadeProgram) -> CriticalPath:
    """Longest chain through the dependence DAG, weighted by task cost."""
    finish: Dict[int, float] = {}
    pred: Dict[int, int] = {}
    preds_of: Dict[int, List[int]] = {}
    for a, b in dependence_edges(program):
        preds_of.setdefault(b, []).append(a)
    best_tail, best = None, 0.0
    for task in program.tasks:  # already topologically ordered
        start = 0.0
        for p in preds_of.get(task.task_id, ()):  # max over predecessors
            if finish[p] > start:
                start = finish[p]
                pred[task.task_id] = p
        finish[task.task_id] = start + task.cost
        if finish[task.task_id] > best:
            best = finish[task.task_id]
            best_tail = task.task_id
    path: List[int] = []
    node = best_tail
    while node is not None:
        path.append(node)
        node = pred.get(node)
    return CriticalPath(length_seconds=best, task_ids=list(reversed(path)))


def max_speedup(program: JadeProgram) -> float:
    """Total work divided by the critical path (Amdahl-style bound)."""
    path = critical_path(program)
    if path.length_seconds <= 0:
        return float("inf")
    return program.total_cost() / path.length_seconds


def concurrency_profile(program: JadeProgram) -> List[Tuple[float, int]]:
    """(time, running-task-count) steps of the infinite-processor schedule.

    Every task starts the instant its last predecessor finishes; the
    returned step function samples the number of simultaneously running
    tasks.  Zero-cost tasks contribute no width (they are instantaneous).
    """
    finish: Dict[int, float] = {}
    preds_of: Dict[int, List[int]] = {}
    for a, b in dependence_edges(program):
        preds_of.setdefault(b, []).append(a)
    events: List[Tuple[float, int]] = []
    for task in program.tasks:
        start = max((finish[p] for p in preds_of.get(task.task_id, ())),
                    default=0.0)
        finish[task.task_id] = start + task.cost
        if task.cost > 0:
            events.append((start, +1))
            events.append((finish[task.task_id], -1))
    events.sort()
    profile: List[Tuple[float, int]] = []
    width = 0
    for time, delta in events:
        width += delta
        if profile and profile[-1][0] == time:
            profile[-1] = (time, width)
        else:
            profile.append((time, width))
    return profile


def average_parallelism(program: JadeProgram) -> float:
    """Time-weighted mean width of the concurrency profile."""
    profile = concurrency_profile(program)
    if not profile:
        return 0.0
    total_area = 0.0
    horizon = profile[-1][0]
    for (t0, w), (t1, _) in zip(profile, profile[1:]):
        total_area += w * (t1 - t0)
    return total_area / horizon if horizon > 0 else 0.0


def summarize(program: JadeProgram) -> Dict[str, float]:
    """One-call program summary for reports and examples."""
    path = critical_path(program)
    return {
        "tasks": float(len(program.tasks)),
        "total_work_s": program.total_cost(),
        "critical_path_s": path.length_seconds,
        "critical_path_tasks": float(len(path)),
        "max_speedup": max_speedup(program),
        "average_parallelism": average_parallelism(program),
    }
