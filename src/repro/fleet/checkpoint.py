"""Per-unit sweep checkpointing: journal completions, resume by replay.

A sweep is a list of pure deterministic units, so crash recovery does
not need write-ahead logging or distributed consensus — it needs exactly
one fact per unit: *these metrics came out of this configuration*.  The
:class:`CheckpointJournal` stores that fact as one canonical-JSON file
per completed unit, written atomically the moment the unit finishes
(``tmp`` + ``os.replace``), keyed by both the unit's position and its
content address:

* ``MANIFEST.json`` — ``{"schema": "repro.fleet.checkpoint/1",
  "sweep_key": <content_key of the full unit list>, "total": N}``.
  Opening a journal against a *different* sweep (changed app, procs,
  scale, options — anything) fails loudly instead of resuming into a
  silently mixed result.
* ``unit-NNNNNN.json`` — ``{"index", "unit": <unit doc>, "unit_key",
  "metrics": <RunMetrics.to_json()>}``.  ``unit_key`` is re-checked on
  load, so an index collision between two different sweeps can never
  smuggle the wrong metrics into a resumed run.

Because :mod:`repro.util.canon` floats round-trip exactly, a payload
read back from the journal re-serializes to the same bytes a fresh run
would produce — the resume path inherits the byte-identical contract.

:func:`iter_sweep_snapshot_chunks` is the streaming merge: it renders
the exact bytes of ``dump_json(sweep_snapshot_doc(...))`` one row at a
time straight from the journal, so writing a million-unit snapshot never
holds more than one unit's metrics in memory.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any, Dict, Iterator, Optional, Sequence, Set

from repro.errors import ExperimentError
from repro.fleet.executor import SweepUnit
from repro.telemetry.log import get_logger, log_event
from repro.util.canon import canonical_json, content_key

_log = get_logger("fleet.checkpoint")

CHECKPOINT_SCHEMA = "repro.fleet.checkpoint/1"

_MANIFEST = "MANIFEST.json"
_UNIT_FMT = "unit-%06d.json"
_QUARANTINE_DIR = "quarantine"


class CheckpointCorruption(ExperimentError):
    """A journaled unit file that cannot be trusted.

    Raised by :meth:`CheckpointJournal.load` for torn/truncated JSON, a
    checksum that does not match the payload, a missing checksum, or a
    ``unit_key`` naming a different unit.  The resume path
    (:meth:`CheckpointJournal.recover`) answers it by quarantining the
    file and recomputing the unit — corruption costs one re-run, never a
    crash and never a silently merged wrong result.
    """


def sweep_key(units: Sequence[SweepUnit]) -> str:
    """Content address of an entire sweep (its ordered unit list)."""
    return content_key([unit.to_json() for unit in units])


class CheckpointJournal:
    """One sweep's on-disk completion journal (a directory)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._total = 0

    # -- lifecycle ------------------------------------------------------ #
    def open_sweep(self, units: Sequence[SweepUnit]) -> None:
        """Bind the journal to this sweep; create or validate the manifest.

        A fresh directory gets a manifest; an existing one must describe
        *exactly* this unit list, or resuming would merge metrics from a
        different experiment.
        """
        os.makedirs(self.directory, exist_ok=True)
        key = sweep_key(units)
        self._total = len(units)
        manifest_path = os.path.join(self.directory, _MANIFEST)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            if manifest.get("schema") != CHECKPOINT_SCHEMA:
                raise ExperimentError(
                    f"{manifest_path} is not a fleet checkpoint manifest "
                    f"(schema {manifest.get('schema')!r})")
            if manifest.get("sweep_key") != key:
                raise ExperimentError(
                    f"checkpoint directory {self.directory} belongs to a "
                    "different sweep (manifest sweep_key "
                    f"{manifest.get('sweep_key')!r} != {key!r}); point "
                    "--checkpoint at a fresh directory or rerun the "
                    "original configuration")
            return
        self._write_atomic(manifest_path, canonical_json(
            {"schema": CHECKPOINT_SCHEMA, "sweep_key": key,
             "total": len(units)}, indent=2) + "\n")

    # -- queries -------------------------------------------------------- #
    def completed_indices(self) -> Set[int]:
        """Indices with a journaled result (resume skips these)."""
        done: Set[int] = set()
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return done
        for name in names:
            if name.startswith("unit-") and name.endswith(".json"):
                try:
                    done.add(int(name[5:-5]))
                except ValueError:
                    continue
        return done

    def load(self, index: int, unit: SweepUnit) -> Dict[str, Any]:
        """The journaled metrics payload for ``unit`` at ``index``.

        Strict: torn/truncated JSON, a payload that does not hash to the
        stored ``checksum`` (or has none), or a ``unit_key`` naming a
        different unit all raise :class:`CheckpointCorruption` — the
        streaming merge must never emit a byte it cannot vouch for.  Use
        :meth:`recover` on the resume path to quarantine-and-recompute
        instead of failing.
        """
        path = os.path.join(self.directory, _UNIT_FMT % index)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (ValueError, UnicodeDecodeError) as exc:
            raise CheckpointCorruption(
                f"checkpoint entry {path} is torn or truncated: "
                f"{exc}") from exc
        if not isinstance(doc, dict) or "metrics" not in doc:
            raise CheckpointCorruption(
                f"checkpoint entry {path} is not a unit document")
        expected = unit.unit_key()
        if doc.get("unit_key") != expected:
            raise CheckpointCorruption(
                f"checkpoint entry {path} was journaled for a different "
                f"unit (unit_key {doc.get('unit_key')!r} != {expected!r})")
        checksum = doc.get("checksum")
        computed = content_key(doc["metrics"])
        if checksum != computed:
            raise CheckpointCorruption(
                f"checkpoint entry {path} fails its payload checksum "
                f"(stored {checksum!r} != computed {computed!r}); the "
                "file was corrupted on disk")
        return doc["metrics"]

    # -- corruption recovery -------------------------------------------- #
    def quarantine(self, index: int) -> str:
        """Move a corrupt unit file into ``quarantine/``; return the path.

        The original bytes are preserved for post-mortem (never deleted,
        never re-read by a resume); a later re-record of the same index
        writes a fresh file in the journal proper.
        """
        src = os.path.join(self.directory, _UNIT_FMT % index)
        qdir = os.path.join(self.directory, _QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        dest = os.path.join(qdir, _UNIT_FMT % index)
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(qdir, _UNIT_FMT % index + f".{n}")
        os.replace(src, dest)
        return dest

    def recover(self, index: int, unit: SweepUnit
                ) -> Optional[Dict[str, Any]]:
        """Resume-path load: the payload, or ``None`` after quarantining.

        A missing file returns ``None`` (nothing to recover); a corrupt
        one is quarantined and logged, and the caller recomputes the
        unit — the recomputed result re-journals through the normal
        sink, so the final snapshot is byte-identical to an undamaged
        run.
        """
        try:
            return self.load(index, unit)
        except FileNotFoundError:
            return None
        except CheckpointCorruption as exc:
            quarantined = self.quarantine(index)
            log_event(_log, logging.WARNING, "checkpoint_quarantined",
                      index=index, quarantined=quarantined,
                      error=str(exc))
            return None

    # -- writes --------------------------------------------------------- #
    def record(self, index: int, unit: SweepUnit,
               payload: Dict[str, Any]) -> None:
        """Journal one completed unit (atomic: tmp + rename).

        ``checksum`` is the payload's content address — cheap at write
        time, and the difference between detecting a torn or bit-flipped
        file on resume and silently merging garbage.
        """
        path = os.path.join(self.directory, _UNIT_FMT % index)
        self._write_atomic(path, canonical_json(
            {"index": index, "unit": unit.to_json(),
             "unit_key": unit.unit_key(), "metrics": payload,
             "checksum": content_key(payload)},
            indent=2) + "\n")

    def _write_atomic(self, path: str, text: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)


# ---------------------------------------------------------------------- #
# streaming merge: journal -> exact snapshot bytes, one row at a time
# ---------------------------------------------------------------------- #
def iter_sweep_snapshot_chunks(
    app: str,
    machine: str,
    scale: str,
    units: Sequence[SweepUnit],
    journal: CheckpointJournal,
) -> Iterator[str]:
    """Yield the exact text of ``dump_json(sweep_snapshot_doc(...))``.

    Reads one journaled unit at a time, in canonical unit order, and
    renders each row with the same ``canonical_json(indent=2)`` layout
    the in-memory builder uses — concatenating the chunks reproduces the
    document byte-for-byte (asserted by the fleet tests), without ever
    materializing the full row list.
    """
    from repro.obs.schema import SWEEP_SCHEMA

    header = ('{\n'
              f'  "app": {canonical_json(app)},\n'
              f'  "machine": {canonical_json(machine)},\n'
              '  "rows": ')
    if not units:
        yield header + "[],\n"
    else:
        yield header + "[\n"
        last = len(units) - 1
        for index, unit in enumerate(units):
            row = {"level": unit.level, "procs": unit.procs,
                   "metrics": journal.load(index, unit)}
            text = canonical_json(row, indent=2)
            body = "\n".join("    " + line for line in text.splitlines())
            yield body + (",\n" if index != last else "\n")
        yield "  ],\n"
    yield (f'  "scale": {canonical_json(scale)},\n'
           f'  "schema": {canonical_json(SWEEP_SCHEMA)}\n'
           '}')


def write_sweep_snapshot_stream(
    path: str,
    app: str,
    machine: str,
    scale: str,
    units: Sequence[SweepUnit],
    journal: CheckpointJournal,
) -> None:
    """Stream the ``repro.sweep/1`` snapshot from the journal to ``path``.

    Output is byte-identical to the in-memory
    ``dump_json(sweep_snapshot_doc(...)) + "\\n"`` write the CLI uses
    without a checkpoint.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for chunk in iter_sweep_snapshot_chunks(app, machine, scale, units,
                                                journal):
            fh.write(chunk)
        fh.write("\n")
