"""``repro.fleet`` — parallel sweep execution across host processes.

Fans independent sweep configurations out over a process pool, merges the
results deterministically in configuration order, and guarantees the
merged output is byte-identical to the serial path (see
:mod:`repro.fleet.executor` for the determinism contract).
"""

from repro.fleet.executor import (
    SweepOutcome,
    SweepUnit,
    UnitFailure,
    default_jobs,
    parallel_locality_sweep,
    resilient_locality_sweep,
    run_units,
    run_units_resilient,
    sweep_snapshot_doc,
    sweep_units,
    verify_parallel_matches_serial,
)

__all__ = [
    "SweepOutcome",
    "SweepUnit",
    "UnitFailure",
    "default_jobs",
    "parallel_locality_sweep",
    "resilient_locality_sweep",
    "run_units",
    "run_units_resilient",
    "sweep_snapshot_doc",
    "sweep_units",
    "verify_parallel_matches_serial",
]
