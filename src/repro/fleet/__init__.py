"""``repro.fleet`` — parallel sweep execution across hosts and processes.

Fans independent sweep configurations out over a pluggable
:class:`~repro.fleet.backends.FleetBackend` — this host's process pool,
remote ``repro worker`` hosts over HTTP, either wrapped in a resumable
on-disk checkpoint journal — merges the results deterministically in
configuration order, and guarantees the merged output is byte-identical
to the serial path (see :mod:`repro.fleet.executor` for the determinism
contract).
"""

from repro.fleet.backends import (
    FLEET_BACKENDS,
    BackendConfig,
    CheckpointBackend,
    FleetBackend,
    PayloadMetrics,
    ProcessPoolBackend,
    RemoteBackend,
    create_backend,
)
from repro.fleet.breaker import (
    BackoffSchedule,
    CircuitBreaker,
    retry_after_s,
)
from repro.fleet.checkpoint import (
    CheckpointCorruption,
    CheckpointJournal,
    iter_sweep_snapshot_chunks,
    write_sweep_snapshot_stream,
)
from repro.fleet.executor import (
    SweepOutcome,
    SweepUnit,
    UnitFailure,
    fleet_sweep_doc,
    default_jobs,
    parallel_locality_sweep,
    resilient_locality_sweep,
    run_units,
    run_units_resilient,
    sweep_snapshot_doc,
    sweep_units,
    verify_parallel_matches_serial,
)

__all__ = [
    "BackendConfig",
    "BackoffSchedule",
    "CheckpointBackend",
    "CheckpointCorruption",
    "CheckpointJournal",
    "CircuitBreaker",
    "FLEET_BACKENDS",
    "FleetBackend",
    "PayloadMetrics",
    "ProcessPoolBackend",
    "RemoteBackend",
    "SweepOutcome",
    "SweepUnit",
    "UnitFailure",
    "create_backend",
    "default_jobs",
    "fleet_sweep_doc",
    "iter_sweep_snapshot_chunks",
    "parallel_locality_sweep",
    "resilient_locality_sweep",
    "retry_after_s",
    "run_units",
    "run_units_resilient",
    "sweep_snapshot_doc",
    "sweep_units",
    "verify_parallel_matches_serial",
    "write_sweep_snapshot_stream",
]
