"""Circuit breakers and seeded backoff: the fleet's self-healing core.

A dead or draining worker must neither hang a sweep (every dispatch to
it waiting out the full request timeout) nor be thrown away forever on
the first hiccup (a worker mid-restart is back in seconds).  The classic
answer is a per-worker circuit breaker:

* **closed** — dispatches flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker opens and the worker leaves the dispatch rotation for a
  backoff interval (exponential in the number of open cycles).
* **half-open** — when the interval expires, exactly one cheap health
  probe is allowed.  Success closes the breaker (the worker re-enters
  the rotation); failure re-opens it with a deeper backoff.  After
  ``max_opens`` consecutive open cycles without a successful probe the
  breaker is **exhausted** and the worker is removed permanently.

Backoff delays come from :class:`BackoffSchedule` — exponential growth
with *seeded* jitter drawn from a :func:`repro.util.rng.substream`, so
two runs with the same seed back off identically (the repo's
determinism-by-construction rule applies to recovery timing too, which
is what makes breaker tests exact instead of sleep-and-hope).  The same
primitive prices the ``Retry-After`` header of the serve layer's
overload shedding, so every "come back later" the system emits is drawn
from one schedule family.

Nothing here is transport-specific: the breaker sees only
``record_success``/``record_failure`` calls and answers "may I dispatch
/ probe now?" — :class:`repro.fleet.backends.RemoteBackend` owns the
wiring.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import ExperimentError
from repro.util.rng import substream

#: Breaker states (stable strings: they label telemetry counters and
#: fleet-trace instants).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BackoffSchedule:
    """Deterministic exponential backoff with seeded jitter.

    ``delay(cycle)`` returns ``base * factor**cycle`` capped at ``max_s``,
    multiplied by ``1 + jitter * u`` where ``u`` is the next draw from
    the ``(seed, label)`` substream.  Distinct labels (one per worker
    URL) give independent jitter streams, so a fleet's workers do not
    retry in lockstep, yet the whole timing pattern is a pure function
    of the seed.  ``jitter=0`` draws no RNG at all.
    """

    def __init__(self, seed: int = 0, label: str = "backoff",
                 base_s: float = 0.05, factor: float = 2.0,
                 max_s: float = 5.0, jitter: float = 0.5) -> None:
        if base_s <= 0 or max_s < base_s:
            raise ExperimentError(
                f"backoff needs 0 < base_s <= max_s, got "
                f"base_s={base_s!r} max_s={max_s!r}")
        if factor < 1.0:
            raise ExperimentError(
                f"backoff factor must be >= 1, got {factor!r}")
        if not 0.0 <= jitter <= 1.0:
            raise ExperimentError(
                f"backoff jitter must be in [0, 1], got {jitter!r}")
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.jitter = jitter
        self._rng = substream(seed, f"backoff.{label}")

    def delay(self, cycle: int) -> float:
        """Seconds to wait after the ``cycle``-th consecutive failure."""
        raw = min(self.base_s * (self.factor ** max(0, cycle)), self.max_s)
        if self.jitter > 0.0:
            raw *= 1.0 + self.jitter * float(self._rng.random())
        return raw


class CircuitBreaker:
    """One worker's closed/open/half-open dispatch gate.

    Thread-safe (the pump thread and observers may race), but designed
    for a single driving thread: :meth:`allow_probe` admits exactly one
    probe per open cycle.  ``on_transition`` (if given) fires with the
    new state name on every state change — the backends hang telemetry
    counters and trace instants off it.
    """

    def __init__(self, backoff: BackoffSchedule,
                 failure_threshold: int = 3, max_opens: int = 8,
                 on_transition: Optional[Callable[[str], None]] = None
                 ) -> None:
        if failure_threshold < 1:
            raise ExperimentError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if max_opens < 1:
            raise ExperimentError(
                f"max_opens must be >= 1, got {max_opens}")
        self.backoff = backoff
        self.failure_threshold = failure_threshold
        self.max_opens = max_opens
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opens = 0          # consecutive open cycles without success
        self._open_until = 0.0
        self._probe_admitted = False

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def opens(self) -> int:
        """Consecutive open cycles since the last success."""
        with self._lock:
            return self._opens

    @property
    def exhausted(self) -> bool:
        """True once ``max_opens`` cycles passed without a good probe."""
        with self._lock:
            return self._opens >= self.max_opens

    def _transition(self, state: str) -> None:
        # lock held by caller
        self._state = state
        if self.on_transition is not None:
            self.on_transition(state)

    # ------------------------------------------------------------------ #
    def allow_dispatch(self, now: float) -> bool:
        """May a real unit be dispatched right now? (closed state only)"""
        with self._lock:
            if self._state == OPEN and now >= self._open_until:
                self._probe_admitted = False
                self._transition(HALF_OPEN)
            return self._state == CLOSED

    def allow_probe(self, now: float) -> bool:
        """May a health probe go out? True exactly once per half-open."""
        with self._lock:
            if self._state == OPEN and now >= self._open_until:
                self._probe_admitted = False
                self._transition(HALF_OPEN)
            if self._state == HALF_OPEN and not self._probe_admitted:
                self._probe_admitted = True
                return True
            return False

    def wait_s(self, now: float) -> float:
        """Seconds until the open interval expires (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self._open_until - now)

    # ------------------------------------------------------------------ #
    def record_success(self, now: float) -> None:
        """A dispatch or probe succeeded: close and reset everything."""
        with self._lock:
            self._failures = 0
            self._opens = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self, now: float) -> None:
        """A dispatch or probe failed: count, open at the threshold."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN \
                    or (self._state == CLOSED
                        and self._failures >= self.failure_threshold):
                self._failures = 0
                self._open_until = now + self.backoff.delay(self._opens)
                self._opens += 1
                self._transition(OPEN)


def retry_after_s(schedule: BackoffSchedule, cycle: int) -> int:
    """An integer ``Retry-After`` value (>= 1 s) from a backoff schedule.

    Shared by the worker's drain refusals and the serve layer's 429
    shedding: whole seconds because the header is specified as integer
    seconds, floored at 1 so a client never busy-loops on zero.
    """
    import math

    return max(1, int(math.ceil(schedule.delay(cycle))))
