"""Fleet execution backends: where sweep units actually run.

:func:`repro.fleet.executor.run_units_resilient` owns *what* to run (the
canonical unit list) and *how to account for it* (the
:class:`~repro.fleet.executor._Progress` hub and the merge back into unit
order); a :class:`FleetBackend` owns *where* the units execute:

* :class:`ProcessPoolBackend` — this host's fork-based
  :class:`~concurrent.futures.ProcessPoolExecutor`, the original fleet
  semantics byte-for-byte (timeout kill, pool-restart budget, partial
  degraded mode);
* :class:`RemoteBackend` — units dispatched over HTTP to ``repro
  worker`` hosts.  The dispatch protocol is the go-back-ARQ design of
  :mod:`repro.runtime.reliable` applied host-side: every attempt carries
  a sweep-unique sequence number, workers dedup on ``(sweep, index)`` so
  a re-dispatched unit is computed once and joined by every duplicate
  request, a lost or timed-out dispatch is requeued for the next free
  worker (bounded by ``len(workers) + retries`` attempts per unit), and
  a worker that fails repeatedly trips a per-worker circuit breaker
  (:mod:`repro.fleet.breaker`): it leaves the rotation for a seeded
  exponential backoff, is re-admitted by a successful half-open health
  probe, and is removed permanently only after ``max_opens`` cycles
  without one.  Every response is integrity-verified (``unit_key`` echo
  plus payload checksum) before it can touch the merge;
* :class:`CheckpointBackend` — a wrapper around either of the above that
  journals every completed unit's metrics to disk
  (:mod:`repro.fleet.checkpoint`) *as it completes* and recovers
  journaled units instead of re-running them, so a sweep killed mid-run
  resumes where it left off with byte-identical final output.

Like :data:`repro.serve.transport.TRANSPORTS`, backends are registry
entries (:data:`FLEET_BACKENDS`) lazy-loaded by :func:`create_backend`,
so ``--backend remote`` is one dict line away from any future scheduler.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
import uuid
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.fleet import executor as _executor
from repro.fleet.executor import (
    SweepOutcome,
    SweepUnit,
    UnitFailure,
    _Progress,
    _WorkerResult,
)
from repro.telemetry.log import get_logger, log_event

_log = get_logger("fleet")

#: Backend registry: name -> "module:Class" (mirrors serve's TRANSPORTS).
FLEET_BACKENDS = {
    "process": "repro.fleet.backends:ProcessPoolBackend",
    "remote": "repro.fleet.backends:RemoteBackend",
}


def create_backend(name: str, **options: Any) -> "FleetBackend":
    """Instantiate a fleet backend by registry name (lazy import)."""
    import importlib

    try:
        target = FLEET_BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown fleet backend {name!r}; valid: "
            f"{', '.join(sorted(FLEET_BACKENDS))}") from None
    module_name, _, class_name = target.partition(":")
    module = importlib.import_module(module_name)
    cls = getattr(module, class_name)
    return cls(**options)


@dataclass(frozen=True)
class BackendConfig:
    """The per-sweep execution knobs a backend receives (never mutated)."""

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    partial: bool = False


class FleetBackend(ABC):
    """Executes ``(index, SweepUnit)`` pairs somewhere; returns results.

    ``execute`` may return results in any order (the executor merges by
    index), must route every result through ``progress.record`` (or
    ``progress.resumed`` for journal recoveries) exactly once, and must
    append a typed :class:`UnitFailure` to ``outcome.failures`` for every
    unit it abandons in ``partial`` mode.  Simulation errors are *data*
    (``_WorkerResult.error``), never exceptions: the executor applies the
    partial/strict policy uniformly.
    """

    #: Registry name (labels the per-backend telemetry counters).
    name = ""

    @abstractmethod
    def execute(
        self,
        indexed: List[Tuple[int, SweepUnit]],
        config: BackendConfig,
        outcome: SweepOutcome,
        progress: _Progress,
    ) -> List[_WorkerResult]:
        """Run every pair in ``indexed``; return their results."""


class PayloadMetrics:
    """A journaled/remote metrics payload wearing the ``RunMetrics`` hat.

    Results that cross a wire or a journal arrive as the ``to_json()``
    dict, not the live object.  Re-hydrating a real :class:`RunMetrics`
    would be lossy guesswork; instead this wrapper returns the payload
    *verbatim* from :meth:`to_json` — which is all the snapshot builder
    consumes, so byte-identity with a fresh run follows from canonical
    JSON's exact float round-trip — and answers attribute reads
    (``elapsed``, ``task_locality_pct``, ...) from the payload's top
    level or its ``derived`` block for the CLI tables.
    """

    __slots__ = ("_payload",)

    def __init__(self, payload: Dict[str, Any]) -> None:
        self._payload = payload

    def to_json(self) -> Dict[str, Any]:
        return self._payload

    def __getattr__(self, name: str):
        payload = self._payload
        if name in payload:
            return payload[name]
        derived = payload.get("derived")
        if isinstance(derived, dict) and name in derived:
            return derived[name]
        raise AttributeError(
            f"metrics payload has no field {name!r}")


# ---------------------------------------------------------------------- #
# this host: the hardened process pool
# ---------------------------------------------------------------------- #
def _mp_context():
    """Fork where available (cheap, inherits the warmed interpreter)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: terminate workers, abandon queued work.

    ``ProcessPoolExecutor`` cannot cancel a future that is already
    running, so a hung worker would make a plain ``shutdown`` block
    forever; terminating the worker processes first makes the shutdown
    non-blocking (terminating an already-exited process is a no-op).
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _harvest(
    futures: List[Tuple[Tuple[int, SweepUnit], Any]],
    start: int,
    results: List[_WorkerResult],
    progress: _Progress,
) -> List[Tuple[int, SweepUnit]]:
    """Collect finished results from ``futures[start:]``; return the rest.

    Called while abandoning a pool: completed work is kept (never re-run),
    everything queued or in flight is returned for requeueing on a fresh
    pool.
    """
    requeue: List[Tuple[int, SweepUnit]] = []
    for pair, fut in futures[start:]:
        if fut.done():
            try:
                results.append(fut.result(timeout=0))
                progress.record(results[-1])
                continue
            except BaseException:  # noqa: BLE001 - crashed with the pool
                pass
        requeue.append(pair)
    return requeue


class ProcessPoolBackend(FleetBackend):
    """The original fleet path: a fork pool on this host.

    ``jobs == 1`` (or a single unit) runs in-process with no pool — the
    reference serial path, whose output every other backend must match
    byte-for-byte.
    """

    name = "process"

    def execute(self, indexed, config, outcome, progress):
        if config.jobs == 1 or len(indexed) <= 1:
            return self._serial(indexed, config, progress)
        return self._pooled(indexed, config, outcome, progress)

    def _serial(self, indexed, config, progress):
        if config.timeout is not None:
            # Nothing can preempt an in-process simulation: say so loudly
            # instead of silently ignoring the budget (unattended sweeps).
            log_event(_log, logging.WARNING, "timeout_unenforced",
                      timeout_s=config.timeout, jobs=config.jobs,
                      reason="in-process execution cannot preempt a "
                             "running unit; use --jobs >= 2 to enforce "
                             "the per-unit budget")
        progress.dispatch(len(indexed), self.name)
        results: List[_WorkerResult] = []
        for pair in indexed:
            results.append(_executor._run_unit(pair))
            progress.record(results[-1])
        return results

    def _pooled(self, indexed, config, outcome, progress):
        """The hardened pool loop: submit, await in order, recover, requeue."""
        timeout, partial = config.timeout, config.partial
        results: List[_WorkerResult] = []
        pending = list(indexed)
        restarts_left = config.retries
        while pending:
            pool = ProcessPoolExecutor(
                max_workers=min(config.jobs, len(pending)),
                mp_context=_mp_context())
            futures = [(pair, pool.submit(_executor._run_unit, pair))
                       for pair in pending]
            progress.dispatch(len(pending), self.name)
            requeue: Optional[List[Tuple[int, SweepUnit]]] = None
            try:
                for position, (pair, fut) in enumerate(futures):
                    index, unit = pair
                    try:
                        results.append(fut.result(timeout=timeout))
                        progress.record(results[-1])
                    except FuturesTimeout:
                        if not partial:
                            raise ExperimentError(
                                f"sweep unit timed out after {timeout:g}s of "
                                f"wall-clock: {unit.describe()} — raise "
                                "--timeout, or pass --partial to skip hung "
                                "units and keep the rest") from None
                        outcome.failures.append(UnitFailure(
                            index, unit.describe(), "timeout",
                            f"exceeded the {timeout:g}s per-unit wall-clock "
                            "budget; worker killed"))
                        progress.timed_out()
                        log_event(_log, logging.WARNING, "unit_timeout",
                                  unit=unit.describe(), index=index,
                                  timeout_s=timeout)
                        requeue = _harvest(futures, position + 1, results,
                                           progress)
                        progress.requeue(len(requeue), self.name)
                        break
                    except BrokenProcessPool as exc:
                        if restarts_left <= 0:
                            if partial:
                                for lost_pair, lost_fut in futures[position:]:
                                    if (lost_fut.done()
                                            and not lost_fut.cancelled()):
                                        try:
                                            results.append(
                                                lost_fut.result(timeout=0))
                                            progress.record(results[-1])
                                            continue
                                        except BaseException:  # noqa: BLE001
                                            pass
                                    lost_index, lost_unit = lost_pair
                                    outcome.failures.append(UnitFailure(
                                        lost_index, lost_unit.describe(),
                                        "pool",
                                        f"worker pool died ({exc}) with the "
                                        "restart budget exhausted"))
                                    progress.lost()
                                requeue = []
                                break
                            raise ExperimentError(
                                f"sweep worker pool died mid-sweep ({exc}); "
                                "a worker was killed or crashed outside "
                                "Python — rerun with --jobs 1 to reproduce "
                                "serially") from exc
                        restarts_left -= 1
                        outcome.pool_restarts += 1
                        progress.instruments["pool_restarts"].inc()
                        # The current unit is requeued too: pool death is a
                        # host-side event, not a property of the unit.
                        requeue = [pair] + _harvest(futures, position + 1,
                                                    results, progress)
                        progress.requeue(len(requeue), self.name)
                        log_event(_log, logging.WARNING, "pool_restart",
                                  requeued=len(requeue),
                                  restarts_left=restarts_left)
                        break
            finally:
                _kill_pool(pool)
            if requeue is None:
                break
            pending = requeue
        return results


# ---------------------------------------------------------------------- #
# remote hosts: units over HTTP to ``repro worker`` processes
# ---------------------------------------------------------------------- #
class RemoteBackend(FleetBackend):
    """Dispatch units to ``repro worker`` hosts (go-back-ARQ, host-side).

    One dispatcher thread per worker URL pulls units from a shared queue:
    the natural work-stealing schedule (fast workers take more units)
    without any result-order dependence — results merge by index.  Each
    dispatch carries a fresh sequence number; the worker side deduplicates
    on ``(sweep, index)``, so a unit re-dispatched after a timeout is
    computed once even if the first request is still running there.

    A failed attempt (connection refused, HTTP error, timeout, or a
    response that fails integrity verification) requeues the unit for
    the next free worker, up to ``len(workers) + config.retries``
    attempts, and counts against the failing worker's
    :class:`~repro.fleet.breaker.CircuitBreaker`: ``max_strikes``
    consecutive failures open the breaker, the worker sits out a seeded
    exponential backoff, and each expiry admits exactly one ``GET
    /v1/health`` probe — a healthy answer (``status == "ok"``; a
    draining worker reports ``"draining"`` and stays out) re-admits the
    worker, ``max_opens`` cycles without one removes it permanently.
    When every attempt is exhausted — or every worker has left — the
    unit becomes a :class:`UnitFailure` (reason ``"timeout"`` or
    ``"remote"``): partial mode keeps going, strict mode aborts.

    Integrity: every response must echo the dispatched ``unit_key`` and
    carry a ``checksum`` matching
    :func:`repro.fleet.worker.response_checksum` over its result fields.
    A mismatch (or an undecodable/truncated body) is a transport failure
    — the unit requeues and recomputes; corrupt bytes never merge.

    An optional :class:`~repro.telemetry.fleet.FleetTraceCollector`
    (``trace``) receives one record per dispatch round-trip, failure,
    requeue, steal and breaker transition — the raw material ``repro
    sweep --trace-out`` merges into a fleet timeline.  Recording is
    host-side observation only; sweep output bytes are identical with or
    without it.
    """

    name = "remote"

    def __init__(self, workers: Sequence[str],
                 request_timeout: float = 300.0,
                 max_strikes: int = 3,
                 trace: Optional[Any] = None,
                 breaker_seed: int = 0,
                 max_opens: int = 6,
                 backoff_base_s: float = 0.05,
                 backoff_max_s: float = 2.0) -> None:
        if not workers:
            raise ExperimentError(
                "remote backend needs at least one worker URL")
        if max_strikes < 1:
            raise ExperimentError(
                f"max_strikes must be >= 1, got {max_strikes}")
        self.workers = [url.rstrip("/") for url in workers]
        self.request_timeout = request_timeout
        self.max_strikes = max_strikes
        self.trace = trace
        self.breaker_seed = breaker_seed
        self.max_opens = max_opens
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s

    def _make_breaker(self, url: str, progress: _Progress
                      ) -> "CircuitBreaker":
        from repro.fleet.breaker import BackoffSchedule, CircuitBreaker

        trace = self.trace

        def note(state: str) -> None:
            progress.breaker(state)
            if trace is not None:
                trace.record_breaker(url, state, time.monotonic())
            log_event(_log, logging.INFO, "breaker_transition",
                      worker=url, state=state)

        return CircuitBreaker(
            BackoffSchedule(seed=self.breaker_seed,
                            label=f"breaker.{url}",
                            base_s=self.backoff_base_s,
                            max_s=self.backoff_max_s),
            failure_threshold=self.max_strikes,
            max_opens=self.max_opens,
            on_transition=note)

    def execute(self, indexed, config, outcome, progress):
        from repro.fleet.worker import (WorkerClient, WorkerError,
                                        response_checksum)

        for _, unit in indexed:
            if unit.options is not None:
                raise ExperimentError(
                    "remote backend cannot ship explicit RuntimeOptions; "
                    "workers derive options from the unit's locality "
                    f"level (offending unit: {unit.describe()})")
        sweep_id = uuid.uuid4().hex
        trace = self.trace
        if trace is not None:
            trace.sweep = sweep_id
        max_attempts = len(self.workers) + config.retries
        timeout = config.timeout if config.timeout is not None \
            else self.request_timeout

        lock = threading.Lock()
        queue: deque = deque((pair, 0, None) for pair in indexed)
        results: List[_WorkerResult] = []
        done = threading.Event()
        abort: List[ExperimentError] = []
        state = {"remaining": len(indexed), "live": len(self.workers),
                 "seq": 0}

        def resolve_failure(index, unit, attempts, exc):
            # lock held.  The unit's dispatch budget is spent: record the
            # typed failure and, in strict mode, arm the abort.
            if getattr(exc, "timed_out", False):
                outcome.failures.append(UnitFailure(
                    index, unit.describe(), "timeout",
                    f"no worker finished the unit within {timeout:g}s "
                    f"({attempts} attempt(s))"))
                progress.timed_out()
            else:
                outcome.failures.append(UnitFailure(
                    index, unit.describe(), "remote",
                    f"every dispatch failed after {attempts} attempt(s); "
                    f"last error: {exc}"))
                progress.lost()
            state["remaining"] -= 1
            if not config.partial:
                abort.append(ExperimentError(
                    f"remote sweep unit failed after {attempts} "
                    f"attempt(s): {unit.describe()} — last error: {exc}"))
                done.set()
            elif state["remaining"] == 0:
                done.set()

        def verify_response(url: str, index: int, unit: SweepUnit,
                            doc: Dict[str, Any]) -> None:
            # A response only enters the merge if the worker echoed the
            # unit we dispatched and its result fields hash to the
            # checksum it stamped; anything else is a transport failure
            # (reason ``corrupt``) and the unit recomputes elsewhere.
            expected_key = unit.unit_key()
            if doc.get("unit_key") != expected_key:
                raise WorkerError(
                    f"worker {url} answered unit {index} with unit_key "
                    f"{doc.get('unit_key')!r} (expected {expected_key!r})",
                    corrupt=True)
            stamped = doc.get("checksum")
            if stamped != response_checksum(doc):
                raise WorkerError(
                    f"worker {url} response for unit {index} fails its "
                    f"payload checksum (stamped {stamped!r}); the body "
                    "was corrupted in transit", corrupt=True)

        def probe(url: str, client, breaker, now: float) -> None:
            # The single half-open admission: one cheap health round-trip
            # decides re-admission.  A draining worker reports
            # ``status: "draining"`` — truthfully alive, but refusing
            # work — so only ``"ok"`` closes the breaker.
            error: Optional[str] = None
            try:
                health = client.health()
                if health.get("status") != "ok":
                    error = f"worker status {health.get('status')!r}"
            except WorkerError as exc:
                error = str(exc)
            t_done = time.monotonic()
            if error is None:
                breaker.record_success(t_done)
                progress.probe("ok")
                log_event(_log, logging.INFO, "remote_worker_readmitted",
                          worker=url)
            else:
                breaker.record_failure(t_done)
                progress.probe("failed")
                log_event(_log, logging.WARNING, "remote_probe_failed",
                          worker=url, error=error, opens=breaker.opens)

        def pump(url: str) -> None:
            client = WorkerClient(url, timeout=timeout)
            breaker = self._make_breaker(url, progress)
            while not done.is_set():
                now = time.monotonic()
                if not breaker.allow_dispatch(now):
                    if breaker.exhausted:
                        log_event(_log, logging.WARNING,
                                  "remote_worker_removed", worker=url,
                                  opens=breaker.opens)
                        break
                    if breaker.allow_probe(now):
                        probe(url, client, breaker, now)
                        continue
                    done.wait(min(0.05, max(0.005, breaker.wait_s(now))))
                    continue
                with lock:
                    item = queue.popleft() if queue else None
                    if item is not None and item[2] == url \
                            and state["live"] > 1:
                        # This worker just failed this very unit.  While
                        # another worker is still live, hand the unit
                        # over instead of re-trying here: a fast-failing
                        # dead host must not burn the unit's whole
                        # attempt budget before a slow healthy one gets
                        # a chance.
                        queue.append(item)
                        item = None
                    if item is not None:
                        state["seq"] += 1
                        seq = state["seq"]
                        progress.dispatch(1, RemoteBackend.name)
                        prev = item[2]
                        if prev is not None and prev != url:
                            progress.steal(1, RemoteBackend.name)
                            if trace is not None:
                                trace.record_steal(
                                    url, item[0][0], item[1],
                                    time.monotonic())
                if item is None:
                    # Queue drained but units may still be in flight on
                    # other workers (and may yet requeue here).
                    done.wait(0.02)
                    continue
                pair, attempts, _prev = item
                index, unit = pair
                t_send = time.monotonic()
                try:
                    doc = client.run_unit(sweep_id, seq, index, unit,
                                          attempt=attempts)
                    verify_response(url, index, unit, doc)
                except WorkerError as exc:
                    t_fail = time.monotonic()
                    if trace is not None:
                        trace.record_failure(url, index, attempts, t_send,
                                             t_fail, str(exc))
                    if exc.corrupt:
                        progress.corrupt()
                    elif exc.status == 503 and (
                            exc.retry_after is not None
                            or "draining" in str(exc)):
                        progress.drained_dispatch()
                    breaker.record_failure(t_fail)
                    attempts += 1
                    log_event(_log, logging.WARNING, "remote_dispatch_failed",
                              worker=url, unit=unit.describe(), index=index,
                              attempts=attempts, corrupt=exc.corrupt,
                              breaker=breaker.state, error=str(exc))
                    with lock:
                        if attempts >= max_attempts:
                            resolve_failure(index, unit, attempts, exc)
                        else:
                            queue.append((pair, attempts, url))
                            progress.requeue(1, RemoteBackend.name)
                            if trace is not None:
                                trace.record_requeue(url, index, attempts,
                                                     time.monotonic())
                    continue
                t_arrive = time.monotonic()
                if trace is not None:
                    trace.record_dispatch(url, index, attempts, seq,
                                          t_send, t_arrive, doc)
                breaker.record_success(t_arrive)
                exec_window = doc.get("exec") or {}
                metrics = PayloadMetrics(doc["metrics"]) \
                    if doc.get("metrics") is not None else None
                result = _WorkerResult(
                    index, metrics=metrics, error=doc.get("error"),
                    trace=doc.get("trace"), pid=doc.get("pid", 0),
                    seconds=exec_window.get("seconds", t_arrive - t_send))
                with lock:
                    if abort:
                        break  # sweep already failed; drop late results
                    results.append(result)
                    progress.record(result)
                    state["remaining"] -= 1
                    if state["remaining"] == 0:
                        done.set()
            with lock:
                state["live"] -= 1
                if state["live"] == 0 and not done.is_set():
                    # Every worker struck out: drain what's left as typed
                    # failures instead of hanging the sweep.
                    while queue:
                        (idx, u), att, _ = queue.popleft()
                        outcome.failures.append(UnitFailure(
                            idx, u.describe(), "remote",
                            "every remote worker became unreachable "
                            f"(after {att} attempt(s) on this unit)"))
                        progress.lost()
                        state["remaining"] -= 1
                    if not config.partial:
                        abort.append(ExperimentError(
                            "every remote worker became unreachable; "
                            "rerun with live workers or --backend process"))
                    done.set()
            log_event(_log, logging.INFO, "remote_worker_done", worker=url,
                      breaker=breaker.state, opens=breaker.opens)

        threads = [threading.Thread(target=pump, args=(url,), daemon=True,
                                    name=f"fleet-dispatch-{i}")
                   for i, url in enumerate(self.workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if abort:
            raise abort[0]
        return results

    def scrape_fleet(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Scrape every worker's health and telemetry snapshot.

        One entry per configured worker, in URL order; a worker that
        cannot be reached yields ``metrics: null`` plus an ``error``
        string rather than failing the scrape — the sweep already
        finished, observability must not un-finish it.
        """
        from repro.fleet.worker import WorkerClient, WorkerError

        entries: List[Dict[str, Any]] = []
        for url in sorted(self.workers):
            client = WorkerClient(url, timeout=timeout)
            entry: Dict[str, Any] = {"url": url, "health": None,
                                     "metrics": None}
            try:
                entry["health"] = client.health()
                entry["metrics"] = client.metrics_json()
            except WorkerError as exc:
                entry["error"] = str(exc)
            entries.append(entry)
        return {"workers": entries}


# ---------------------------------------------------------------------- #
# the checkpoint wrapper: journal completions, resume by skipping them
# ---------------------------------------------------------------------- #
class CheckpointBackend(FleetBackend):
    """Wrap any backend with a per-unit disk journal.

    Before executing, units already present in the journal are recovered
    as :class:`PayloadMetrics` (counted ``resumed``, never dispatched);
    the rest run on the inner backend with a ``progress.sink`` hook that
    journals each unit's metrics *the moment it completes* — so a sweep
    killed mid-run has journaled exactly its completed units, and a rerun
    with the same directory picks up from there.  Failed units are never
    journaled (they re-run on resume: errors may be environmental).
    """

    name = "checkpoint"

    def __init__(self, inner: FleetBackend, journal: Any) -> None:
        from repro.fleet.checkpoint import CheckpointJournal

        if not isinstance(journal, CheckpointJournal):
            journal = CheckpointJournal(str(journal))
        self.inner = inner
        self.journal = journal

    def execute(self, indexed, config, outcome, progress):
        units = {index: unit for index, unit in indexed}
        self.journal.open_sweep([unit for _, unit in indexed])
        journaled = self.journal.completed_indices()
        results: List[_WorkerResult] = []
        fresh: List[Tuple[int, SweepUnit]] = []
        quarantined = 0
        for pair in indexed:
            index, unit = pair
            payload = self.journal.recover(index, unit) \
                if index in journaled else None
            if payload is not None:
                result = _WorkerResult(index,
                                       metrics=PayloadMetrics(payload))
                results.append(result)
                progress.resumed(result)
            else:
                if index in journaled:
                    # The file existed but could not be trusted: recover()
                    # quarantined it, and the unit re-runs like any other.
                    quarantined += 1
                    progress.quarantined()
                fresh.append(pair)
        if journaled:
            log_event(_log, logging.INFO, "sweep_resumed",
                      journal=self.journal.directory,
                      resumed=len(results), fresh=len(fresh),
                      quarantined=quarantined)
        if not fresh:
            return results
        prev_sink = progress.sink

        def journaling_sink(result: _WorkerResult) -> None:
            if prev_sink is not None:
                prev_sink(result)
            self.journal.record(result.index, units[result.index],
                                result.metrics.to_json())

        progress.sink = journaling_sink
        try:
            results.extend(self.inner.execute(fresh, config, outcome,
                                              progress))
        finally:
            progress.sink = prev_sink
        return results
