"""``repro worker``: turn any host into a fleet unit-executor.

The worker is the receive side of the fleet's host-level ARQ (the
dispatch side lives in :class:`repro.fleet.backends.RemoteBackend`): a
small stdlib :class:`~http.server.ThreadingHTTPServer` with three
endpoints —

* ``POST /v1/units`` — execute one :class:`SweepUnit`.  The body carries
  the sweep id, a dispatcher sequence number, the unit index, the unit
  document and its ``unit_key``.  Execution is deduplicated on
  ``(sweep, index)``: a re-dispatched unit (the dispatcher timed out and
  tried again, exactly like a retransmitted packet) *joins* the original
  computation instead of re-running it, and both requests return the
  same response — the simulation is pure, so at-most-once execution with
  at-least-once delivery composes into exactly-once results.
* ``POST /v1/jobs`` — execute one :mod:`repro.serve` request
  synchronously and return its ``repro.serve/1`` document, which lets
  the worker double as a minimal Transport backend
  (:class:`FleetWorkerTransport`, registry name ``"worker"``).
* ``GET /v1/health`` — liveness plus the dedup counters.
* ``GET /v1/metrics`` — the worker's :class:`~repro.telemetry.metrics.
  MetricsRegistry` in Prometheus text (default) or the
  ``repro.telemetry/1`` JSON snapshot (``?format=json``), so a fleet's
  workers are scrapeable exactly like a ``repro serve`` instance.

For fleet-wide observability every unit response additionally carries a
``telemetry`` section (worker-monotonic receive/reply anchors, the NTP
inputs for the host's clock-offset estimate) and an ``exec`` section
(the owner's execution window — a dedup join returns the *original*
window, so the merged timeline shows one span per computation), and the
worker's access log carries the ``(sweep, index, attempt)`` correlation
fields the same way serve's access log carries ``job_id``.

Errors keep the uniform taxonomy: a malformed body is HTTP 400
(exit code 2), a simulation failure inside ``/v1/jobs`` is HTTP 500
(exit code 3).  A unit whose simulation raises is *not* an HTTP error —
the error ships as data in the response, exactly like the process-pool
path's :class:`~repro.fleet.executor._WorkerResult`.
"""

from __future__ import annotations

import http.client
import json
import logging
import os
import signal
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    EXIT_BAD_REQUEST,
    EXIT_SIMULATION_RAISED,
    ExperimentError,
    exit_code_for,
)
from repro.fleet import executor as _executor
from repro.fleet.executor import SweepUnit
from repro.serve.transport import Transport
from repro.telemetry.log import get_logger, log_event
from repro.telemetry.metrics import MetricsRegistry, default_registry

_log = get_logger("fleet.worker")


class WorkerError(ExperimentError):
    """A dispatch attempt that did not produce a unit result.

    ``timed_out`` distinguishes a blown deadline (the unit may still be
    running on the worker — the dedup ledger makes a re-dispatch safe)
    from a transport failure; ``exit_code`` carries the taxonomy code of
    a structured error body when the worker returned one.  ``status`` is
    the HTTP status when there was one (503 = the worker is draining or
    shedding — requeue elsewhere, honoring ``retry_after``); ``corrupt``
    marks a response that arrived but failed integrity verification
    (undecodable, truncated, or checksum/unit_key mismatch) — never
    merged, always recomputed.
    """

    def __init__(self, message: str, timed_out: bool = False,
                 exit_code: Optional[int] = None,
                 status: Optional[int] = None,
                 retry_after: Optional[float] = None,
                 corrupt: bool = False) -> None:
        super().__init__(message)
        self.timed_out = timed_out
        self.exit_code = exit_code
        self.status = status
        self.retry_after = retry_after
        self.corrupt = corrupt


def response_checksum(doc: Dict[str, Any]) -> str:
    """Content address of a unit response's result-bearing fields.

    Covers exactly the fields the host merges into sweep results
    (``index``, ``metrics``, ``error``, ``trace``, ``pid``) — the worker
    stamps it on every response, the host recomputes it on arrival, and
    a mismatch is a transport failure, never a silent corruption.  The
    per-request ``telemetry``/``exec`` anchors are deliberately outside
    the checksum: they are observability, re-stamped per exchange, and
    corrupting them cannot change any merged byte.
    """
    from repro.util.canon import content_key

    return content_key({
        "index": doc.get("index"),
        "metrics": doc.get("metrics"),
        "error": doc.get("error"),
        "trace": doc.get("trace"),
        "pid": doc.get("pid"),
    })


# ---------------------------------------------------------------------- #
# server
# ---------------------------------------------------------------------- #
class _LedgerEntry:
    """One (sweep, index) computation: an event plus its response doc."""

    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[Dict[str, Any]] = None


class _QuietHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client disconnects as data.

    A client that goes away mid-response (killed host, chaos proxy
    refusing the connection) raises BrokenPipeError/ConnectionResetError
    out of the handler; the stock ``handle_error`` prints a traceback per
    occurrence, which under churn floods the log with non-errors.  Count
    them instead (``disconnect_hook``) and stay quiet; anything else
    still reports normally.
    """

    daemon_threads = True
    disconnect_hook: Optional[Any] = None

    def handle_error(self, request, client_address):  # noqa: D102
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            if self.disconnect_hook is not None:
                self.disconnect_hook()
            return
        super().handle_error(request, client_address)


class WorkerServer:
    """A unit-executor HTTP server (thread-per-request, port 0 = free)."""

    #: Sweeps retained in the dedup ledger.  A long-lived worker sees an
    #: unbounded stream of sweeps but only the most recent few can still
    #: produce late duplicate dispatches; older *fully-completed* sweeps
    #: are evicted LRU (a sweep with an in-flight computation is never
    #: evicted — a join may still be waiting on its event).
    MAX_LEDGER_SWEEPS = 4

    def __init__(self, host: str = "127.0.0.1", port: int = 8764,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._ledger: "OrderedDict[str, Dict[int, _LedgerEntry]]" = \
            OrderedDict()
        self.units_executed = 0
        self.duplicates_joined = 0
        self._draining = False
        self._inflight = 0
        self._drained = threading.Event()
        self.registry = registry if registry is not None \
            else default_registry()
        self._units_total = self.registry.counter(
            "repro_worker_units_executed_total",
            "Sweep units this worker executed (owner computations only).")
        self._joins_total = self.registry.counter(
            "repro_worker_duplicates_joined_total",
            "Re-dispatched units that joined an in-progress computation.")
        self._unit_seconds = self.registry.histogram(
            "repro_worker_unit_seconds",
            "Wall-clock seconds per owner unit execution.")
        self._evictions_total = self.registry.counter(
            "repro_worker_ledger_evicted_sweeps_total",
            "Completed sweeps evicted from the dedup ledger (LRU bound).")
        self._ledger_entries = self.registry.gauge(
            "repro_worker_ledger_entries",
            "Unit computations currently held in the dedup ledger.")
        self._drain_refusals = self.registry.counter(
            "repro_worker_drain_refusals_total",
            "Unit dispatches refused with 503 while draining.")
        self._disconnects = self.registry.counter(
            "repro_client_disconnects_total",
            "HTTP clients that disconnected mid-response (suppressed, "
            "not errors).")
        handler = _make_handler(self)
        self._httpd = _QuietHTTPServer((host, port), handler)
        self._httpd.disconnect_hook = self.note_disconnect
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="fleet-worker-http",
                                        daemon=True)
        self._thread.start()
        log_event(_log, logging.INFO, "worker_started", url=self.url,
                  pid=os.getpid())

    def join(self) -> None:
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- graceful drain (the SIGTERM protocol) -------------------------- #
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_unit(self) -> bool:
        """Admit one unit dispatch; False once draining (send 503)."""
        with self._lock:
            if self._draining:
                self._drain_refusals.inc()
                return False
            self._inflight += 1
            return True

    def end_unit(self) -> None:
        with self._lock:
            self._inflight -= 1
            if self._draining and self._inflight == 0:
                self._drained.set()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: finish in-flight units, refuse new ones.

        The SIGTERM protocol: new ``POST /v1/units`` get 503 +
        ``Retry-After`` (the host requeues them on another worker),
        in-flight units run to completion and their responses are
        delivered, then the server stops.  Idempotent.
        """
        with self._lock:
            already = self._draining
            self._draining = True
            inflight = self._inflight
            if inflight == 0:
                self._drained.set()
        if already:
            return
        log_event(_log, logging.INFO, "worker_draining", url=self.url,
                  inflight=inflight)
        self._drained.wait(timeout)
        self.stop()
        log_event(_log, logging.INFO, "worker_drained", url=self.url)

    def note_disconnect(self) -> None:
        self._disconnects.inc()

    # -- the dedup ledger (bounded) ------------------------------------- #
    def _evict_ledger_locked(self) -> None:
        while len(self._ledger) > self.MAX_LEDGER_SWEEPS:
            oldest = next(iter(self._ledger))
            entries = self._ledger[oldest]
            if any(not e.event.is_set() for e in entries.values()):
                break  # a join may still be blocked on this computation
            del self._ledger[oldest]
            self._evictions_total.inc()
            log_event(_log, logging.INFO, "ledger_sweep_evicted",
                      sweep=oldest, units=len(entries))

    def _ledger_size_locked(self) -> int:
        return sum(len(m) for m in self._ledger.values())

    # -- endpoint logic (called from handler threads) ------------------- #
    def run_unit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        t_recv = time.monotonic()
        try:
            sweep = str(body["sweep"])
            seq = int(body["seq"])
            index = int(body["index"])
            attempt = int(body.get("attempt", 0) or 0)
            unit_doc = body["unit"]
            unit = SweepUnit(
                app=str(unit_doc["app"]), machine=str(unit_doc["machine"]),
                level=str(unit_doc["level"]), procs=int(unit_doc["procs"]),
                scale=str(unit_doc.get("scale", "paper")))
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed unit request: {exc}") from exc
        if unit_doc.get("options") is not None:
            raise ExperimentError(
                "workers cannot reconstruct explicit RuntimeOptions; "
                "ship units without options (the level determines them)")
        claimed = body.get("unit_key")
        if claimed is not None and claimed != unit.unit_key():
            raise ExperimentError(
                f"unit_key mismatch for unit {index}: the unit document "
                "was corrupted in transit")
        with self._lock:
            sweep_map = self._ledger.get(sweep)
            if sweep_map is None:
                sweep_map = self._ledger[sweep] = {}
                self._evict_ledger_locked()
            else:
                self._ledger.move_to_end(sweep)
            entry = sweep_map.get(index)
            owner = entry is None
            if owner:
                entry = sweep_map[index] = _LedgerEntry()
            else:
                self.duplicates_joined += 1
            self._ledger_entries.set(self._ledger_size_locked())
        if not owner:
            # ARQ dedup: this is a retransmission — join the original
            # computation and return its (identical) response.  The
            # telemetry anchors are per *request* (this exchange's clock
            # sample), while the cached exec window stays the owner's.
            self._joins_total.inc()
            log_event(_log, logging.INFO, "unit_joined", sweep=sweep,
                      index=index, seq=seq, attempt=attempt)
            entry.event.wait()
            return self._stamped(entry.response, t_recv)
        t0 = time.monotonic()
        result = _executor._run_unit((index, unit))
        t1 = time.monotonic()
        response = {
            "index": index,
            "seq": seq,
            "pid": result.pid,
            "metrics": result.metrics.to_json() if result.metrics else None,
            "error": result.error,
            "trace": result.trace,
            "exec": {"t0": t0, "t1": t1, "seconds": t1 - t0},
            # Integrity envelope: the host rejects any response whose
            # unit_key echo or result checksum does not verify.
            "unit_key": unit.unit_key(),
        }
        response["checksum"] = response_checksum(response)
        with self._lock:
            entry.response = response
            self.units_executed += 1
        self._units_total.inc()
        self._unit_seconds.observe(t1 - t0)
        entry.event.set()
        log_event(_log, logging.INFO, "unit_executed", sweep=sweep,
                  index=index, seq=seq, attempt=attempt,
                  ok=result.error is None)
        return self._stamped(response, t_recv)

    @staticmethod
    def _stamped(response: Dict[str, Any], t_recv: float) -> Dict[str, Any]:
        out = dict(response)
        out["telemetry"] = {"t_recv": t_recv, "t_reply": time.monotonic()}
        return out

    def run_job(self, body: Dict[str, Any]) -> str:
        from repro.serve import api
        from repro.serve.requests import request_from_json

        request = request_from_json(body)
        return api.submit(request).text

    def health_doc(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "status": "draining" if self._draining else "ok",
                "kind": "worker",
                "pid": os.getpid(),
                "units_executed": self.units_executed,
                "duplicates_joined": self.duplicates_joined,
                "inflight": self._inflight,
                "ledger_entries": self._ledger_size_locked(),
            }


def _make_handler(server: WorkerServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
            pass

        def _send(self, status: int, text: str,
                  content_type: str = "application/json",
                  retry_after: Optional[str] = None) -> None:
            payload = text.encode("utf-8")
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                if retry_after is not None:
                    self.send_header("Retry-After", retry_after)
                self.end_headers()
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-response: count it, stay quiet
                # (the computation already happened and is in the dedup
                # ledger — a re-dispatch joins it for free).
                server.note_disconnect()
                self.close_connection = True
                return
            self._access_log(status)

        def _access_log(self, status: int) -> None:
            # One access line per request; unit requests carry the
            # (sweep, index, attempt) correlation fields the way serve's
            # access log carries job_id (log_event drops None fields).
            body = getattr(self, "_request_body", None) or {}
            log_event(_log, logging.INFO, "http_request",
                      method=self.command, path=self.path, status=status,
                      sweep=body.get("sweep"), index=body.get("index"),
                      attempt=body.get("attempt"))

        def _send_error(self, exc: BaseException) -> None:
            code = exit_code_for(exc)
            status = 400 if code == EXIT_BAD_REQUEST else 500
            self._send(status, json.dumps({
                "error": str(exc), "type": type(exc).__name__,
                "exit_code": code}))

        def _body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            try:
                doc = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ExperimentError(f"request body is not JSON: {exc}") \
                    from exc
            if not isinstance(doc, dict):
                raise ExperimentError("request body must be a JSON object")
            self._request_body = doc
            return doc

        def do_GET(self):  # noqa: N802 - http.server API
            self._request_body = None  # keep-alive: don't log stale fields
            if self.path == "/v1/health":
                self._send(200, json.dumps(server.health_doc()))
                return
            if self.path in ("/v1/metrics", "/v1/metrics?format=json"):
                if self.path.endswith("format=json"):
                    self._send(200, server.registry.snapshot_text())
                else:
                    self._send(200, server.registry.render_prometheus(),
                               content_type="text/plain; version=0.0.4")
                return
            self._send(404, json.dumps({
                "error": f"no such endpoint: {self.path}",
                "type": "ExperimentError",
                "exit_code": EXIT_BAD_REQUEST}))

        def do_POST(self):  # noqa: N802 - http.server API
            self._request_body = None  # keep-alive: don't log stale fields
            try:
                if self.path == "/v1/units":
                    if not server.begin_unit():
                        self._send(503, json.dumps({
                            "error": "worker is draining: finishing "
                                     "in-flight units, accepting no new "
                                     "dispatches",
                            "type": "WorkerDraining",
                            "exit_code": None}), retry_after="1")
                        return
                    try:
                        self._send(200,
                                   json.dumps(server.run_unit(self._body())))
                    finally:
                        server.end_unit()
                elif self.path == "/v1/jobs":
                    self._send(200, server.run_job(self._body()))
                else:
                    self._send(404, json.dumps({
                        "error": f"no such endpoint: {self.path}",
                        "type": "ExperimentError",
                        "exit_code": EXIT_BAD_REQUEST}))
            except BaseException as exc:  # noqa: BLE001 - wire boundary
                self._send_error(exc)

    return Handler


# ---------------------------------------------------------------------- #
# client
# ---------------------------------------------------------------------- #
class WorkerClient:
    """Blocking urllib client for one worker (dispatcher + tests)."""

    def __init__(self, base_url: str, timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> str:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        url = self.base_url + path
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            exit_code = None
            try:
                exit_code = json.loads(detail).get("exit_code")
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            retry_after = None
            raw_retry = exc.headers.get("Retry-After") \
                if exc.headers is not None else None
            if raw_retry is not None:
                try:
                    retry_after = float(raw_retry)
                except ValueError:
                    pass
            raise WorkerError(
                f"worker {url} returned HTTP {exc.code}: {detail}",
                exit_code=exit_code, status=exc.code,
                retry_after=retry_after) from exc
        except urllib.error.URLError as exc:
            timed_out = isinstance(exc.reason, (socket.timeout, TimeoutError))
            raise WorkerError(
                f"worker {url} unreachable: {exc.reason}",
                timed_out=timed_out) from exc
        except (socket.timeout, TimeoutError) as exc:
            raise WorkerError(f"worker {url} timed out: {exc}",
                              timed_out=True) from exc
        except http.client.HTTPException as exc:
            # Truncated or garbled response stream (IncompleteRead, a
            # mangled status line): the response cannot be trusted.
            raise WorkerError(
                f"worker {url} sent a malformed response: "
                f"{type(exc).__name__}: {exc}", corrupt=True) from exc
        except (ConnectionError, OSError) as exc:
            raise WorkerError(f"worker {url} failed: {exc}") from exc

    def run_unit(self, sweep: str, seq: int, index: int,
                 unit: SweepUnit, attempt: int = 0) -> Dict[str, Any]:
        """Dispatch one unit; returns the worker's result document."""
        text = self._request("POST", "/v1/units", {
            "sweep": sweep, "seq": seq, "index": index, "attempt": attempt,
            "unit": unit.to_json(), "unit_key": unit.unit_key()})
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise WorkerError(
                f"worker {self.base_url} returned an undecodable unit "
                f"response: {exc}", corrupt=True) from exc
        if not isinstance(doc, dict):
            raise WorkerError(
                f"worker {self.base_url} returned a non-object unit "
                "response", corrupt=True)
        return doc

    def metrics_text(self) -> str:
        """The worker's Prometheus exposition (``GET /v1/metrics``)."""
        return self._request("GET", "/v1/metrics")

    def metrics_json(self) -> Dict[str, Any]:
        """The worker's ``repro.telemetry/1`` snapshot."""
        return json.loads(self._request("GET", "/v1/metrics?format=json"))

    def submit_job(self, request_doc: Dict[str, Any]) -> str:
        """Execute a serve request synchronously; returns the exact text."""
        return self._request("POST", "/v1/jobs", request_doc)

    def health(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/v1/health"))


# ---------------------------------------------------------------------- #
# Transport adapter (serve registry name: "worker")
# ---------------------------------------------------------------------- #
class FleetWorkerTransport(Transport):
    """A worker as a (synchronous) serve Transport.

    ``submit`` executes the request on the worker before returning, so
    every job document is already terminal; there is no queue and no
    cache — the worker recomputes every request (``cache: "miss"``).
    Useful where a full ``repro serve`` is overkill but remote execution
    over the one wire format is wanted.
    """

    kind = "worker"

    def __init__(self, base_url: str,
                 request_timeout: float = 300.0) -> None:
        self._client = WorkerClient(base_url, timeout=request_timeout)
        self._jobs: Dict[str, Tuple[Dict[str, Any], Optional[str]]] = {}
        self._counter = 0
        self._lock = threading.Lock()

    def _job_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"wk-{self._counter:06d}"

    def submit(self, request) -> Dict[str, Any]:
        job_id = self._job_id()
        doc: Dict[str, Any] = {
            "id": job_id, "kind": request.kind, "state": "done",
            "cache_key": request.cache_key(), "cache": "miss",
            "error": None,
        }
        text: Optional[str] = None
        try:
            text = self._client.submit_job(request.to_json())
        except WorkerError as exc:
            doc["state"] = "failed"
            doc["cache"] = None
            doc["error"] = {
                "message": str(exc),
                "exit_code": exc.exit_code
                if exc.exit_code is not None else EXIT_SIMULATION_RAISED,
            }
        with self._lock:
            self._jobs[job_id] = (doc, text)
        return dict(doc)

    def _entry(self, job_id: str) -> Tuple[Dict[str, Any], Optional[str]]:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ExperimentError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        return dict(self._entry(job_id)[0])

    def result_text(self, job_id: str) -> str:
        doc, text = self._entry(job_id)
        if text is None:
            raise ExperimentError(
                f"job {job_id} did not produce a result "
                f"(state {doc['state']})")
        return text

    def health(self) -> Dict[str, Any]:
        return self._client.health()

    def describe(self) -> Dict[str, Any]:
        from repro.serve.api import describe_catalog

        return describe_catalog()


# ---------------------------------------------------------------------- #
# CLI: ``repro worker``
# ---------------------------------------------------------------------- #
def add_worker_parser(sub) -> None:
    """Register the ``worker`` subcommand on an argparse subparsers object."""
    from repro.telemetry.log import add_logging_args

    p = sub.add_parser(
        "worker",
        help="run a fleet unit-executor (remote sweep worker)",
        description="Serve POST /v1/units (deduplicated sweep-unit "
                    "execution for `repro sweep --backend remote`), "
                    "POST /v1/jobs (synchronous serve requests), "
                    "GET /v1/health and GET /v1/metrics over HTTP.",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8764,
                   help="bind port; 0 picks a free port (default 8764)")
    add_logging_args(p)
    p.set_defaults(func=cmd_worker)


def cmd_worker(args) -> int:
    from repro.telemetry.log import configure_from_args

    configure_from_args(args, default_level="info")
    try:
        server = WorkerServer(host=args.host, port=args.port)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_REQUEST
    server.start_background()
    print(f"repro worker listening on {server.url}", flush=True)
    if hasattr(signal, "SIGTERM"):
        def _on_sigterm(signum, frame):
            # Signal context: hand the blocking drain to a thread.  New
            # dispatches get 503 + Retry-After immediately; in-flight
            # units finish and deliver before the server stops.
            print("draining: finishing in-flight units, refusing new "
                  "dispatches", file=sys.stderr, flush=True)
            threading.Thread(target=server.drain, name="worker-drain",
                             daemon=True).start()
        try:
            signal.signal(signal.SIGTERM, _on_sigterm)
        except ValueError:  # pragma: no cover - not the main thread
            pass
    try:
        server.join()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
        server.stop()
    return 0
