"""Parallel sweep execution across host processes.

The paper's methodology (§5) runs the same application under every on/off
combination of the optimizations — in this repo, large configuration
sweeps over :mod:`repro.lab.experiments`.  Each configuration is an
independent, deterministic simulation, which makes a sweep embarrassingly
parallel *across host processes*: ``repro.fleet`` fans the configurations
out over a :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
results back in configuration order.

Determinism contract
--------------------

The parallel path must be *byte-identical* to the serial path, because the
reproduction's whole methodology rests on comparing configurations against
each other:

* **Canonical unit order.**  :func:`sweep_units` enumerates a locality
  sweep in exactly the order :func:`repro.lab.experiments.locality_sweep`
  executes it (levels outer, processor counts inner); results merge back
  by unit index, never by completion order.
* **One snapshot builder.**  :func:`sweep_snapshot_doc` constructs the
  ``repro.sweep/1`` document for both paths, so equality of the metrics
  implies equality of the bytes.
* **Per-run determinism.**  Each simulation orders events by
  ``(time, seq)`` and seeds its RNG substreams from the options, so a
  worker process produces the same :class:`RunMetrics` the parent would.
  (``final_store`` — raw simulation state, excluded from every snapshot —
  is stripped before crossing the process boundary.)

Failure contract: a worker that raises reports the failing configuration
and the original traceback through a single :class:`ExperimentError`; a
worker that dies outright (killed, segfault) surfaces as an
:class:`ExperimentError` naming the broken pool rather than a hang.
:func:`run_units_resilient` hardens the same fan-out for long unattended
sweeps: a per-unit wall-clock timeout (a hung worker is killed, not
waited on forever), a bounded budget of pool restarts after workers die
outright (the simulations are pure functions, so re-running a unit is
always safe), and a ``partial`` degraded mode that records failed units
as typed :class:`UnitFailure` entries and returns everything that did
complete instead of discarding an entire overnight sweep for one bad
configuration.

Execution itself is pluggable: :func:`run_units_resilient` hands the
unit list to a :class:`repro.fleet.backends.FleetBackend` — the default
:class:`~repro.fleet.backends.ProcessPoolBackend` (this host's process
pool, the original semantics byte-for-byte), the
:class:`~repro.fleet.backends.RemoteBackend` (units dispatched over HTTP
to ``repro worker`` hosts with sequence numbers, dedup and re-dispatch),
and the :class:`~repro.fleet.backends.CheckpointBackend` wrapper
(per-unit journal on disk via :mod:`repro.fleet.checkpoint`, so a killed
sweep resumes by skipping journaled units).  All of them feed results
through the same :class:`_Progress` accounting hub, so the telemetry
counters reconcile identically regardless of where units ran.
"""

from __future__ import annotations

import logging
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.lab.experiments import ExperimentRow, levels_for, run_app
from repro.runtime import RunMetrics, RuntimeOptions
from repro.runtime.options import LocalityLevel
from repro.telemetry.log import get_logger, log_event
from repro.telemetry.metrics import MetricsRegistry, default_registry

_log = get_logger("fleet")


@dataclass(frozen=True)
class SweepUnit:
    """One sweep configuration: picklable, ordered, self-describing.

    ``machine`` and ``level`` are the enum *values* (plain strings) so a
    unit pickles compactly and its repr reads like the CLI invocation that
    would reproduce it.
    """

    app: str
    machine: str
    level: str
    procs: int
    scale: str = "paper"
    options: Optional[RuntimeOptions] = None

    def describe(self) -> str:
        return (f"{self.app} on {self.machine} at {self.level}, "
                f"{self.procs} processors ({self.scale} scale)")

    def to_json(self) -> Dict[str, Any]:
        """The unit as a wire/journal document.

        ``options`` serializes as its stable one-line description — enough
        to make two units with different explicit options hash differently
        (checkpoint journals key on this), though only units *without*
        explicit options can be shipped to a remote worker (the worker
        reconstructs options from the level, exactly like ``run_app``).
        """
        return {
            "app": self.app,
            "machine": self.machine,
            "level": self.level,
            "procs": self.procs,
            "scale": self.scale,
            "options": self.options.describe() if self.options else None,
        }

    def unit_key(self) -> str:
        """Content address of this unit (journal/dedup identity)."""
        from repro.util.canon import content_key

        return content_key(self.to_json())


def default_jobs() -> int:
    """Worker count: the number of CPUs this process may actually use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


def sweep_units(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    options: Optional[RuntimeOptions] = None,
) -> List[SweepUnit]:
    """The canonical configuration order of a locality sweep.

    Levels outer, processor counts inner — the exact execution order of
    :func:`repro.lab.experiments.locality_sweep`, so a merge by unit index
    reproduces the serial row order.
    """
    return [
        SweepUnit(app, machine.value, level.value, p, scale, options)
        for level in levels_for(app)
        for p in procs
    ]


@dataclass
class _WorkerResult:
    """What crosses back over the process boundary for one unit."""

    index: int
    metrics: Optional[RunMetrics] = None
    error: Optional[str] = None
    trace: Optional[str] = None
    #: Worker process that ran the unit (per-worker progress accounting).
    pid: int = 0
    #: Wall-clock seconds the unit's execution took (latency histogram);
    #: 0.0 for journal recoveries, which ran in some earlier process.
    seconds: float = 0.0


def _run_unit(indexed: Any) -> _WorkerResult:
    """Execute one configuration (module-level, so it pickles by name).

    Exceptions are caught and shipped home as data: raising inside a pool
    worker would lose the traceback formatting and, for submit/map-style
    consumption, report failures in completion order rather than against
    the configuration that caused them.
    """
    index, unit = indexed
    t0 = time.monotonic()
    try:
        metrics = run_app(
            unit.app, unit.procs, MachineKind(unit.machine),
            LocalityLevel(unit.level), unit.options, unit.scale,
        )
        # Raw simulation state: excluded from every snapshot, and the only
        # RunMetrics field whose pickled size scales with the data set.
        metrics.final_store = None
        return _WorkerResult(index, metrics=metrics, pid=os.getpid(),
                             seconds=time.monotonic() - t0)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        return _WorkerResult(index, error=f"{type(exc).__name__}: {exc}",
                             trace=traceback.format_exc(), pid=os.getpid(),
                             seconds=time.monotonic() - t0)


@dataclass(frozen=True)
class UnitFailure:
    """One sweep unit that did not produce metrics, and why.

    ``reason`` is one of ``"error"`` (the simulation raised — a
    deterministic failure, never retried), ``"timeout"`` (the worker
    exceeded the per-unit wall-clock budget and was killed), ``"pool"``
    (the worker pool died and the restart budget was exhausted before the
    unit could be re-run) or ``"remote"`` (every remote worker became
    unreachable before the unit's dispatch budget ran out).
    """

    index: int
    unit: str
    reason: str
    detail: str = ""

    def describe(self) -> str:
        line = f"[{self.reason}] unit {self.index}: {self.unit}"
        if self.detail:
            line += f" — {self.detail.splitlines()[0]}"
        return line


@dataclass
class SweepOutcome:
    """What a resilient sweep produced: per-unit metrics plus failures.

    ``metrics`` is in unit order with ``None`` in failed slots; a sweep
    with an empty ``failures`` list is exactly equivalent to a
    :func:`run_units` result.
    """

    metrics: List[Optional[RunMetrics]]
    failures: List["UnitFailure"] = field(default_factory=list)
    #: Fresh pools built after a worker died outright (BrokenProcessPool).
    pool_restarts: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return sum(m is not None for m in self.metrics)


def _fleet_instruments(registry: Optional[MetricsRegistry]) -> Dict[str, Any]:
    """The fleet's counters on ``registry`` (default: process-wide).

    Accounting identity (asserted by the fleet tests): every dispatch
    resolves as exactly one of completed, failed, timed-out or retried
    (requeued for re-dispatch), so

        dispatched == completed + failed + timed_out + retried

    where ``failed`` counts both units whose simulation raised and units
    abandoned outright (pool restart budget exhausted, every remote
    worker unreachable) — always reported as typed ``UnitFailure``
    entries, never silently.  ``resumed`` units come from a checkpoint
    journal and are deliberately *outside* the identity — they were
    never dispatched in this process.
    """
    registry = registry if registry is not None else default_registry()
    return {
        "dispatched": registry.counter(
            "repro_fleet_units_dispatched_total",
            "Sweep units handed to workers (requeued units re-count)"),
        "completed": registry.counter(
            "repro_fleet_units_completed_total",
            "Sweep units that produced metrics"),
        "failed": registry.counter(
            "repro_fleet_units_failed_total",
            "Sweep units that failed (simulation raised, or a remote "
            "dispatch was abandoned)"),
        "timed_out": registry.counter(
            "repro_fleet_units_timed_out_total",
            "Sweep units killed by the per-unit wall-clock budget"),
        "retried": registry.counter(
            "repro_fleet_units_retried_total",
            "Sweep units requeued for re-dispatch (fresh pool or another "
            "remote worker)"),
        "resumed": registry.counter(
            "repro_fleet_units_resumed_total",
            "Sweep units recovered from a checkpoint journal instead of "
            "re-running"),
        "pool_restarts": registry.counter(
            "repro_fleet_pool_restarts_total",
            "Fresh pools built after a worker died outright"),
        "backend_dispatch": registry.counter(
            "repro_fleet_backend_dispatch_total",
            "Unit dispatch attempts, by fleet backend",
            labels=("backend",)),
        "backend_requeue": registry.counter(
            "repro_fleet_backend_requeue_total",
            "Units requeued after a lost/failed dispatch, by fleet backend",
            labels=("backend",)),
        "backend_steal": registry.counter(
            "repro_fleet_backend_steal_total",
            "Requeued units picked up by a different worker than their "
            "previous attempt, by fleet backend",
            labels=("backend",)),
        "corrupt": registry.counter(
            "repro_fleet_corrupt_responses_total",
            "Worker responses rejected by integrity verification "
            "(checksum or unit_key mismatch, truncated/unparseable body) "
            "and requeued — corrupt bytes are never merged"),
        "quarantined": registry.counter(
            "repro_fleet_checkpoint_quarantined_total",
            "Checkpoint journal entries quarantined on resume "
            "(torn/truncated/bad-checksum files; the unit recomputes)"),
        "breaker_transitions": registry.counter(
            "repro_fleet_breaker_transitions_total",
            "Per-worker circuit breaker state transitions, by new state",
            labels=("state",)),
        "drained": registry.counter(
            "repro_fleet_drained_dispatches_total",
            "Dispatches refused by a draining worker (503 + Retry-After; "
            "the unit requeues elsewhere)"),
        "probes": registry.counter(
            "repro_fleet_health_probes_total",
            "Half-open breaker health probes, by outcome (ok readmits the "
            "worker, failed deepens the backoff)",
            labels=("outcome",)),
        "unit_seconds": registry.histogram(
            "repro_fleet_unit_seconds",
            "Wall-clock seconds per recorded sweep unit, by fleet backend "
            "(one observation per completed or error unit; timed-out, "
            "lost and journal-resumed units are not observed)",
            labels=("backend",)),
    }


class _Progress:
    """Throttled sweep heartbeats: completed/total, ETA, per-worker counts.

    Emits a ``sweep_progress`` JSONL-able log event at most once per
    ``interval`` seconds (0 emits on every completion — tests), plus one
    final ``sweep_complete`` event.  Logging only: never touches unit
    results, so the byte-identical parallel-vs-serial contract holds with
    heartbeats enabled.
    """

    def __init__(self, total: int, interval: float,
                 instruments: Dict[str, Any]) -> None:
        self.total = total
        self.interval = interval
        self.completed = 0
        self.failed = 0
        self.resumed_count = 0
        self.per_worker: Dict[int, int] = {}
        self.instruments = instruments
        #: Optional per-result hook (checkpoint journaling).  Invoked for
        #: every *successful* result as it is recorded, so a sweep killed
        #: mid-run has journaled exactly the units that completed.
        self.sink: Optional[Callable[[_WorkerResult], None]] = None
        #: Which backend last dispatched — labels the latency histogram
        #: (set on every dispatch, so the checkpoint wrapper's inner
        #: backend labels its own results).
        self.backend = "process"
        self._t0 = time.monotonic()
        self._last = self._t0

    def _worker_doc(self) -> Dict[str, int]:
        return {str(pid): count
                for pid, count in sorted(self.per_worker.items())}

    # Dispatch-side accounting (called by the backends) ----------------- #
    def dispatch(self, count: int, backend: str) -> None:
        self.backend = backend
        self.instruments["dispatched"].inc(count)
        self.instruments["backend_dispatch"].inc(count, backend=backend)

    def requeue(self, count: int, backend: str) -> None:
        self.instruments["retried"].inc(count)
        self.instruments["backend_requeue"].inc(count, backend=backend)

    def steal(self, count: int, backend: str) -> None:
        self.instruments["backend_steal"].inc(count, backend=backend)

    # Self-healing accounting (remote backend + checkpoint recovery) ---- #
    def corrupt(self) -> None:
        """One worker response failed integrity verification (requeued)."""
        self.instruments["corrupt"].inc()

    def quarantined(self) -> None:
        """One corrupt checkpoint entry quarantined (unit recomputes)."""
        self.instruments["quarantined"].inc()

    def breaker(self, state: str) -> None:
        """One circuit-breaker state transition."""
        self.instruments["breaker_transitions"].inc(state=state)

    def drained_dispatch(self) -> None:
        """One dispatch refused by a draining worker (503, requeued)."""
        self.instruments["drained"].inc()

    def probe(self, outcome: str) -> None:
        """One half-open health probe resolved (``ok`` or ``failed``)."""
        self.instruments["probes"].inc(outcome=outcome)

    # Result-side accounting -------------------------------------------- #
    def record(self, result: _WorkerResult) -> None:
        self.instruments["unit_seconds"].observe(result.seconds,
                                                 backend=self.backend)
        if result.error is None:
            self.completed += 1
            self.instruments["completed"].inc()
            if self.sink is not None:
                self.sink(result)
        else:
            self.failed += 1
            self.instruments["failed"].inc()
        if result.pid:
            self.per_worker[result.pid] = \
                self.per_worker.get(result.pid, 0) + 1
        self._maybe_emit()

    def resumed(self, result: _WorkerResult) -> None:
        """One unit recovered from a checkpoint journal (not dispatched)."""
        self.completed += 1
        self.resumed_count += 1
        self.instruments["resumed"].inc()
        self._maybe_emit()

    def timed_out(self) -> None:
        self.failed += 1
        self.instruments["timed_out"].inc()
        self._maybe_emit()

    def lost(self) -> None:
        """One unit abandoned (remote dispatch exhausted every worker)."""
        self.failed += 1
        self.instruments["failed"].inc()
        self._maybe_emit()

    def _maybe_emit(self) -> None:
        now = time.monotonic()
        if now - self._last < self.interval:
            return
        self._last = now
        elapsed = now - self._t0
        done = self.completed + self.failed
        eta = (elapsed / done) * (self.total - done) if done else None
        log_event(_log, logging.INFO, "sweep_progress",
                  completed=self.completed, failed=self.failed,
                  total=self.total, resumed=self.resumed_count,
                  elapsed_s=round(elapsed, 3),
                  eta_s=round(eta, 3) if eta is not None else None,
                  per_worker=self._worker_doc())

    def complete(self, outcome: "SweepOutcome") -> None:
        log_event(_log, logging.INFO, "sweep_complete",
                  completed=outcome.completed,
                  failed=len(outcome.failures), total=self.total,
                  resumed=self.resumed_count,
                  elapsed_s=round(time.monotonic() - self._t0, 3),
                  pool_restarts=outcome.pool_restarts,
                  per_worker=self._worker_doc())


def run_units_resilient(
    units: Sequence[SweepUnit],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    partial: bool = False,
    registry: Optional[MetricsRegistry] = None,
    progress_interval: float = 30.0,
    backend: Optional[Any] = None,
    checkpoint: Optional[Any] = None,
) -> SweepOutcome:
    """Execute every unit with timeout/retry/partial hardening.

    * ``timeout`` — per-unit wall-clock budget in seconds, measured while
      waiting on that unit in submission order (a unit that ran
      concurrently with its predecessors gets at least this much beyond
      the previous unit's completion).  A unit that exceeds it has its
      worker killed; with ``partial`` it is recorded as a failure and the
      sweep continues on a fresh pool, otherwise the sweep aborts.  Not
      enforceable on the in-process ``jobs=1`` path (nothing can preempt
      the simulation there) — that path logs a ``timeout_unenforced``
      WARNING instead of silently ignoring the budget.
    * ``retries`` — how many times a *pool death* (worker killed outright:
      segfault, OOM kill) may be answered with a fresh pool re-running the
      lost units.  Units are pure deterministic functions, so re-running
      is always safe; a unit that *raises* is never retried — the same
      configuration would raise again.  On the remote backend the same
      budget extends each unit's dispatch-attempt allowance.
    * ``partial`` — degraded mode: failed units become typed
      :class:`UnitFailure` entries and every completed unit's metrics are
      still returned, instead of one failure discarding the whole sweep.
    * ``progress_interval`` — minimum seconds between ``sweep_progress``
      heartbeat log events (completed/total, ETA, per-worker unit
      counts); a final ``sweep_complete`` event always fires.  Logging
      only — heartbeats never touch results.
    * ``backend`` — a :class:`repro.fleet.backends.FleetBackend` (default:
      this host's :class:`ProcessPoolBackend`, the original semantics).
    * ``checkpoint`` — a directory path or
      :class:`repro.fleet.checkpoint.CheckpointJournal`: every completed
      unit's metrics are journaled as canonical JSON, already-journaled
      units are recovered instead of re-run, and the merged output stays
      byte-identical to an uninterrupted serial sweep.
    """
    from repro.fleet.backends import (BackendConfig, CheckpointBackend,
                                      ProcessPoolBackend)

    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if backend is None:
        backend = ProcessPoolBackend()
    if checkpoint is not None:
        backend = CheckpointBackend(backend, checkpoint)
    config = BackendConfig(jobs=jobs, timeout=timeout, retries=retries,
                           partial=partial)
    outcome = SweepOutcome(metrics=[None] * len(units))
    indexed = list(enumerate(units))
    progress = _Progress(len(units), progress_interval,
                         _fleet_instruments(registry))
    results = backend.execute(indexed, config, outcome, progress)
    for result in results:
        if result.error is not None:
            unit = units[result.index]
            if partial:
                outcome.failures.append(UnitFailure(
                    result.index, unit.describe(), "error",
                    f"{result.error}\n{result.trace or ''}"))
                continue
            raise ExperimentError(
                f"sweep worker failed on {unit.describe()}: {result.error}\n"
                f"{result.trace}")
        outcome.metrics[result.index] = result.metrics
    outcome.failures.sort(key=lambda failure: failure.index)
    progress.complete(outcome)
    return outcome


def run_units(
    units: Sequence[SweepUnit],
    jobs: Optional[int] = None,
) -> List[RunMetrics]:
    """Execute every unit, fanning out across processes; results in unit order.

    ``jobs=None`` auto-detects (one worker per available CPU); ``jobs=1``
    runs in-process with no pool — the reference serial path.  Strict
    mode: any failure raises; see :func:`run_units_resilient` for the
    hardened variant.
    """
    outcome = run_units_resilient(units, jobs=jobs, timeout=None, retries=0,
                                  partial=False)
    return outcome.metrics  # type: ignore[return-value] - strict: all filled


def parallel_locality_sweep(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    jobs: Optional[int] = None,
    options: Optional[RuntimeOptions] = None,
) -> List[ExperimentRow]:
    """:func:`repro.lab.experiments.locality_sweep`, fanned out over processes.

    Row order (and every serialized byte of the sweep snapshot) matches the
    serial function; only host wall-clock differs.
    """
    units = sweep_units(app, machine, list(procs), scale, options)
    metrics_list = run_units(units, jobs=jobs)
    return [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, metrics_list)
    ]


def resilient_locality_sweep(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    jobs: Optional[int] = None,
    options: Optional[RuntimeOptions] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    partial: bool = False,
    backend: Optional[Any] = None,
    checkpoint: Optional[Any] = None,
) -> Tuple[List[ExperimentRow], SweepOutcome]:
    """:func:`parallel_locality_sweep` with the hardened executor underneath.

    Returns ``(rows, outcome)``: rows for every unit that completed (in
    canonical unit order — identical to the serial rows when nothing
    failed) plus the :class:`SweepOutcome` recording failures and pool
    restarts.  ``backend``/``checkpoint`` pass straight through to
    :func:`run_units_resilient`.
    """
    units = sweep_units(app, machine, list(procs), scale, options)
    outcome = run_units_resilient(units, jobs=jobs, timeout=timeout,
                                  retries=retries, partial=partial,
                                  backend=backend, checkpoint=checkpoint)
    rows = [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, outcome.metrics)
        if metrics is not None
    ]
    return rows, outcome


def sweep_snapshot_doc(
    app: str,
    machine: str,
    scale: str,
    rows: Sequence[ExperimentRow],
) -> Dict[str, Any]:
    """The ``repro.sweep/1`` document for a sweep's rows.

    Both the serial and the parallel CLI paths build their snapshot here,
    which is what makes "parallel output is byte-identical to serial" a
    structural property instead of a test-time coincidence.
    """
    from repro.obs.schema import SWEEP_SCHEMA

    return {
        "schema": SWEEP_SCHEMA,
        "app": app,
        "machine": machine,
        "scale": scale,
        "rows": [
            {"level": row.level, "procs": row.procs,
             "metrics": row.metrics.to_json()}
            for row in rows
        ],
    }


def fleet_sweep_doc(
    app: str,
    machine: str,
    scale: str,
    rows: Sequence[ExperimentRow],
    fleet: Dict[str, Any],
) -> Dict[str, Any]:
    """The ``repro.sweep/2`` document: a sweep plus its fleet section.

    The rows serialize exactly as :func:`sweep_snapshot_doc` would — only
    the schema tag and the appended ``fleet`` section differ, so the
    simulated results inside a fleet-annotated snapshot remain comparable
    byte-for-byte with a plain ``repro.sweep/1`` of the same sweep.
    ``fleet`` is the :meth:`RemoteBackend.scrape_fleet` document plus a
    ``host`` key holding the dispatching host's own telemetry snapshot.
    """
    from repro.obs.schema import SWEEP_FLEET_SCHEMA

    doc = sweep_snapshot_doc(app, machine, scale, rows)
    doc["schema"] = SWEEP_FLEET_SCHEMA
    doc["fleet"] = fleet
    return doc


def verify_parallel_matches_serial(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "tiny",
    jobs: int = 2,
) -> str:
    """Run one sweep both ways and assert byte-identical snapshots.

    Returns the (shared) serialized snapshot text; raises
    :class:`ExperimentError` on any divergence, with the first differing
    line in the message.  Used by tests and the CI smoke step.
    """
    from repro.lab.experiments import locality_sweep
    from repro.obs.snapshot import dump_json

    serial = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        locality_sweep(app, machine, list(procs), scale)))
    parallel = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        parallel_locality_sweep(app, machine, procs, scale, jobs=jobs)))
    if serial != parallel:
        for serial_line, parallel_line in zip(serial.splitlines(),
                                              parallel.splitlines()):
            if serial_line != parallel_line:
                raise ExperimentError(
                    f"parallel sweep diverged from serial for {app}: "
                    f"{serial_line!r} != {parallel_line!r}")
        raise ExperimentError(
            f"parallel sweep diverged from serial for {app} (length "
            f"{len(serial)} vs {len(parallel)})")
    return serial
