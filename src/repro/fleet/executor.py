"""Parallel sweep execution across host processes.

The paper's methodology (§5) runs the same application under every on/off
combination of the optimizations — in this repo, large configuration
sweeps over :mod:`repro.lab.experiments`.  Each configuration is an
independent, deterministic simulation, which makes a sweep embarrassingly
parallel *across host processes*: ``repro.fleet`` fans the configurations
out over a :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
results back in configuration order.

Determinism contract
--------------------

The parallel path must be *byte-identical* to the serial path, because the
reproduction's whole methodology rests on comparing configurations against
each other:

* **Canonical unit order.**  :func:`sweep_units` enumerates a locality
  sweep in exactly the order :func:`repro.lab.experiments.locality_sweep`
  executes it (levels outer, processor counts inner); results merge back
  by unit index, never by completion order.
* **One snapshot builder.**  :func:`sweep_snapshot_doc` constructs the
  ``repro.sweep/1`` document for both paths, so equality of the metrics
  implies equality of the bytes.
* **Per-run determinism.**  Each simulation orders events by
  ``(time, seq)`` and seeds its RNG substreams from the options, so a
  worker process produces the same :class:`RunMetrics` the parent would.
  (``final_store`` — raw simulation state, excluded from every snapshot —
  is stripped before crossing the process boundary.)

Failure contract: a worker that raises reports the failing configuration
and the original traceback through a single :class:`ExperimentError`; a
worker that dies outright (killed, segfault) surfaces as an
:class:`ExperimentError` naming the broken pool rather than a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.lab.experiments import ExperimentRow, levels_for, run_app
from repro.runtime import RunMetrics, RuntimeOptions
from repro.runtime.options import LocalityLevel


@dataclass(frozen=True)
class SweepUnit:
    """One sweep configuration: picklable, ordered, self-describing.

    ``machine`` and ``level`` are the enum *values* (plain strings) so a
    unit pickles compactly and its repr reads like the CLI invocation that
    would reproduce it.
    """

    app: str
    machine: str
    level: str
    procs: int
    scale: str = "paper"
    options: Optional[RuntimeOptions] = None

    def describe(self) -> str:
        return (f"{self.app} on {self.machine} at {self.level}, "
                f"{self.procs} processors ({self.scale} scale)")


def default_jobs() -> int:
    """Worker count: the number of CPUs this process may actually use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


def sweep_units(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    options: Optional[RuntimeOptions] = None,
) -> List[SweepUnit]:
    """The canonical configuration order of a locality sweep.

    Levels outer, processor counts inner — the exact execution order of
    :func:`repro.lab.experiments.locality_sweep`, so a merge by unit index
    reproduces the serial row order.
    """
    return [
        SweepUnit(app, machine.value, level.value, p, scale, options)
        for level in levels_for(app)
        for p in procs
    ]


@dataclass
class _WorkerResult:
    """What crosses back over the process boundary for one unit."""

    index: int
    metrics: Optional[RunMetrics] = None
    error: Optional[str] = None
    trace: Optional[str] = None


def _run_unit(indexed: Any) -> _WorkerResult:
    """Execute one configuration (module-level, so it pickles by name).

    Exceptions are caught and shipped home as data: raising inside a pool
    worker would lose the traceback formatting and, for submit/map-style
    consumption, report failures in completion order rather than against
    the configuration that caused them.
    """
    index, unit = indexed
    try:
        metrics = run_app(
            unit.app, unit.procs, MachineKind(unit.machine),
            LocalityLevel(unit.level), unit.options, unit.scale,
        )
        # Raw simulation state: excluded from every snapshot, and the only
        # RunMetrics field whose pickled size scales with the data set.
        metrics.final_store = None
        return _WorkerResult(index, metrics=metrics)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        return _WorkerResult(index, error=f"{type(exc).__name__}: {exc}",
                             trace=traceback.format_exc())


def _mp_context():
    """Fork where available (cheap, inherits the warmed interpreter)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_units(
    units: Sequence[SweepUnit],
    jobs: Optional[int] = None,
) -> List[RunMetrics]:
    """Execute every unit, fanning out across processes; results in unit order.

    ``jobs=None`` auto-detects (one worker per available CPU); ``jobs=1``
    runs in-process with no pool — the reference serial path.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    indexed = list(enumerate(units))
    if jobs == 1 or len(units) <= 1:
        results = [_run_unit(pair) for pair in indexed]
    else:
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(units)), mp_context=_mp_context(),
            ) as pool:
                results = list(pool.map(_run_unit, indexed))
        except BrokenProcessPool as exc:
            raise ExperimentError(
                f"sweep worker pool died mid-sweep ({exc}); a worker was "
                "killed or crashed outside Python — rerun with --jobs 1 "
                "to reproduce serially"
            ) from exc

    merged: List[Optional[RunMetrics]] = [None] * len(units)
    for result in results:
        if result.error is not None:
            unit = units[result.index]
            raise ExperimentError(
                f"sweep worker failed on {unit.describe()}: {result.error}\n"
                f"{result.trace}")
        merged[result.index] = result.metrics
    return merged  # type: ignore[return-value] - every slot filled above


def parallel_locality_sweep(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    jobs: Optional[int] = None,
    options: Optional[RuntimeOptions] = None,
) -> List[ExperimentRow]:
    """:func:`repro.lab.experiments.locality_sweep`, fanned out over processes.

    Row order (and every serialized byte of the sweep snapshot) matches the
    serial function; only host wall-clock differs.
    """
    units = sweep_units(app, machine, list(procs), scale, options)
    metrics_list = run_units(units, jobs=jobs)
    return [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, metrics_list)
    ]


def sweep_snapshot_doc(
    app: str,
    machine: str,
    scale: str,
    rows: Sequence[ExperimentRow],
) -> Dict[str, Any]:
    """The ``repro.sweep/1`` document for a sweep's rows.

    Both the serial and the parallel CLI paths build their snapshot here,
    which is what makes "parallel output is byte-identical to serial" a
    structural property instead of a test-time coincidence.
    """
    return {
        "schema": "repro.sweep/1",
        "app": app,
        "machine": machine,
        "scale": scale,
        "rows": [
            {"level": row.level, "procs": row.procs,
             "metrics": row.metrics.to_json()}
            for row in rows
        ],
    }


def verify_parallel_matches_serial(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "tiny",
    jobs: int = 2,
) -> str:
    """Run one sweep both ways and assert byte-identical snapshots.

    Returns the (shared) serialized snapshot text; raises
    :class:`ExperimentError` on any divergence, with the first differing
    line in the message.  Used by tests and the CI smoke step.
    """
    from repro.lab.experiments import locality_sweep
    from repro.obs.snapshot import dump_json

    serial = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        locality_sweep(app, machine, list(procs), scale)))
    parallel = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        parallel_locality_sweep(app, machine, procs, scale, jobs=jobs)))
    if serial != parallel:
        for serial_line, parallel_line in zip(serial.splitlines(),
                                              parallel.splitlines()):
            if serial_line != parallel_line:
                raise ExperimentError(
                    f"parallel sweep diverged from serial for {app}: "
                    f"{serial_line!r} != {parallel_line!r}")
        raise ExperimentError(
            f"parallel sweep diverged from serial for {app} (length "
            f"{len(serial)} vs {len(parallel)})")
    return serial
