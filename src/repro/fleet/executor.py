"""Parallel sweep execution across host processes.

The paper's methodology (§5) runs the same application under every on/off
combination of the optimizations — in this repo, large configuration
sweeps over :mod:`repro.lab.experiments`.  Each configuration is an
independent, deterministic simulation, which makes a sweep embarrassingly
parallel *across host processes*: ``repro.fleet`` fans the configurations
out over a :class:`~concurrent.futures.ProcessPoolExecutor` and merges the
results back in configuration order.

Determinism contract
--------------------

The parallel path must be *byte-identical* to the serial path, because the
reproduction's whole methodology rests on comparing configurations against
each other:

* **Canonical unit order.**  :func:`sweep_units` enumerates a locality
  sweep in exactly the order :func:`repro.lab.experiments.locality_sweep`
  executes it (levels outer, processor counts inner); results merge back
  by unit index, never by completion order.
* **One snapshot builder.**  :func:`sweep_snapshot_doc` constructs the
  ``repro.sweep/1`` document for both paths, so equality of the metrics
  implies equality of the bytes.
* **Per-run determinism.**  Each simulation orders events by
  ``(time, seq)`` and seeds its RNG substreams from the options, so a
  worker process produces the same :class:`RunMetrics` the parent would.
  (``final_store`` — raw simulation state, excluded from every snapshot —
  is stripped before crossing the process boundary.)

Failure contract: a worker that raises reports the failing configuration
and the original traceback through a single :class:`ExperimentError`; a
worker that dies outright (killed, segfault) surfaces as an
:class:`ExperimentError` naming the broken pool rather than a hang.
:func:`run_units_resilient` hardens the same fan-out for long unattended
sweeps: a per-unit wall-clock timeout (a hung worker is killed, not
waited on forever), a bounded budget of pool restarts after workers die
outright (the simulations are pure functions, so re-running a unit is
always safe), and a ``partial`` degraded mode that records failed units
as typed :class:`UnitFailure` entries and returns everything that did
complete instead of discarding an entire overnight sweep for one bad
configuration.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.lab.experiments import ExperimentRow, levels_for, run_app
from repro.runtime import RunMetrics, RuntimeOptions
from repro.runtime.options import LocalityLevel
from repro.telemetry.log import get_logger, log_event
from repro.telemetry.metrics import MetricsRegistry, default_registry

_log = get_logger("fleet")


@dataclass(frozen=True)
class SweepUnit:
    """One sweep configuration: picklable, ordered, self-describing.

    ``machine`` and ``level`` are the enum *values* (plain strings) so a
    unit pickles compactly and its repr reads like the CLI invocation that
    would reproduce it.
    """

    app: str
    machine: str
    level: str
    procs: int
    scale: str = "paper"
    options: Optional[RuntimeOptions] = None

    def describe(self) -> str:
        return (f"{self.app} on {self.machine} at {self.level}, "
                f"{self.procs} processors ({self.scale} scale)")


def default_jobs() -> int:
    """Worker count: the number of CPUs this process may actually use."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - macOS/Windows
        return os.cpu_count() or 1


def sweep_units(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    options: Optional[RuntimeOptions] = None,
) -> List[SweepUnit]:
    """The canonical configuration order of a locality sweep.

    Levels outer, processor counts inner — the exact execution order of
    :func:`repro.lab.experiments.locality_sweep`, so a merge by unit index
    reproduces the serial row order.
    """
    return [
        SweepUnit(app, machine.value, level.value, p, scale, options)
        for level in levels_for(app)
        for p in procs
    ]


@dataclass
class _WorkerResult:
    """What crosses back over the process boundary for one unit."""

    index: int
    metrics: Optional[RunMetrics] = None
    error: Optional[str] = None
    trace: Optional[str] = None
    #: Worker process that ran the unit (per-worker progress accounting).
    pid: int = 0


def _run_unit(indexed: Any) -> _WorkerResult:
    """Execute one configuration (module-level, so it pickles by name).

    Exceptions are caught and shipped home as data: raising inside a pool
    worker would lose the traceback formatting and, for submit/map-style
    consumption, report failures in completion order rather than against
    the configuration that caused them.
    """
    index, unit = indexed
    try:
        metrics = run_app(
            unit.app, unit.procs, MachineKind(unit.machine),
            LocalityLevel(unit.level), unit.options, unit.scale,
        )
        # Raw simulation state: excluded from every snapshot, and the only
        # RunMetrics field whose pickled size scales with the data set.
        metrics.final_store = None
        return _WorkerResult(index, metrics=metrics, pid=os.getpid())
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        return _WorkerResult(index, error=f"{type(exc).__name__}: {exc}",
                             trace=traceback.format_exc(), pid=os.getpid())


def _mp_context():
    """Fork where available (cheap, inherits the warmed interpreter)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass(frozen=True)
class UnitFailure:
    """One sweep unit that did not produce metrics, and why.

    ``reason`` is one of ``"error"`` (the simulation raised — a
    deterministic failure, never retried), ``"timeout"`` (the worker
    exceeded the per-unit wall-clock budget and was killed) or ``"pool"``
    (the worker pool died and the restart budget was exhausted before the
    unit could be re-run).
    """

    index: int
    unit: str
    reason: str
    detail: str = ""

    def describe(self) -> str:
        line = f"[{self.reason}] unit {self.index}: {self.unit}"
        if self.detail:
            line += f" — {self.detail.splitlines()[0]}"
        return line


@dataclass
class SweepOutcome:
    """What a resilient sweep produced: per-unit metrics plus failures.

    ``metrics`` is in unit order with ``None`` in failed slots; a sweep
    with an empty ``failures`` list is exactly equivalent to a
    :func:`run_units` result.
    """

    metrics: List[Optional[RunMetrics]]
    failures: List["UnitFailure"] = field(default_factory=list)
    #: Fresh pools built after a worker died outright (BrokenProcessPool).
    pool_restarts: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return sum(m is not None for m in self.metrics)


def _fleet_instruments(registry: Optional[MetricsRegistry]) -> Dict[str, Any]:
    """The fleet's counters on ``registry`` (default: process-wide)."""
    registry = registry if registry is not None else default_registry()
    return {
        "dispatched": registry.counter(
            "repro_fleet_units_dispatched_total",
            "Sweep units handed to workers (requeued units re-count)"),
        "completed": registry.counter(
            "repro_fleet_units_completed_total",
            "Sweep units that produced metrics"),
        "timed_out": registry.counter(
            "repro_fleet_units_timed_out_total",
            "Sweep units killed by the per-unit wall-clock budget"),
        "retried": registry.counter(
            "repro_fleet_units_retried_total",
            "Sweep units requeued onto a fresh pool after a pool death"),
        "pool_restarts": registry.counter(
            "repro_fleet_pool_restarts_total",
            "Fresh pools built after a worker died outright"),
    }


class _Progress:
    """Throttled sweep heartbeats: completed/total, ETA, per-worker counts.

    Emits a ``sweep_progress`` JSONL-able log event at most once per
    ``interval`` seconds (0 emits on every completion — tests), plus one
    final ``sweep_complete`` event.  Logging only: never touches unit
    results, so the byte-identical parallel-vs-serial contract holds with
    heartbeats enabled.
    """

    def __init__(self, total: int, interval: float,
                 instruments: Dict[str, Any]) -> None:
        self.total = total
        self.interval = interval
        self.completed = 0
        self.failed = 0
        self.per_worker: Dict[int, int] = {}
        self.instruments = instruments
        self._t0 = time.monotonic()
        self._last = self._t0

    def _worker_doc(self) -> Dict[str, int]:
        return {str(pid): count
                for pid, count in sorted(self.per_worker.items())}

    def record(self, result: _WorkerResult) -> None:
        if result.error is None:
            self.completed += 1
            self.instruments["completed"].inc()
        else:
            self.failed += 1
        if result.pid:
            self.per_worker[result.pid] = \
                self.per_worker.get(result.pid, 0) + 1
        self._maybe_emit()

    def timed_out(self) -> None:
        self.failed += 1
        self.instruments["timed_out"].inc()
        self._maybe_emit()

    def _maybe_emit(self) -> None:
        now = time.monotonic()
        if now - self._last < self.interval:
            return
        self._last = now
        elapsed = now - self._t0
        done = self.completed + self.failed
        eta = (elapsed / done) * (self.total - done) if done else None
        log_event(_log, logging.INFO, "sweep_progress",
                  completed=self.completed, failed=self.failed,
                  total=self.total, elapsed_s=round(elapsed, 3),
                  eta_s=round(eta, 3) if eta is not None else None,
                  per_worker=self._worker_doc())

    def complete(self, outcome: "SweepOutcome") -> None:
        log_event(_log, logging.INFO, "sweep_complete",
                  completed=outcome.completed,
                  failed=len(outcome.failures), total=self.total,
                  elapsed_s=round(time.monotonic() - self._t0, 3),
                  pool_restarts=outcome.pool_restarts,
                  per_worker=self._worker_doc())


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: terminate workers, abandon queued work.

    ``ProcessPoolExecutor`` cannot cancel a future that is already
    running, so a hung worker would make a plain ``shutdown`` block
    forever; terminating the worker processes first makes the shutdown
    non-blocking (terminating an already-exited process is a no-op).
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _harvest(
    futures: List[Tuple[Tuple[int, SweepUnit], Any]],
    start: int,
    results: List[_WorkerResult],
    progress: _Progress,
) -> List[Tuple[int, SweepUnit]]:
    """Collect finished results from ``futures[start:]``; return the rest.

    Called while abandoning a pool: completed work is kept (never re-run),
    everything queued or in flight is returned for requeueing on a fresh
    pool.
    """
    requeue: List[Tuple[int, SweepUnit]] = []
    for pair, fut in futures[start:]:
        if fut.done():
            try:
                results.append(fut.result(timeout=0))
                progress.record(results[-1])
                continue
            except BaseException:  # noqa: BLE001 - crashed with the pool
                pass
        requeue.append(pair)
    return requeue


def _pooled_results(
    indexed: List[Tuple[int, SweepUnit]],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    partial: bool,
    outcome: SweepOutcome,
    progress: _Progress,
) -> List[_WorkerResult]:
    """The hardened pool loop: submit, await in order, recover, requeue."""
    results: List[_WorkerResult] = []
    pending = list(indexed)
    restarts_left = retries
    while pending:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=_mp_context())
        futures = [(pair, pool.submit(_run_unit, pair)) for pair in pending]
        progress.instruments["dispatched"].inc(len(pending))
        requeue: Optional[List[Tuple[int, SweepUnit]]] = None
        try:
            for position, (pair, fut) in enumerate(futures):
                index, unit = pair
                try:
                    results.append(fut.result(timeout=timeout))
                    progress.record(results[-1])
                except FuturesTimeout:
                    if not partial:
                        raise ExperimentError(
                            f"sweep unit timed out after {timeout:g}s of "
                            f"wall-clock: {unit.describe()} — raise "
                            "--timeout, or pass --partial to skip hung "
                            "units and keep the rest") from None
                    outcome.failures.append(UnitFailure(
                        index, unit.describe(), "timeout",
                        f"exceeded the {timeout:g}s per-unit wall-clock "
                        "budget; worker killed"))
                    progress.timed_out()
                    log_event(_log, logging.WARNING, "unit_timeout",
                              unit=unit.describe(), index=index,
                              timeout_s=timeout)
                    requeue = _harvest(futures, position + 1, results,
                                       progress)
                    break
                except BrokenProcessPool as exc:
                    if restarts_left <= 0:
                        if partial:
                            for lost_pair, lost_fut in futures[position:]:
                                if lost_fut.done() and not lost_fut.cancelled():
                                    try:
                                        results.append(
                                            lost_fut.result(timeout=0))
                                        continue
                                    except BaseException:  # noqa: BLE001
                                        pass
                                lost_index, lost_unit = lost_pair
                                outcome.failures.append(UnitFailure(
                                    lost_index, lost_unit.describe(), "pool",
                                    f"worker pool died ({exc}) with the "
                                    "restart budget exhausted"))
                            requeue = []
                            break
                        raise ExperimentError(
                            f"sweep worker pool died mid-sweep ({exc}); a "
                            "worker was killed or crashed outside Python — "
                            "rerun with --jobs 1 to reproduce serially"
                        ) from exc
                    restarts_left -= 1
                    outcome.pool_restarts += 1
                    progress.instruments["pool_restarts"].inc()
                    # The current unit is requeued too: pool death is a
                    # host-side event, not a property of the unit.
                    requeue = [pair] + _harvest(futures, position + 1,
                                                results, progress)
                    progress.instruments["retried"].inc(len(requeue))
                    log_event(_log, logging.WARNING, "pool_restart",
                              requeued=len(requeue),
                              restarts_left=restarts_left)
                    break
        finally:
            _kill_pool(pool)
        if requeue is None:
            break
        pending = requeue
    return results


def run_units_resilient(
    units: Sequence[SweepUnit],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    partial: bool = False,
    registry: Optional[MetricsRegistry] = None,
    progress_interval: float = 30.0,
) -> SweepOutcome:
    """Execute every unit with timeout/retry/partial hardening.

    * ``timeout`` — per-unit wall-clock budget in seconds, measured while
      waiting on that unit in submission order (a unit that ran
      concurrently with its predecessors gets at least this much beyond
      the previous unit's completion).  A unit that exceeds it has its
      worker killed; with ``partial`` it is recorded as a failure and the
      sweep continues on a fresh pool, otherwise the sweep aborts.  Not
      enforceable on the in-process ``jobs=1`` path (nothing can preempt
      the simulation there).
    * ``retries`` — how many times a *pool death* (worker killed outright:
      segfault, OOM kill) may be answered with a fresh pool re-running the
      lost units.  Units are pure deterministic functions, so re-running
      is always safe; a unit that *raises* is never retried — the same
      configuration would raise again.
    * ``partial`` — degraded mode: failed units become typed
      :class:`UnitFailure` entries and every completed unit's metrics are
      still returned, instead of one failure discarding the whole sweep.
    * ``progress_interval`` — minimum seconds between ``sweep_progress``
      heartbeat log events (completed/total, ETA, per-worker unit
      counts); a final ``sweep_complete`` event always fires.  Logging
      only — heartbeats never touch results.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if timeout is not None and timeout <= 0:
        raise ExperimentError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    outcome = SweepOutcome(metrics=[None] * len(units))
    indexed = list(enumerate(units))
    progress = _Progress(len(units), progress_interval,
                         _fleet_instruments(registry))
    if jobs == 1 or len(units) <= 1:
        progress.instruments["dispatched"].inc(len(indexed))
        results = []
        for pair in indexed:
            results.append(_run_unit(pair))
            progress.record(results[-1])
    else:
        results = _pooled_results(indexed, jobs, timeout, retries, partial,
                                  outcome, progress)
    for result in results:
        if result.error is not None:
            unit = units[result.index]
            if partial:
                outcome.failures.append(UnitFailure(
                    result.index, unit.describe(), "error",
                    f"{result.error}\n{result.trace or ''}"))
                continue
            raise ExperimentError(
                f"sweep worker failed on {unit.describe()}: {result.error}\n"
                f"{result.trace}")
        outcome.metrics[result.index] = result.metrics
    outcome.failures.sort(key=lambda failure: failure.index)
    progress.complete(outcome)
    return outcome


def run_units(
    units: Sequence[SweepUnit],
    jobs: Optional[int] = None,
) -> List[RunMetrics]:
    """Execute every unit, fanning out across processes; results in unit order.

    ``jobs=None`` auto-detects (one worker per available CPU); ``jobs=1``
    runs in-process with no pool — the reference serial path.  Strict
    mode: any failure raises; see :func:`run_units_resilient` for the
    hardened variant.
    """
    outcome = run_units_resilient(units, jobs=jobs, timeout=None, retries=0,
                                  partial=False)
    return outcome.metrics  # type: ignore[return-value] - strict: all filled


def parallel_locality_sweep(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    jobs: Optional[int] = None,
    options: Optional[RuntimeOptions] = None,
) -> List[ExperimentRow]:
    """:func:`repro.lab.experiments.locality_sweep`, fanned out over processes.

    Row order (and every serialized byte of the sweep snapshot) matches the
    serial function; only host wall-clock differs.
    """
    units = sweep_units(app, machine, list(procs), scale, options)
    metrics_list = run_units(units, jobs=jobs)
    return [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, metrics_list)
    ]


def resilient_locality_sweep(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "paper",
    jobs: Optional[int] = None,
    options: Optional[RuntimeOptions] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    partial: bool = False,
) -> Tuple[List[ExperimentRow], SweepOutcome]:
    """:func:`parallel_locality_sweep` with the hardened executor underneath.

    Returns ``(rows, outcome)``: rows for every unit that completed (in
    canonical unit order — identical to the serial rows when nothing
    failed) plus the :class:`SweepOutcome` recording failures and pool
    restarts.
    """
    units = sweep_units(app, machine, list(procs), scale, options)
    outcome = run_units_resilient(units, jobs=jobs, timeout=timeout,
                                  retries=retries, partial=partial)
    rows = [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, outcome.metrics)
        if metrics is not None
    ]
    return rows, outcome


def sweep_snapshot_doc(
    app: str,
    machine: str,
    scale: str,
    rows: Sequence[ExperimentRow],
) -> Dict[str, Any]:
    """The ``repro.sweep/1`` document for a sweep's rows.

    Both the serial and the parallel CLI paths build their snapshot here,
    which is what makes "parallel output is byte-identical to serial" a
    structural property instead of a test-time coincidence.
    """
    from repro.obs.schema import SWEEP_SCHEMA

    return {
        "schema": SWEEP_SCHEMA,
        "app": app,
        "machine": machine,
        "scale": scale,
        "rows": [
            {"level": row.level, "procs": row.procs,
             "metrics": row.metrics.to_json()}
            for row in rows
        ],
    }


def verify_parallel_matches_serial(
    app: str,
    machine: MachineKind,
    procs: Sequence[int],
    scale: str = "tiny",
    jobs: int = 2,
) -> str:
    """Run one sweep both ways and assert byte-identical snapshots.

    Returns the (shared) serialized snapshot text; raises
    :class:`ExperimentError` on any divergence, with the first differing
    line in the message.  Used by tests and the CI smoke step.
    """
    from repro.lab.experiments import locality_sweep
    from repro.obs.snapshot import dump_json

    serial = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        locality_sweep(app, machine, list(procs), scale)))
    parallel = dump_json(sweep_snapshot_doc(
        app, machine.value, scale,
        parallel_locality_sweep(app, machine, procs, scale, jobs=jobs)))
    if serial != parallel:
        for serial_line, parallel_line in zip(serial.splitlines(),
                                              parallel.splitlines()):
            if serial_line != parallel_line:
                raise ExperimentError(
                    f"parallel sweep diverged from serial for {app}: "
                    f"{serial_line!r} != {parallel_line!r}")
        raise ExperimentError(
            f"parallel sweep diverged from serial for {app} (length "
            f"{len(serial)} vs {len(parallel)})")
    return serial
