"""The discrete-event engine: clock, event queue, signals and processes.

Design notes
------------

* **Determinism.**  Events are ordered by ``(time, sequence)`` where the
  sequence number is the order of scheduling.  Two events at the same
  simulated time therefore fire in the order they were scheduled,
  independent of hash randomization or dict ordering.  This property is
  load-bearing: the reproduction's experiments compare runs configuration
  against configuration, and nondeterministic tie-breaking would make the
  "turn one optimization off" methodology of the paper unsound.

* **Two programming styles.**  Most runtime machinery (schedulers,
  communicators) is written callback-style with :meth:`Simulator.schedule`.
  The Jade *main thread* — the serial program that creates tasks — is far
  more natural as a co-routine, so the engine also supports generator-based
  :class:`Process` objects which ``yield`` :class:`Delay` and :class:`Wait`
  requests.

* **No wall-clock anywhere.**  The engine never consults real time; the
  clock only advances when the event queue says so.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimTimeLimitError, SimulationError


class Event:
    """A handle to a scheduled callback; supports cancellation.

    Cancellation is lazy: the heap entry stays in the queue but is skipped
    when popped.  This keeps :meth:`Simulator.schedule` and ``cancel`` O(log n)
    and O(1) respectively.  The owning simulator counts the cancelled
    entries still sitting in its heap and rebuilds the heap when they
    dominate (see :meth:`Simulator._compact`), so cancellation-heavy runs
    do not accumulate dead entries without bound.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: Tuple[Any, ...], sim: "Optional[Simulator]" = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("cancelled" if self.cancelled
                 else "fired" if self.fired else "pending")
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {getattr(self.fn, '__name__', self.fn)}>"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, order.append, "b")
    >>> _ = sim.schedule(1.0, order.append, "a")
    >>> sim.run()
    >>> order, sim.now
    (['a', 'b'], 2.0)
    """

    #: Compaction trigger: rebuild the heap when it holds at least this many
    #: entries and more than half of them are cancelled.  The floor keeps
    #: tiny queues (where the rebuild would cost more than it saves) on the
    #: pure lazy-cancellation path.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        #: Cancelled entries still sitting in the heap.  Maintained so that
        #: :attr:`pending_events` is O(1) and compaction can trigger without
        #: scanning the queue.
        self._cancelled_in_queue: int = 0
        #: Optional callable returning a human description of blocked work,
        #: consulted when :meth:`run` detects a stall (see :meth:`run`).
        self.deadlock_reporter: Optional[Callable[[], str]] = None
        #: Optional fault hook: ``perturb(tag, time) -> (drop, extra_delay)``
        #: consulted by :meth:`at_perturbed`.  Installed by a fault plan
        #: (see :mod:`repro.faults`); ``None`` — the overwhelmingly common
        #: case — makes :meth:`at_perturbed` behave exactly like :meth:`at`.
        self.perturb: Optional[Callable[[Any, float], Tuple[bool, float]]] = None
        #: Optional flight recorder (see :mod:`repro.obs.flight`), sampled
        #: after each fired event.  Like :attr:`perturb`, ``None`` — the
        #: overwhelmingly common case — costs one predicate per event; a
        #: recorder only ever *reads* simulator state, so attaching one can
        #: never change what the simulation computes.
        self.flight: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock is already at t={self.now!r}"
            )
        event = Event(time, self._seq, fn, args, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def at_perturbed(self, time: float, fn: Callable[..., None], *args: Any,
                     tag: Any = None) -> Optional[Event]:
        """Schedule like :meth:`at`, then let the fault hook retract or delay.

        The event is scheduled first and *then* perturbed, so a drop or a
        delay is an ordinary cancellation exercising the same lazy-cancel /
        heap-compaction machinery as any other retracted event — fault
        injection adds no second scheduling discipline to reason about.
        Returns the (possibly rescheduled) event, or ``None`` when the hook
        dropped it.
        """
        event = self.at(time, fn, *args)
        if self.perturb is None:
            return event
        drop, extra = self.perturb(tag, time)
        if drop:
            event.cancel()
            return None
        if extra > 0.0:
            event.cancel()
            return self.at(time + extra, fn, *args)
        return event

    def _note_cancelled(self) -> None:
        """Account one newly-cancelled queued event; compact when dominated."""
        self._cancelled_in_queue += 1
        if (len(self._queue) >= self.COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap with live entries only.

        O(live) work, amortized O(1) per cancellation since the trigger
        requires cancelled entries to outnumber live ones.  Ordering is
        unaffected: events compare by the total order ``(time, seq)``, so a
        re-heapified queue pops in exactly the same sequence.
        """
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event.fired = True
            self.now = event.time
            self._events_fired += 1
            event.fn(*event.args)
            if self.flight is not None:
                self.flight.on_event(self)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None,
            max_time: Optional[float] = None) -> None:
        """Run until the event queue drains (or ``until``/``max_events`` hit).

        With ``until``, the clock always ends at exactly ``until`` (never
        earlier), whether the bound interrupts pending work or the queue
        drains first — a ``run(until=T)`` caller may schedule relative to
        ``now`` afterwards and must find the clock at ``T``.

        ``max_events`` is a safety valve for tests: after exactly that many
        events have fired, a further pending event raises
        :class:`SimulationError`, because a healthy simulation of our scale
        terminates long before any sane bound.

        ``max_time`` is the user-facing runaway guard (``--max-sim-time``):
        unlike ``until`` — which stops cleanly, expecting the caller to
        resume — an event past ``max_time`` raises
        :class:`SimTimeLimitError`, because the simulation was supposed to
        have terminated by then.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                return
            if max_time is not None and next_time > max_time:
                raise SimTimeLimitError(
                    f"simulation exceeded max_sim_time={max_time:g}s: next "
                    f"event at t={next_time:.6f} with {self.pending_events} "
                    "still pending — runaway simulation aborted",
                    limit=max_time, at=next_time,
                )
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?")
            self.step()
            fired += 1
        if until is not None and until > self.now:
            self.now = until

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1
        return self._queue[0].time if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for determinism checks)."""
        return self._events_fired

    def check_quiescent(self, blocked: int) -> None:
        """Raise :class:`DeadlockError` if work is blocked but no events remain.

        Runtimes call this after :meth:`run` returns: ``blocked`` is the
        number of tasks/processes still waiting.  A positive count with an
        empty event queue means somebody is waiting for a wakeup that will
        never come.
        """
        if blocked > 0 and self.pending_events == 0:
            detail = self.deadlock_reporter() if self.deadlock_reporter else ""
            raise DeadlockError(
                f"simulation stalled with {blocked} blocked item(s) at t={self.now:.6f}"
                + (f": {detail}" if detail else ""),
                pending=blocked,
            )


# ---------------------------------------------------------------------- #
# co-routine processes
# ---------------------------------------------------------------------- #
@dataclass
class Delay:
    """Yielded by a process to sleep for ``seconds`` of simulated time."""

    seconds: float


@dataclass
class Wait:
    """Yielded by a process to block until ``signal`` fires."""

    signal: "Signal"


class Signal:
    """A broadcast wakeup: processes and callbacks wait, ``fire`` releases all.

    Signals are single-shot by default (``fire`` wakes current waiters and
    marks the signal set, so later waiters pass through immediately) which
    matches how runtimes use them: "object version v has arrived",
    "task t completed".
    """

    __slots__ = ("sim", "name", "_waiters", "fired", "payload")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fired = False
        self.payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(payload)`` when the signal fires.

        If the signal already fired the callback is scheduled immediately
        (still through the event queue, to preserve deterministic ordering
        relative to other same-time events).
        """
        if self.fired:
            self.sim.schedule(0.0, callback, self.payload)
        else:
            self._waiters.append(callback)

    def fire(self, payload: Any = None) -> None:
        """Fire the signal, waking every waiter with ``payload``."""
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, callback, payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name!r} fired={self.fired} waiters={len(self._waiters)}>"


class Process:
    """Drives a generator as a simulated process.

    The generator may yield:

    * :class:`Delay` — advance this process's local activity by simulated time;
    * :class:`Wait`  — block until a :class:`Signal` fires (the signal's
      payload is sent back into the generator);
    * ``None``       — yield the processor for one zero-delay event round
      (used to let same-time events interleave deterministically).

    ``done`` is a :class:`Signal` fired when the generator returns.
    """

    def __init__(self, sim: Simulator, gen: Generator[Any, Any, Any], name: str = "proc"):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = Signal(sim, f"{name}.done")
        self.result: Any = None
        sim.schedule(0.0, self._advance, None)

    def _advance(self, sent: Any) -> None:
        try:
            request = self.gen.send(sent)
        except StopIteration as stop:
            self.result = stop.value
            self.done.fire(stop.value)
            return
        if request is None:
            self.sim.schedule(0.0, self._advance, None)
        elif isinstance(request, Delay):
            self.sim.schedule(request.seconds, self._advance, None)
        elif isinstance(request, Wait):
            request.signal.wait(self._advance)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )
