"""Statistics primitives used by the machine models and runtimes.

The paper's evaluation is built from a handful of aggregate quantities —
counts (tasks executed, messages sent), sums (bytes transferred, time in
application code), and per-processor time series.  These classes collect
those quantities with zero interpretation; the ``runtime.metrics`` module
assembles them into the paper's derived measures (task locality percentage,
communication-to-computation ratio, task management percentage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


class Counter:
    """An integer event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        self.value += by

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Accumulator:
    """A running sum with count/min/max, for durations and byte volumes."""

    __slots__ = ("name", "total", "count", "min", "max")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the added values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary of the accumulator.

        An empty accumulator's ``min``/``max`` sentinels are ±inf, which
        ``json.dumps`` would emit as the non-standard ``Infinity`` literal;
        any serialized output must therefore go through this method, which
        reports ``None`` for the extremes of an empty accumulator.
        """
        return {
            "total": self.total,
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Accumulator {self.name} total={self.total:.6g} n={self.count}>"


class TimeSeries:
    """An append-only list of ``(time, value)`` samples."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self.samples)

    def last(self) -> Tuple[float, float]:
        if not self.samples:
            raise IndexError("empty time series")
        return self.samples[-1]


@dataclass
class StatRegistry:
    """A named bag of counters/accumulators/series.

    Components create their stats through the registry so reports can
    enumerate everything that was measured without knowing the component.
    """

    counters: Dict[str, Counter] = field(default_factory=dict)
    accumulators: Dict[str, Accumulator] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(name)
        return self.accumulators[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten every stat to a scalar (series report their last value)."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[f"counter.{name}"] = float(c.value)
        for name, a in self.accumulators.items():
            out[f"sum.{name}"] = a.total
            out[f"mean.{name}"] = a.mean
        for name, s in self.series.items():
            if len(s):
                out[f"last.{name}"] = s.last()[1]
        return out
