"""Structured execution tracing.

Traces serve three purposes in the reproduction:

1. **Determinism checks** — tests assert that two runs of the same
   configuration produce byte-identical traces.
2. **Debuggability** — when a scheduler or coherence protocol misbehaves,
   a filtered trace of ``task``/``message``/``object`` events is the fastest
   way to see the interleaving.
3. **Timelines** — paired begin/end *span* events record durations (task
   execution, serial sections, message in-flight time, object fetch waits)
   and export as Chrome/Perfetto duration events, one row per processor.

Tracing is off by default (``Tracer(enabled=False)`` records nothing) so the
hot simulation paths pay only a predicate check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Event phases, following the Chrome trace-format vocabulary: ``i`` is an
#: instant, ``B``/``E`` open and close a span on the event's row.
PHASE_INSTANT = "i"
PHASE_BEGIN = "B"
PHASE_END = "E"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``(time, category, label, attributes[, phase])``."""

    time: float
    category: str
    label: str
    attrs: Tuple[Tuple[str, Any], ...] = ()
    phase: str = PHASE_INSTANT

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def format(self) -> str:
        """Render the event as a stable, human-readable line."""
        parts = " ".join(f"{k}={v}" for k, v in self.attrs)
        marker = "" if self.phase == PHASE_INSTANT else f"[{self.phase}]"
        return (f"[{self.time:.9f}] {self.category}:{self.label}{marker}"
                + (f" {parts}" if parts else ""))


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by category."""

    def __init__(self, enabled: bool = True, categories: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []

    def emit(self, time: float, category: str, label: str, **attrs: Any) -> None:
        """Record one instant event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time, category, label, tuple(sorted(attrs.items()))))

    # ------------------------------------------------------------------ #
    # spans
    # ------------------------------------------------------------------ #
    def span_begin(self, time: float, category: str, label: str, **attrs: Any) -> None:
        """Open a span on the event's row (closed by :meth:`span_end`)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time, category, label,
                                      tuple(sorted(attrs.items())), PHASE_BEGIN))

    def span_end(self, time: float, category: str, label: str, **attrs: Any) -> None:
        """Close the innermost open span with the same (row, category, label)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time, category, label,
                                      tuple(sorted(attrs.items())), PHASE_END))

    def span(self, begin: float, end: float, category: str, label: str,
             **attrs: Any) -> None:
        """Record a complete span ``[begin, end]`` in one call.

        Used by callers that learn both endpoints at completion (resource
        service callbacks report ``(start, finish)``), so the two events may
        be appended after later-timestamped events; exports that need
        chronological order sort by timestamp.
        """
        if not self.enabled:
            return
        self.span_begin(begin, category, label, **attrs)
        self.span_end(end, category, label, **attrs)

    def filter(self, category: str) -> List[TraceEvent]:
        """Return the recorded events of one category, in order."""
        return [e for e in self.events if e.category == category]

    def spans(self, category: Optional[str] = None) -> List[Tuple[TraceEvent, TraceEvent]]:
        """Pair up begin/end events into ``(begin, end)`` tuples.

        Pairing is per (row, category, label), innermost-first, in recorded
        order — the same rule the Chrome export uses.  A ``span_begin`` with
        no matching ``span_end`` (e.g. a task aborted mid-execution) is not
        dropped: it is surfaced as a zero-length span whose synthesized end
        event carries an ``open=True`` attribute, so consumers can both see
        the span and distinguish it from a properly closed one.
        """
        open_spans: Dict[Tuple[Any, str, str], List[Tuple[int, TraceEvent]]] = {}
        pairs: List[Tuple[TraceEvent, TraceEvent]] = []
        for index, e in enumerate(self.events):
            if category is not None and e.category != category:
                continue
            key = (_row_of(e), e.category, e.label)
            if e.phase == PHASE_BEGIN:
                open_spans.setdefault(key, []).append((index, e))
            elif e.phase == PHASE_END:
                stack = open_spans.get(key)
                if stack:
                    pairs.append((stack.pop()[1], e))
        unmatched = sorted(
            (item for stack in open_spans.values() for item in stack),
            key=lambda item: item[0],
        )
        for _index, begin in unmatched:
            pairs.append((begin, TraceEvent(
                begin.time, begin.category, begin.label,
                tuple(sorted(dict(begin.attrs, open=True).items())),
                PHASE_END,
            )))
        return pairs

    def format(self) -> str:
        """Render the full trace as newline-separated stable text."""
        return "\n".join(e.format() for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def histogram(self) -> Dict[str, int]:
        """Count events per category — cheap sanity check in tests."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # exports
    # ------------------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """Render the trace as JSON Lines, one event object per line.

        Stable key order (``time``, ``category``, ``label``, ``phase`` for
        span events, then sorted attributes) keeps the output diffable
        between runs; instant events serialize exactly as they always have.
        """
        lines = []
        for e in self.events:
            record: Dict[str, Any] = {
                "time": e.time, "category": e.category, "label": e.label,
            }
            if e.phase != PHASE_INSTANT:
                record["phase"] = e.phase
            record.update(e.attrs)
            lines.append(json.dumps(record, sort_keys=False, default=str))
        return "\n".join(lines)

    def row_tids(self) -> Dict[Any, int]:
        """Map each distinct event row label to a stable integer tid.

        Integer rows (the common case: ``proc``/``dst`` processor numbers)
        keep their own value; non-integer labels get consecutive tids after
        the largest integer row, in sorted order.  The mapping depends only
        on the set of labels present, so identical runs produce identical
        timelines.
        """
        rows = {_row_of(e) for e in self.events}
        ints = sorted(r for r in rows if isinstance(r, int) and not isinstance(r, bool))
        others = sorted((str(r) for r in rows
                         if not (isinstance(r, int) and not isinstance(r, bool))))
        mapping: Dict[Any, int] = {r: r for r in ints}
        base = (max(ints) + 1) if ints else 0
        for offset, label in enumerate(others):
            mapping[label] = base + offset
        return mapping

    def to_chrome_json(self) -> str:
        """Render the trace in Chrome ``about:tracing`` / Perfetto format.

        * each distinct ``proc``/``dst`` row label becomes one named thread
          (``thread_name`` metadata events), with deterministic integer tids
          via :meth:`row_tids`;
        * begin/end span pairs export as complete duration events
          (``"ph": "X"`` with ``dur``), so Perfetto draws real timelines;
        * instants stay instant events; unmatched begins/ends export as raw
          ``B``/``E`` events rather than being dropped.

        Simulated seconds map to trace microseconds.
        """
        tids = self.row_tids()

        def tid_of(e: TraceEvent) -> int:
            row = _row_of(e)
            if not (isinstance(row, int) and not isinstance(row, bool)):
                row = str(row)
            return tids.get(row, 0)

        trace_events: List[Dict[str, Any]] = []
        for row, tid in sorted(tids.items(), key=lambda kv: (kv[1], str(kv[0]))):
            name = f"proc {row}" if isinstance(row, int) else str(row)
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": name},
            })

        open_spans: Dict[Tuple[int, str, str], List[TraceEvent]] = {}
        body: List[Tuple[float, int, Dict[str, Any]]] = []

        def add(ts: float, payload: Dict[str, Any]) -> None:
            body.append((ts, len(body), payload))

        for e in self.events:
            tid = tid_of(e)
            if e.phase == PHASE_BEGIN:
                open_spans.setdefault((tid, e.category, e.label), []).append(e)
                continue
            if e.phase == PHASE_END:
                stack = open_spans.get((tid, e.category, e.label))
                if stack:
                    begin = stack.pop()
                    args = dict(begin.attrs)
                    args.update(dict(e.attrs))
                    add(begin.time * 1e6, {
                        "name": f"{e.category}:{e.label}",
                        "cat": e.category,
                        "ph": "X",
                        "ts": begin.time * 1e6,
                        "dur": (e.time - begin.time) * 1e6,
                        "pid": 0,
                        "tid": tid,
                        "args": args,
                    })
                else:
                    add(e.time * 1e6, {
                        "name": f"{e.category}:{e.label}", "cat": e.category,
                        "ph": "E", "ts": e.time * 1e6, "pid": 0, "tid": tid,
                        "args": dict(e.attrs),
                    })
                continue
            add(e.time * 1e6, {
                "name": f"{e.category}:{e.label}",
                "cat": e.category,
                "ph": "i",
                "s": "t",
                "ts": e.time * 1e6,
                "pid": 0,
                "tid": tid,
                "args": dict(e.attrs),
            })
        # Spans left open export as raw begins, after everything paired.
        for stack in open_spans.values():
            for begin in stack:
                add(begin.time * 1e6, {
                    "name": f"{begin.category}:{begin.label}", "cat": begin.category,
                    "ph": "B", "ts": begin.time * 1e6, "pid": 0,
                    "tid": tid_of(begin), "args": dict(begin.attrs),
                })
        body.sort(key=lambda item: (item[0], item[1]))
        trace_events.extend(payload for _ts, _seq, payload in body)
        return json.dumps({"traceEvents": trace_events,
                           "displayTimeUnit": "ms"}, default=str)

    def write(self, path: str) -> None:
        """Write the trace to ``path``: Chrome JSON for ``.json``, else JSONL."""
        if path.endswith(".json"):
            payload = self.to_chrome_json()
        else:
            payload = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")


def _row_of(e: TraceEvent) -> Any:
    """The timeline row an event is drawn on: ``proc``, else ``dst``, else 0."""
    row = e.attr("proc")
    if row is None:
        row = e.attr("dst")
    return 0 if row is None else row
