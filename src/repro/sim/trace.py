"""Structured execution tracing.

Traces serve two purposes in the reproduction:

1. **Determinism checks** — tests assert that two runs of the same
   configuration produce byte-identical traces.
2. **Debuggability** — when a scheduler or coherence protocol misbehaves,
   a filtered trace of ``task``/``message``/``object`` events is the fastest
   way to see the interleaving.

Tracing is off by default (``Tracer(enabled=False)`` records nothing) so the
hot simulation paths pay only a predicate check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``(time, category, label, attributes)``."""

    time: float
    category: str
    label: str
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def format(self) -> str:
        """Render the event as a stable, human-readable line."""
        parts = " ".join(f"{k}={v}" for k, v in self.attrs)
        return f"[{self.time:.9f}] {self.category}:{self.label}" + (f" {parts}" if parts else "")


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by category."""

    def __init__(self, enabled: bool = True, categories: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []

    def emit(self, time: float, category: str, label: str, **attrs: Any) -> None:
        """Record one event (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time, category, label, tuple(sorted(attrs.items()))))

    def filter(self, category: str) -> List[TraceEvent]:
        """Return the recorded events of one category, in order."""
        return [e for e in self.events if e.category == category]

    def format(self) -> str:
        """Render the full trace as newline-separated stable text."""
        return "\n".join(e.format() for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def histogram(self) -> Dict[str, int]:
        """Count events per category — cheap sanity check in tests."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out
