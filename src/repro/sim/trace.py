"""Structured execution tracing.

Traces serve two purposes in the reproduction:

1. **Determinism checks** — tests assert that two runs of the same
   configuration produce byte-identical traces.
2. **Debuggability** — when a scheduler or coherence protocol misbehaves,
   a filtered trace of ``task``/``message``/``object`` events is the fastest
   way to see the interleaving.

Tracing is off by default (``Tracer(enabled=False)`` records nothing) so the
hot simulation paths pay only a predicate check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: ``(time, category, label, attributes)``."""

    time: float
    category: str
    label: str
    attrs: Tuple[Tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def format(self) -> str:
        """Render the event as a stable, human-readable line."""
        parts = " ".join(f"{k}={v}" for k, v in self.attrs)
        return f"[{self.time:.9f}] {self.category}:{self.label}" + (f" {parts}" if parts else "")


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered by category."""

    def __init__(self, enabled: bool = True, categories: Optional[Iterable[str]] = None):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.events: List[TraceEvent] = []

    def emit(self, time: float, category: str, label: str, **attrs: Any) -> None:
        """Record one event (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time, category, label, tuple(sorted(attrs.items()))))

    def filter(self, category: str) -> List[TraceEvent]:
        """Return the recorded events of one category, in order."""
        return [e for e in self.events if e.category == category]

    def format(self) -> str:
        """Render the full trace as newline-separated stable text."""
        return "\n".join(e.format() for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def histogram(self) -> Dict[str, int]:
        """Count events per category — cheap sanity check in tests."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.category] = out.get(e.category, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # exports
    # ------------------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """Render the trace as JSON Lines, one event object per line.

        Stable key order (``time``, ``category``, ``label``, then sorted
        attributes) keeps the output diffable between runs.
        """
        lines = []
        for e in self.events:
            record = {"time": e.time, "category": e.category, "label": e.label}
            record.update(e.attrs)
            lines.append(json.dumps(record, sort_keys=False, default=str))
        return "\n".join(lines)

    def to_chrome_json(self) -> str:
        """Render the trace in Chrome ``about:tracing`` JSON format.

        Load the output in ``chrome://tracing`` (or Perfetto) for a visual
        timeline.  Events are instants; simulated seconds map to trace
        microseconds, and the ``proc``/``dst`` attribute (when present)
        maps to the row the event is drawn on.
        """
        trace_events = []
        for e in self.events:
            attrs = dict(e.attrs)
            row = attrs.get("proc", attrs.get("dst", 0))
            trace_events.append({
                "name": f"{e.category}:{e.label}",
                "cat": e.category,
                "ph": "i",
                "s": "t",
                "ts": e.time * 1e6,
                "pid": 0,
                "tid": row if isinstance(row, int) else 0,
                "args": attrs,
            })
        return json.dumps({"traceEvents": trace_events,
                           "displayTimeUnit": "ms"}, default=str)

    def write(self, path: str) -> None:
        """Write the trace to ``path``: Chrome JSON for ``.json``, else JSONL."""
        if path.endswith(".json"):
            payload = self.to_chrome_json()
        else:
            payload = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
