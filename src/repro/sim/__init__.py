"""Discrete-event simulation substrate.

The whole reproduction runs on this deterministic engine: simulated
processors, network interfaces and runtime schedulers are all expressed as
events and co-routine processes over a single virtual clock.  The engine is
deliberately minimal — a binary-heap event queue with total deterministic
ordering — because determinism is a tested invariant of the reproduction
(identical configurations must produce identical traces and times).
"""

from repro.sim.engine import Simulator, Event, Delay, Wait, Signal, Process
from repro.sim.resources import FifoResource
from repro.sim.stats import Counter, Accumulator, TimeSeries, StatRegistry
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Delay",
    "Wait",
    "Signal",
    "Process",
    "FifoResource",
    "Counter",
    "Accumulator",
    "TimeSeries",
    "StatRegistry",
    "TraceEvent",
    "Tracer",
]
