"""FIFO service resources.

A :class:`FifoResource` models a component that serves one job at a time in
arrival order — a network interface serializing message sends, a hypercube
link, the main processor's task-management engine.  Jobs specify a service
time; the resource tracks utilization so experiments can report how busy a
component was (e.g. the paper's "task management percentage" is main-CPU
utilization by runtime work).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator


class FifoResource:
    """A single server with an unbounded FIFO queue.

    ``submit(service_time, done)`` enqueues a job; ``done(start, finish)``
    is invoked (via the event queue) when the job's service completes.

    >>> sim = Simulator()
    >>> nic = FifoResource(sim, "nic")
    >>> finishes = []
    >>> nic.submit(1.0, lambda s, f: finishes.append((s, f)))
    >>> nic.submit(0.5, lambda s, f: finishes.append((s, f)))
    >>> sim.run()
    >>> finishes
    [(0.0, 1.0), (1.0, 1.5)]
    """

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self.sim = sim
        self.name = name
        self._busy_until: float = 0.0
        self._busy_time: float = 0.0
        self._jobs_served: int = 0
        self._pending: int = 0

    # ------------------------------------------------------------------ #
    def submit(
        self,
        service_time: float,
        done: Callable[[float, float], None],
        tag: Any = None,
    ) -> None:
        """Enqueue a job needing ``service_time`` seconds of this resource.

        The queue is FIFO with no cancellation, so each job's service
        window is fully determined at submission: it starts when every
        previously submitted job has finished.  ``busy_until`` therefore
        always accounts for *queued* work, not just the job in service —
        callers (the network's wormhole pipelining) rely on that.
        """
        if service_time < 0:
            raise ValueError(f"negative service time {service_time!r}")
        start = max(self.sim.now, self._busy_until)
        finish = start + service_time
        self._busy_until = finish
        self._busy_time += service_time
        self._jobs_served += 1
        self._pending += 1

        def _complete() -> None:
            self._pending -= 1
            done(start, finish)

        self.sim.at(finish, _complete)

    # ------------------------------------------------------------------ #
    @property
    def queue_length(self) -> int:
        """Jobs submitted and not yet completed, minus the one in service."""
        return max(0, self._pending - 1)

    @property
    def busy_until(self) -> float:
        """Time at which all submitted (including queued) work completes."""
        return self._busy_until

    @property
    def busy_time(self) -> float:
        """Cumulative service time delivered (utilization numerator)."""
        return self._busy_time

    @property
    def jobs_served(self) -> int:
        """Number of jobs whose service has started."""
        return self._jobs_served

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of ``horizon`` (default: current clock) spent serving."""
        horizon = horizon if horizon is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_time / horizon)


class PriorityFifoResource:
    """A single server with two FIFO classes: urgent before normal.

    Non-preemptive: a running job finishes, then the server takes the next
    urgent job if any, else the next normal job.  Models a processor whose
    runtime engine (task creation, scheduling, completion handling) runs
    ahead of queued application task bodies — the dispatcher "serially
    executes its set of executable tasks" only when no runtime work is
    pending.
    """

    def __init__(self, sim: Simulator, name: str = "priority-resource") -> None:
        self.sim = sim
        self.name = name
        self._urgent: Deque[Tuple[float, Callable[[float, float], None]]] = deque()
        self._normal: Deque[Tuple[float, Callable[[float, float], None]]] = deque()
        self._busy_time = 0.0
        self._jobs_served = 0
        self._serving = False

    def submit(
        self,
        service_time: float,
        done: Callable[[float, float], None],
        urgent: bool = False,
    ) -> None:
        """Enqueue a job; ``urgent=True`` jobs run before any normal job."""
        if service_time < 0:
            raise ValueError(f"negative service time {service_time!r}")
        (self._urgent if urgent else self._normal).append((service_time, done))
        if not self._serving:
            self._serve_next()

    def _serve_next(self) -> None:
        queue = self._urgent if self._urgent else self._normal
        if not queue:
            self._serving = False
            return
        self._serving = True
        service_time, done = queue.popleft()
        start = self.sim.now
        finish = start + service_time
        self._busy_time += service_time
        self._jobs_served += 1

        def _complete() -> None:
            done(start, finish)
            self._serve_next()

        self.sim.at(finish, _complete)

    @property
    def busy_time(self) -> float:
        return self._busy_time

    @property
    def jobs_served(self) -> int:
        return self._jobs_served

    @property
    def queue_length(self) -> int:
        return len(self._urgent) + len(self._normal)
