"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
The sub-hierarchy mirrors the package layout: simulation-engine errors,
Jade-semantics errors (access-specification violations are the important
ones — they correspond to the runtime checks the real Jade implementation
performed on every shared-object access), machine-model errors and
experiment-harness errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for discrete-event engine misuse (e.g. scheduling in the past)."""


class DeadlockError(SimulationError):
    """Raised when the simulation stalls with pending work but no events.

    A deadlock means some component is waiting for a wakeup that can never
    arrive — typically a bug in a scheduler or communicator protocol, or a
    program whose access specifications create an unsatisfiable wait.
    """

    def __init__(self, message: str, pending: int = 0):
        super().__init__(message)
        #: Number of processes/tasks still blocked when the stall was detected.
        self.pending = pending


class JadeError(ReproError):
    """Base class for violations of Jade language semantics."""


class AccessViolationError(JadeError):
    """A task touched a shared object in a way its access spec did not declare.

    Jade's correctness guarantee rests on access specifications being a
    superset of the accesses a task actually performs; like the original
    implementation we detect undeclared accesses dynamically and abort.
    """


class SpecificationError(JadeError):
    """An access specification is malformed (unknown object, duplicate id...)."""


class VersionError(JadeError):
    """A processor observed a shared-object version it should not hold.

    This indicates a coherence bug in the message-passing communicator: the
    executing processor's local store did not contain the exact version of
    an object that serial program order dictates the task must observe.

    The structured fields make chaos-run violations diagnosable: which
    object (id and name), which version serial order required, which
    version the store actually held, and which node was asking.  Any field
    may be ``None`` when the raise site cannot know it.
    """

    def __init__(
        self,
        message: str,
        *,
        object_id: "int | None" = None,
        object_name: "str | None" = None,
        expected_version: "int | None" = None,
        observed_version: "int | None" = None,
        node: "int | None" = None,
    ):
        super().__init__(message)
        self.object_id = object_id
        self.object_name = object_name
        self.expected_version = expected_version
        self.observed_version = observed_version
        self.node = node

    def details(self) -> str:
        """One stable line of the structured fields, for reports."""
        parts = []
        if self.object_id is not None:
            parts.append(f"object_id={self.object_id}")
        if self.object_name is not None:
            parts.append(f"object={self.object_name!r}")
        if self.expected_version is not None:
            parts.append(f"expected_version={self.expected_version}")
        parts.append(f"observed_version={self.observed_version}")
        if self.node is not None:
            parts.append(f"node={self.node}")
        return " ".join(parts)


class MachineError(ReproError):
    """Raised for invalid machine configurations (e.g. non-power-of-two cube)."""


class RoutingError(MachineError):
    """Raised when a message cannot be routed between two nodes."""


class ExperimentError(ReproError):
    """Raised by the lab harness for malformed experiment configurations."""


class SimTimeLimitError(SimulationError, ExperimentError):
    """A simulation ran past its configured ``max_sim_time`` guard.

    Inherits from both :class:`SimulationError` (the run itself was cut
    off, so "simulation raised" exit-code policies apply) and
    :class:`ExperimentError` (the guard is harness configuration, and
    harness-level callers that only catch :class:`ExperimentError` still
    get a clean abort instead of a spinning process).
    """

    def __init__(self, message: str, limit: float = 0.0, at: float = 0.0):
        super().__init__(message)
        #: The configured guard, in simulated seconds.
        self.limit = limit
        #: The simulated time of the first event past the guard.
        self.at = at


class ReliabilityError(MachineError):
    """The reliable-delivery layer exhausted a message's retry budget.

    Under an adversarial fault plan a channel can drop every copy of a
    message; rather than retransmit forever the sender gives up after its
    budget and surfaces the unreachable channel.
    """


#: The CLI / service exit-code taxonomy (see ``repro --help``):
#: 0 success, 1 a verification or regression failed, 2 bad arguments or
#: configuration, 3 the simulation itself raised.
EXIT_VERIFICATION_FAILED = 1
EXIT_BAD_REQUEST = 2
EXIT_SIMULATION_RAISED = 3


def exit_code_for(exc: BaseException) -> int:
    """Map an exception onto the uniform exit-code taxonomy.

    The simulation-raised class is checked first so that
    :class:`SimTimeLimitError` (both a :class:`SimulationError` and an
    :class:`ExperimentError`) reports 3, matching every CLI handler.
    """
    if isinstance(exc, (SimulationError, JadeError, MachineError)):
        return EXIT_SIMULATION_RAISED
    if isinstance(exc, ReproError):
        return EXIT_BAD_REQUEST
    return EXIT_SIMULATION_RAISED
