"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
The sub-hierarchy mirrors the package layout: simulation-engine errors,
Jade-semantics errors (access-specification violations are the important
ones — they correspond to the runtime checks the real Jade implementation
performed on every shared-object access), machine-model errors and
experiment-harness errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for discrete-event engine misuse (e.g. scheduling in the past)."""


class DeadlockError(SimulationError):
    """Raised when the simulation stalls with pending work but no events.

    A deadlock means some component is waiting for a wakeup that can never
    arrive — typically a bug in a scheduler or communicator protocol, or a
    program whose access specifications create an unsatisfiable wait.
    """

    def __init__(self, message: str, pending: int = 0):
        super().__init__(message)
        #: Number of processes/tasks still blocked when the stall was detected.
        self.pending = pending


class JadeError(ReproError):
    """Base class for violations of Jade language semantics."""


class AccessViolationError(JadeError):
    """A task touched a shared object in a way its access spec did not declare.

    Jade's correctness guarantee rests on access specifications being a
    superset of the accesses a task actually performs; like the original
    implementation we detect undeclared accesses dynamically and abort.
    """


class SpecificationError(JadeError):
    """An access specification is malformed (unknown object, duplicate id...)."""


class VersionError(JadeError):
    """A processor observed a shared-object version it should not hold.

    This indicates a coherence bug in the message-passing communicator: the
    executing processor's local store did not contain the exact version of
    an object that serial program order dictates the task must observe.
    """


class MachineError(ReproError):
    """Raised for invalid machine configurations (e.g. non-power-of-two cube)."""


class RoutingError(MachineError):
    """Raised when a message cannot be routed between two nodes."""


class ExperimentError(ReproError):
    """Raised by the lab harness for malformed experiment configurations."""
