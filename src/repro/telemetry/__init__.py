"""``repro.telemetry`` — runtime metrics and structured logging.

The observability layer for the *production-facing* half of the repo
(the simulator's own observability is :mod:`repro.obs`):

* :mod:`repro.telemetry.metrics` — a thread-safe metrics registry
  (counters, gauges, fixed-bucket histograms) with two expositions:
  Prometheus text and the schema-versioned ``repro.telemetry/1`` JSON
  snapshot (deterministic layout via :mod:`repro.util.canon`);
* :mod:`repro.telemetry.log` — structured (JSONL-capable) logging with
  a per-job correlation-id context, shared by the HTTP access log, the
  job lifecycle events and the fleet heartbeats;
* :mod:`repro.telemetry.dashboard` — the ``repro status <url>`` one-shot
  text dashboard over ``/v1/health`` + ``/v1/metrics``;
* :mod:`repro.telemetry.fleet` — cross-host trace correlation (NTP-style
  clock-offset estimation, merged Chrome/Perfetto timelines) and fleet
  metrics aggregation behind ``repro sweep --trace-out`` and
  ``repro status --fleet``.

The hard invariant, inherited from every prior subsystem: telemetry
*observes* and never perturbs — no metric, log line or correlation id
may change a simulation's result bytes or a request's cache key.
"""

from repro.telemetry.log import (
    configure_logging,
    current_job_id,
    get_logger,
    job_context,
    log_event,
    reset_logging,
)
from repro.telemetry.fleet import (
    FleetTraceCollector,
    aggregate_snapshots,
    estimate_offsets,
    merge_timeline,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    parse_prometheus_text,
    sample_value,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FleetTraceCollector",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_snapshots",
    "configure_logging",
    "estimate_offsets",
    "merge_timeline",
    "current_job_id",
    "default_registry",
    "get_logger",
    "job_context",
    "log_event",
    "parse_prometheus_text",
    "reset_logging",
    "sample_value",
]
