"""Structured logging with job-correlated context.

Until this PR there was not a single ``logging`` call in ``src/`` — the
serve and fleet layers ran silently.  This module gives them one logging
surface with two properties the rest of the repo's observability already
has:

* **Machine-readable first.**  ``--log-json`` switches every line to a
  single JSON object (``ts``, ``level``, ``logger``, ``event``, plus the
  event's structured fields), so server access logs, job lifecycle
  events and fleet heartbeats are greppable/joinable JSONL streams, not
  prose.  The default text formatter renders the same fields as
  ``key=value`` pairs for humans.
* **One correlation id per job.**  :func:`job_context` binds a job id
  into a :class:`contextvars.ContextVar`; every log line emitted inside
  the context — the HTTP access log, the job lifecycle events, the fleet
  unit logs running on the worker thread — carries the same ``job_id``
  field, so a job's whole path through the service is one grep.

Nothing here may perturb simulation results: log timestamps are host
wall clock and live only on stderr, never in result documents, and an
unconfigured process emits nothing below WARNING (the stdlib's
last-resort handler), so library users and tests stay quiet by default.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

_JOB_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_job_id", default=None)

#: Accepted ``--log-level`` spellings (lowercase), mapped onto stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def current_job_id() -> Optional[str]:
    """The correlation id bound to the current context, if any."""
    return _JOB_ID.get()


@contextmanager
def job_context(job_id: str) -> Iterator[None]:
    """Bind ``job_id`` as the correlation id for every log line inside."""
    token = _JOB_ID.set(job_id)
    try:
        yield
    finally:
        _JOB_ID.reset(token)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.`` namespace (``get_logger('serve')``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(logger: logging.Logger, level: int, event: str,
              job_id: Optional[str] = None, **fields: Any) -> None:
    """Emit one structured event: a short name plus typed fields.

    ``fields`` with value ``None`` are dropped (an absent fact reads
    better than ``eta_s=None``); ``job_id`` defaults to the bound
    context id, so callers inside :func:`job_context` need not pass it.
    """
    if not logger.isEnabledFor(level):
        return
    extra: Dict[str, Any] = {
        "fields": {k: v for k, v in fields.items() if v is not None}}
    if job_id is not None:
        extra["job_id"] = job_id
    logger.log(level, event, extra=extra)


class _ContextFilter(logging.Filter):
    """Stamp the bound correlation id onto every record at emit time."""

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "job_id", None) is None:
            record.job_id = current_job_id()
        if not hasattr(record, "fields"):
            record.fields = {}
        return True


_RESERVED = ("ts", "level", "logger", "event", "job_id")


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: the JSONL stream ``--log-json`` emits."""

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        job_id = getattr(record, "job_id", None)
        if job_id is not None:
            doc["job_id"] = job_id
        for key, value in getattr(record, "fields", {}).items():
            if key not in _RESERVED:
                doc[key] = value
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


class TextLogFormatter(logging.Formatter):
    """Human-readable rendering of the same structured fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = self.formatTime(record, "%H:%M:%S")
        line = (f"{stamp} {record.levelname.lower():<7} "
                f"{record.name}: {record.getMessage()}")
        job_id = getattr(record, "job_id", None)
        if job_id is not None:
            line += f" job={job_id}"
        for key, value in getattr(record, "fields", {}).items():
            if key not in _RESERVED:
                line += f" {key}={value!r}" if isinstance(value, str) \
                    else f" {key}={value}"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(json_mode: bool = False, level: str = "info",
                      stream: Any = None) -> logging.Handler:
    """Install (or replace) the ``repro`` logging handler.

    Idempotent: a previous handler installed by this function is removed
    first, so re-configuration (tests, embedded servers) never stacks
    duplicate handlers.  Returns the installed handler (tests use it to
    capture and to tear down via :func:`reset_logging`).
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; valid: "
            f"{', '.join(sorted(LOG_LEVELS))}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    handler.addFilter(_ContextFilter())
    handler.setFormatter(JsonLogFormatter() if json_mode
                         else TextLogFormatter())
    root.addHandler(handler)
    root.setLevel(LOG_LEVELS[level])
    return handler


def reset_logging() -> None:
    """Remove handlers installed by :func:`configure_logging` (tests)."""
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def add_logging_args(parser) -> None:
    """Register the shared ``--log-json`` / ``--log-level`` flags."""
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured JSONL logs on stderr "
                             "(one JSON object per line)")
    parser.add_argument("--log-level", default=None,
                        choices=sorted(LOG_LEVELS),
                        help="log verbosity (default: info for serve, "
                             "warning for sweep)")


def configure_from_args(args, default_level: str = "info") -> None:
    """Apply the shared logging flags from an argparse namespace."""
    configure_logging(json_mode=getattr(args, "log_json", False),
                      level=getattr(args, "log_level", None) or default_level)
