"""Fleet-wide trace correlation and metrics aggregation.

After PR 8 a sweep's units execute on remote workers whose clocks the
host cannot read: each worker reports times from its *own*
``time.monotonic()`` domain, which is not even the same epoch as another
worker's (monotonic clocks start at an arbitrary zero).  This module
turns those disjoint per-worker observations into one coherent picture:

* :class:`FleetTraceCollector` — the host-side record sink the
  :class:`~repro.fleet.backends.RemoteBackend` feeds as it dispatches,
  requeues and steals units.  Records are plain dicts so the merge is a
  pure function over JSON-safe data.
* :func:`estimate_offsets` — NTP's classic two-sample clock sync: every
  dispatch carries four timestamps (host send, worker receive, worker
  reply, host arrive), giving ``offset = ((t_recv - t_send) +
  (t_reply - t_arrive)) / 2`` with error bounded by half the round-trip
  time.  The minimum-RTT exchange per worker gives the tightest bound,
  exactly as NTP selects its sample.
* :func:`merge_timeline` — folds host spans and offset-corrected worker
  spans into one Chrome/Perfetto trace (``repro.fleet.trace/1``): host
  dispatch/requeue/steal activity on process 0 with one thread row per
  worker, each worker's unit executions on its own process track.  The
  merge is deterministic: events sort by content, timestamps normalize
  to the sweep's first event, and the document serializes canonically —
  so two merges over the same records are byte-identical regardless of
  the thread interleaving that produced them.
* :func:`aggregate_snapshots` — sums a fleet of ``repro.telemetry/1``
  snapshots (scraped from each worker's ``GET /v1/metrics``) into one
  valid snapshot, for ``repro status --fleet`` and the ``fleet`` section
  of a ``repro.sweep/2`` document.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.schema import FLEET_TRACE_SCHEMA, TELEMETRY_SCHEMA
from repro.util.canon import canonical_json

#: Seconds → Chrome-trace microseconds.
_US = 1e6


class FleetTraceCollector:
    """Host-side sink for per-unit dispatch/outcome records.

    The RemoteBackend's pump threads call the ``record_*`` methods
    concurrently; each appends one plain dict under a lock.  Nothing is
    interpreted at record time — :func:`merge_timeline` does all the
    work later, so a dropped collector costs the sweep nothing but the
    appends.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: List[Dict[str, Any]] = []
        #: The sweep id the backend stamped on this run's dispatches.
        self.sweep: Optional[str] = None

    def _add(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)

    def record_dispatch(self, worker: str, index: int, attempt: int,
                        seq: int, t_send: float, t_arrive: float,
                        doc: Dict[str, Any]) -> None:
        """A unit round-trip completed (successfully) on ``worker``.

        ``doc`` is the worker's response: its ``telemetry`` section holds
        the worker-clock receive/reply anchors and its ``exec`` section
        the owner's execution window (both optional — older workers
        simply yield records without offset anchors or unit spans).
        """
        telemetry = doc.get("telemetry") or {}
        exec_window = doc.get("exec") or {}
        self._add({
            "kind": "dispatch",
            "worker": worker, "index": index, "attempt": attempt,
            "seq": seq, "t_send": t_send, "t_arrive": t_arrive,
            "t_recv": telemetry.get("t_recv"),
            "t_reply": telemetry.get("t_reply"),
            "t0": exec_window.get("t0"), "t1": exec_window.get("t1"),
            "error": doc.get("error"),
        })

    def record_failure(self, worker: str, index: int, attempt: int,
                       t_send: float, t_arrive: float, error: str) -> None:
        """A dispatch to ``worker`` failed at the transport level."""
        self._add({
            "kind": "failure",
            "worker": worker, "index": index, "attempt": attempt,
            "t_send": t_send, "t_arrive": t_arrive, "error": error,
        })

    def record_requeue(self, worker: str, index: int, attempt: int,
                       t: float) -> None:
        """The host put a failed unit back on the shared queue."""
        self._add({"kind": "requeue", "worker": worker, "index": index,
                   "attempt": attempt, "t": t})

    def record_steal(self, worker: str, index: int, attempt: int,
                     t: float) -> None:
        """``worker`` picked up a unit another worker failed to finish."""
        self._add({"kind": "steal", "worker": worker, "index": index,
                   "attempt": attempt, "t": t})

    def record_breaker(self, worker: str, state: str, t: float) -> None:
        """``worker``'s circuit breaker changed state (host-side view)."""
        self._add({"kind": "breaker", "worker": worker, "state": state,
                   "t": t})


# --------------------------------------------------------------------- #
# clock-offset estimation
# --------------------------------------------------------------------- #
def estimate_offsets(records: Sequence[Dict[str, Any]]
                     ) -> Dict[str, Dict[str, Optional[float]]]:
    """Per-worker clock offset from the minimum-RTT dispatch exchange.

    For each dispatch carrying worker anchors, the NTP estimate is::

        offset = ((t_recv - t_send) + (t_reply - t_arrive)) / 2
        rtt    = (t_arrive - t_send) - (t_reply - t_recv)

    where ``offset`` maps worker time into host time as
    ``t_host = t_worker - offset`` and the estimate's error is bounded
    by ``rtt / 2``.  The sample with the smallest RTT per worker wins
    (ties broken by earliest send, so the choice is deterministic).
    Workers that never returned anchors get ``{"offset": 0.0,
    "rtt": None}`` — their spans merge uncorrected, which is the best
    available statement.
    """
    best: Dict[str, Tuple[float, float, float]] = {}
    workers = set()
    for record in records:
        worker = record.get("worker")
        if not worker:
            continue
        workers.add(worker)
        if record.get("kind") != "dispatch":
            continue
        t_send, t_arrive = record.get("t_send"), record.get("t_arrive")
        t_recv, t_reply = record.get("t_recv"), record.get("t_reply")
        if None in (t_send, t_arrive, t_recv, t_reply):
            continue
        rtt = (t_arrive - t_send) - (t_reply - t_recv)
        if rtt < 0.0:
            rtt = 0.0
        offset = ((t_recv - t_send) + (t_reply - t_arrive)) / 2.0
        key = (rtt, t_send, offset)
        if worker not in best or key < best[worker]:
            best[worker] = key
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for worker in sorted(workers):
        if worker in best:
            rtt, _, offset = best[worker]
            out[worker] = {"offset": offset, "rtt": rtt}
        else:
            out[worker] = {"offset": 0.0, "rtt": None}
    return out


# --------------------------------------------------------------------- #
# timeline merge
# --------------------------------------------------------------------- #
def _event_sort_key(event: Dict[str, Any]) -> Tuple:
    return (event.get("ts", 0.0), event.get("pid", 0), event.get("tid", 0),
            event.get("name", ""), canonical_json(event.get("args", {})))


def merge_timeline(records: Sequence[Dict[str, Any]],
                   sweep: Optional[str] = None) -> Dict[str, Any]:
    """One Chrome/Perfetto timeline from a sweep's fleet trace records.

    Track layout: process 0 is the host, with one named thread row per
    worker showing what the host did *toward* that worker (dispatch
    round-trips as ``X`` spans, requeues and steals as instants);
    processes 1..N are the workers, sorted by URL, each showing its unit
    executions mapped into host time via :func:`estimate_offsets`.
    Dead-worker hand-over therefore reads directly off the host track: a
    ``dispatch`` span that ends in failure, a ``requeue`` instant, then
    a ``steal`` instant on the surviving worker's row.

    Determinism contract (test-enforced): the output depends only on the
    *set* of records — events are sorted by content, all timestamps are
    normalized so the earliest is 0, and unit spans are deduplicated by
    ``(worker, index, t0)`` so a dedup-joined retry (which returns the
    owner's execution window verbatim) adds no second span.
    """
    offsets = estimate_offsets(records)
    workers = sorted(offsets)
    pid_of = {worker: pid for pid, worker in enumerate(workers, start=1)}

    spans: List[Dict[str, Any]] = []
    seen_units = set()
    for record in records:
        worker = record.get("worker")
        pid = pid_of.get(worker)
        if pid is None:
            continue
        kind = record.get("kind")
        index, attempt = record.get("index"), record.get("attempt")
        if kind == "dispatch":
            spans.append({
                "name": f"dispatch unit {index}",
                "ph": "X", "pid": 0, "tid": pid,
                "ts": record["t_send"],
                "dur": max(0.0, record["t_arrive"] - record["t_send"]),
                "args": {"worker": worker, "index": index,
                         "attempt": attempt, "seq": record.get("seq")},
            })
            offset = offsets[worker]["offset"] or 0.0
            t0, t1 = record.get("t0"), record.get("t1")
            unit_key = (worker, index, t0)
            if t0 is not None and t1 is not None \
                    and unit_key not in seen_units:
                seen_units.add(unit_key)
                spans.append({
                    "name": f"unit {index}",
                    "ph": "X", "pid": pid, "tid": 0,
                    "ts": t0 - offset,
                    "dur": max(0.0, t1 - t0),
                    "args": {"worker": worker, "index": index,
                             "attempt": attempt},
                })
        elif kind == "failure":
            spans.append({
                "name": f"failed dispatch unit {index}",
                "ph": "X", "pid": 0, "tid": pid,
                "ts": record["t_send"],
                "dur": max(0.0, record["t_arrive"] - record["t_send"]),
                "args": {"worker": worker, "index": index,
                         "attempt": attempt,
                         "error": record.get("error")},
            })
        elif kind in ("requeue", "steal"):
            spans.append({
                "name": f"{kind} unit {index}",
                "ph": "i", "pid": 0, "tid": pid, "s": "t",
                "ts": record["t"],
                "args": {"worker": worker, "index": index,
                         "attempt": attempt},
            })
        elif kind == "breaker":
            spans.append({
                "name": f"breaker {record.get('state')}",
                "ph": "i", "pid": 0, "tid": pid, "s": "t",
                "ts": record["t"],
                "args": {"worker": worker,
                         "state": record.get("state")},
            })

    # Normalize: the sweep's earliest event is t=0, everything in µs.
    t_min = min((span["ts"] for span in spans), default=0.0)
    for span in spans:
        span["ts"] = (span["ts"] - t_min) * _US
        if "dur" in span:
            span["dur"] = span["dur"] * _US
    spans.sort(key=_event_sort_key)

    meta: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "host"},
    }]
    for worker in workers:
        pid = pid_of[worker]
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "args": {"name": f"worker {worker}"}})
        meta.append({"name": "thread_name", "ph": "M", "pid": 0, "tid": pid,
                     "args": {"name": f"to {worker}"}})

    return {
        "schema": FLEET_TRACE_SCHEMA,
        "sweep": sweep,
        "offsets": offsets,
        "displayTimeUnit": "ms",
        "traceEvents": meta + spans,
    }


# --------------------------------------------------------------------- #
# fleet metrics aggregation
# --------------------------------------------------------------------- #
def aggregate_snapshots(snapshots: Sequence[Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Sum ``repro.telemetry/1`` snapshots into one valid snapshot.

    Counters and gauges sum per (name, label-values) series; histograms
    sum per-bucket cumulative counts, totals and sums (bucket bounds
    must agree — they are fixed at metric creation, so a mismatch means
    genuinely incompatible fleets and raises).  Output families and
    samples are sorted, so the aggregate obeys the same deterministic-
    exposition contract as a single registry's snapshot.
    """
    families: Dict[str, Dict[str, Any]] = {}
    merged: Dict[str, Dict[Tuple[str, ...], Dict[str, Any]]] = {}
    for snapshot in snapshots:
        for family in snapshot.get("metrics", ()):
            name = family.get("name")
            existing = families.get(name)
            if existing is None:
                families[name] = {
                    "name": name,
                    "type": family.get("type"),
                    "help": family.get("help", ""),
                    "label_names": list(family.get("label_names", ())),
                }
                merged[name] = {}
            else:
                if existing["type"] != family.get("type") or \
                        existing["label_names"] != \
                        list(family.get("label_names", ())):
                    raise ValueError(
                        f"metric {name} disagrees across the fleet: "
                        f"{existing['type']}{existing['label_names']} vs "
                        f"{family.get('type')}"
                        f"{list(family.get('label_names', ()))}")
                if not existing["help"]:
                    existing["help"] = family.get("help", "")
            label_names = families[name]["label_names"]
            for sample in family.get("samples", ()):
                labels = sample.get("labels", {})
                key = tuple(str(labels.get(k, "")) for k in label_names)
                slot = merged[name].get(key)
                if families[name]["type"] == "histogram":
                    if slot is None:
                        merged[name][key] = {
                            "labels": dict(labels),
                            "buckets": [dict(b) for b in
                                        sample.get("buckets", ())],
                            "count": sample.get("count", 0),
                            "sum": sample.get("sum", 0.0),
                        }
                        continue
                    bounds = [b["le"] for b in slot["buckets"]]
                    if bounds != [b["le"] for b in
                                  sample.get("buckets", ())]:
                        raise ValueError(
                            f"histogram {name} bucket bounds disagree "
                            "across the fleet")
                    for mine, theirs in zip(slot["buckets"],
                                            sample.get("buckets", ())):
                        mine["count"] += theirs.get("count", 0)
                    slot["count"] += sample.get("count", 0)
                    slot["sum"] += sample.get("sum", 0.0)
                else:
                    if slot is None:
                        merged[name][key] = {
                            "labels": dict(labels),
                            "value": sample.get("value", 0.0),
                        }
                    else:
                        slot["value"] += sample.get("value", 0.0)
    return {
        "schema": TELEMETRY_SCHEMA,
        "metrics": [
            {
                "name": name,
                "type": families[name]["type"],
                "help": families[name]["help"],
                "label_names": families[name]["label_names"],
                "samples": [merged[name][key]
                            for key in sorted(merged[name])],
            }
            for name in sorted(families)
        ],
    }
