"""Thread-safe runtime metrics: counters, gauges, histograms.

The serve/fleet layers need live operational counters (ROADMAP items 1,
3 and the self-adaptive runtime of item 5 all consume them), but nothing
here may perturb a simulation: metrics are host-side observation only,
they never enter a request's cache key, a result document, or an RNG
stream.  The registry is therefore deliberately boring — plain dicts
behind locks — and deliberately deterministic where it matters:

* **Deterministic exposition order.**  Families render sorted by metric
  name and series sorted by label-value tuple, and the JSON snapshot is
  serialized through :func:`repro.util.canon.canonical_json`, so two
  registries holding equal counts produce byte-identical snapshots.
  (The *values* are operational and wall-clock-dependent; the *layout*
  never is.)
* **Fixed histogram bucket bounds.**  Buckets are chosen at metric
  creation and immutable, so scrapes are comparable across the life of
  a process and across processes.
* **Two expositions, one truth.**  :meth:`MetricsRegistry.render_prometheus`
  emits the Prometheus text format (``# HELP``/``# TYPE`` + samples);
  :meth:`MetricsRegistry.snapshot` emits the schema-versioned
  ``repro.telemetry/1`` JSON document validated by
  :func:`repro.obs.schema.validate_telemetry`.  Both read the same
  series under the same locks.

Instrument lookup is get-or-create: ``registry.counter(name, ...)``
returns the existing family when one is already registered under
``name`` (and raises if the existing family has a different type or
label names — a silent mismatch would split one logical counter across
two series).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Fixed latency bucket bounds (seconds) shared by every duration
#: histogram in the repo — sub-millisecond cache hits through multi-minute
#: paper-scale sweeps.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample spelling: integral values render without ``.0``."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
    return "".join(out)


class _Family:
    """One named metric family: shared name/help/label schema, N series."""

    kind = ""

    def __init__(self, name: str, help: str,
                 label_names: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels "
                f"{list(self.label_names)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.label_names)

    # Rendered forms -------------------------------------------------- #
    def _sorted_series(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._series.items())

    def sample_docs(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def prometheus_lines(self) -> List[str]:
        raise NotImplementedError

    def _label_text(self, key: Tuple[str, ...]) -> str:
        if not self.label_names:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, key))
        return "{" + pairs + "}"

    def _label_doc(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))


class Counter(_Family):
    """A monotonically increasing count (events since process start)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def sample_docs(self) -> List[Dict[str, Any]]:
        return [{"labels": self._label_doc(key), "value": value}
                for key, value in self._sorted_series()]

    def prometheus_lines(self) -> List[str]:
        return [f"{self.name}{self._label_text(key)} {_format_value(value)}"
                for key, value in self._sorted_series()]


class Gauge(Counter):
    """An instantaneous level (queue depth, in-flight requests)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)


class Histogram(_Family):
    """A distribution over fixed, immutable bucket bounds.

    Series state is ``[per-bucket counts..., overflow]`` plus running sum
    and count; cumulative bucket counts are computed at exposition time,
    matching the Prometheus ``le``-cumulative convention (the implicit
    ``+Inf`` bucket equals the total count).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...],
                 buckets: Sequence[float]) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing, "
                f"got {list(buckets)}")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0, "count": 0}
            series["counts"][index] += 1
            series["sum"] += float(value)
            series["count"] += 1

    def _cumulative(self, series: Dict[str, Any]) -> List[int]:
        out, running = [], 0
        for count in series["counts"][:-1]:
            running += count
            out.append(running)
        return out

    def sample_docs(self) -> List[Dict[str, Any]]:
        docs = []
        for key, series in self._sorted_series():
            docs.append({
                "labels": self._label_doc(key),
                "buckets": [
                    {"le": bound, "count": cum}
                    for bound, cum in zip(self.buckets,
                                          self._cumulative(series))
                ],
                "count": series["count"],
                "sum": series["sum"],
            })
        return docs

    def prometheus_lines(self) -> List[str]:
        lines = []
        for key, series in self._sorted_series():
            labels = list(zip(self.label_names, key))
            for bound, cum in zip(self.buckets, self._cumulative(series)):
                pairs = labels + [("le", _format_value(bound))]
                text = ",".join(f'{n}="{_escape_label(v)}"'
                                for n, v in pairs)
                lines.append(f"{self.name}_bucket{{{text}}} {cum}")
            pairs = labels + [("le", "+Inf")]
            text = ",".join(f'{n}="{_escape_label(v)}"' for n, v in pairs)
            lines.append(f"{self.name}_bucket{{{text}}} {series['count']}")
            suffix = self._label_text(key)
            lines.append(
                f"{self.name}_sum{suffix} {_format_value(series['sum'])}")
            lines.append(f"{self.name}_count{suffix} {series['count']}")
        return lines


class MetricsRegistry:
    """A set of named metric families with deterministic exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # Instrument lookup (get-or-create) ------------------------------- #
    def _get_or_create(self, cls, name: str, help: str,
                       labels: Sequence[str], **kwargs: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(
                    f"invalid label name {label!r} on metric {name}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (type(family) is not cls
                        or family.label_names != label_names):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{family.kind}{list(family.label_names)}; cannot "
                        f"re-register as {cls.kind}{list(label_names)}")
                return family
            family = cls(name, help, label_names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # Exposition ------------------------------------------------------ #
    def _sorted_families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name]
                    for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """The ``repro.telemetry/1`` document: every family, every series,
        in deterministic (name, label-tuple) order."""
        from repro.obs.schema import TELEMETRY_SCHEMA

        return {
            "schema": TELEMETRY_SCHEMA,
            "metrics": [
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "label_names": list(family.label_names),
                    "samples": family.sample_docs(),
                }
                for family in self._sorted_families()
            ],
        }

    def snapshot_text(self) -> str:
        """The snapshot serialized canonically (byte-stable layout)."""
        from repro.util.canon import canonical_json

        return canonical_json(self.snapshot(), indent=2) + "\n"

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (version 0.0.4)."""
        lines: List[str] = []
        for family in self._sorted_families():
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family.prometheus_lines())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family (tests only — production counters are
        process-lifetime monotonic)."""
        with self._lock:
            self._families.clear()


#: The process-wide default registry: serve, fleet and the CLI all
#: instrument against this unless handed an explicit registry, so one
#: ``GET /v1/metrics`` scrape sees the whole process.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT


# --------------------------------------------------------------------- #
# Prometheus text parsing (round-trip tests, `repro status`)
# --------------------------------------------------------------------- #
def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse exposition text into ``{"types": {...}, "samples": {...}}``.

    ``samples`` maps ``(name, ((label, value), ...))`` — labels sorted by
    name — to the numeric sample value, so equality is insensitive to
    label ordering.  A strict inverse of :meth:`render_prometheus` for
    the subset of the format this module emits.
    """
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        labels: List[Tuple[str, str]] = []
        name = name_part
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            body = rest.rstrip("}")
            for match in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)='
                                     r'"((?:[^"\\]|\\.)*)"', body):
                labels.append((match.group(1),
                               _unescape_label(match.group(2))))
        value = float("inf") if value_part == "+Inf" else float(value_part)
        samples[(name, tuple(sorted(labels)))] = value
    return {"types": types, "samples": samples}


def sample_value(parsed: Dict[str, Any], name: str,
                 **labels: Any) -> Optional[float]:
    """The parsed sample for ``name`` with exactly ``labels`` (or None)."""
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
    return parsed["samples"].get(key)
