"""The one-shot text dashboard behind ``repro status <url>``.

Renders a running server's ``GET /v1/health`` document and
``GET /v1/metrics?format=json`` snapshot as a few fixed sections —
jobs, latency, cache, HTTP traffic, fleet — so an operator can read a
server's state in one terminal screen without a metrics stack.  Pure
formatting: no network, no mutation, trivially testable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _family(snapshot: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    for entry in snapshot.get("metrics", ()):
        if entry.get("name") == name:
            return entry
    return None


def _total(snapshot: Dict[str, Any], name: str, **labels: Any) -> float:
    """Sum of a family's samples whose labels are a superset of ``labels``."""
    family = _family(snapshot, name)
    if family is None:
        return 0.0
    want = {k: str(v) for k, v in labels.items()}
    total = 0.0
    for sample in family.get("samples", ()):
        got = sample.get("labels", {})
        if all(got.get(k) == v for k, v in want.items()):
            total += sample.get("value", sample.get("count", 0))
    return total


def _histogram_summary(snapshot: Dict[str, Any], name: str,
                       **labels: Any) -> Optional[str]:
    """``count N, mean X s, p95 <= B s`` from a histogram sample."""
    family = _family(snapshot, name)
    if family is None:
        return None
    want = {k: str(v) for k, v in labels.items()}
    for sample in family.get("samples", ()):
        if sample.get("labels", {}) != want:
            continue
        count = sample.get("count", 0)
        if not count:
            return None
        mean = sample.get("sum", 0.0) / count
        p95 = "> largest bucket"
        threshold = 0.95 * count
        for bucket in sample.get("buckets", ()):
            if bucket["count"] >= threshold:
                p95 = f"<= {bucket['le']:g} s"
                break
        return f"count {count}, mean {mean:.4g} s, p95 {p95}"
    return None


def _ratio(hits: float, misses: float) -> str:
    total = hits + misses
    return f"{100.0 * hits / total:.1f}%" if total else "n/a"


def _bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.0f} {unit}" if unit == "B" \
                else f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def render_dashboard(url: str, health: Dict[str, Any],
                     snapshot: Dict[str, Any]) -> str:
    """The ``repro status`` text: health + metrics in one screen."""
    lines: List[str] = []
    uptime = health.get("uptime")
    head = f"repro serve @ {url} — status {health.get('status', '?')}"
    if uptime is not None:
        head += f", uptime {uptime:.0f}s"
    head += (f", workers {health.get('workers', '?')} "
             f"(sweep fan-out {health.get('sweep_jobs', '?')})")
    lines.append(head)
    lines.append("")

    jobs = health.get("jobs", {})
    counters = health.get("counters", {})
    lines.append(
        "jobs      "
        + "  ".join(f"{state} {jobs.get(state, 0)}"
                    for state in ("queued", "running", "done", "failed"))
        + f"   (submitted {counters.get('submitted', 0)}, "
          f"completed {counters.get('completed', 0)}, "
          f"failed {counters.get('failed', 0)})")
    queue = health.get("queue")
    if queue:
        bound = queue.get("max_queue", 0)
        lines.append(
            f"queue     bound {bound if bound else 'unbounded'}  "
            f"shed {queue.get('shed', 0)}  "
            f"shed streak {queue.get('shed_streak', 0)}")
    for kind in ("run", "sweep", "chaos"):
        summary = _histogram_summary(snapshot, "repro_job_latency_seconds",
                                     kind=kind)
        if summary:
            lines.append(f"latency   {kind}: {summary}")

    cache = health.get("cache", {})
    lines.append(
        f"cache     hits {cache.get('hits', 0)}  "
        f"misses {cache.get('misses', 0)}  "
        f"hit ratio {_ratio(cache.get('hits', 0), cache.get('misses', 0))}  "
        f"stores {cache.get('stores', 0)}  "
        f"evictions {cache.get('evictions', 0)}")
    lines.append(
        f"          entries {cache.get('entries', 0)}  "
        f"disk {cache.get('disk_entries', 0)} entries / "
        f"{_bytes(cache.get('disk_bytes', 0))}")

    requests = _family(snapshot, "repro_http_requests_total")
    in_flight = _total(snapshot, "repro_http_requests_in_flight")
    total_requests = _total(snapshot, "repro_http_requests_total")
    lines.append(f"http      requests {total_requests:g}  "
                 f"in flight {in_flight:g}")
    if requests is not None:
        for sample in requests.get("samples", ()):
            labels = sample.get("labels", {})
            lines.append(
                f"          {labels.get('method', '?'):<4} "
                f"{labels.get('route', '?'):<22} "
                f"[{labels.get('status', '?')}] {sample.get('value', 0):g}")

    dispatched = _total(snapshot, "repro_fleet_units_dispatched_total")
    if dispatched:
        lines.append(
            "fleet     units: "
            f"dispatched {dispatched:g}  "
            f"completed {_total(snapshot, 'repro_fleet_units_completed_total'):g}  "
            f"failed {_total(snapshot, 'repro_fleet_units_failed_total'):g}  "
            f"timed out {_total(snapshot, 'repro_fleet_units_timed_out_total'):g}  "
            f"retried {_total(snapshot, 'repro_fleet_units_retried_total'):g}  "
            f"resumed {_total(snapshot, 'repro_fleet_units_resumed_total'):g}; "
            f"pool restarts "
            f"{_total(snapshot, 'repro_fleet_pool_restarts_total'):g}")
        corrupt = _total(snapshot, "repro_fleet_corrupt_responses_total")
        quarantined = _total(snapshot,
                             "repro_fleet_checkpoint_quarantined_total")
        drained = _total(snapshot, "repro_fleet_drained_dispatches_total")
        breaker = _total(snapshot, "repro_fleet_breaker_transitions_total")
        probes = _total(snapshot, "repro_fleet_health_probes_total")
        if corrupt or quarantined or drained or breaker or probes:
            lines.append(
                "          hardening: "
                f"corrupt rejected {corrupt:g}  "
                f"quarantined {quarantined:g}  "
                f"drained {drained:g}  "
                f"breaker transitions {breaker:g}  "
                f"probes {probes:g}")
    return "\n".join(lines)


def render_fleet_dashboard(entries: List[Dict[str, Any]]) -> str:
    """The ``repro status --fleet`` text: one row per scraped worker.

    ``entries`` is a list of ``{"url", "health", "metrics"}`` dicts (the
    shape :meth:`RemoteBackend.scrape_fleet` produces); an unreachable
    worker has ``metrics: None`` plus an ``error`` string and renders as
    a ``DOWN`` row instead of being dropped.
    """
    lines: List[str] = []
    lines.append(f"repro fleet — {len(entries)} workers")
    lines.append("")
    total_units = 0.0
    total_joins = 0.0
    for entry in entries:
        url = entry.get("url", "?")
        snapshot = entry.get("metrics")
        if snapshot is None:
            lines.append(f"  {url}  DOWN  ({entry.get('error', 'no data')})")
            continue
        units = _total(snapshot, "repro_worker_units_executed_total")
        joins = _total(snapshot, "repro_worker_duplicates_joined_total")
        total_units += units
        total_joins += joins
        health = entry.get("health") or {}
        row = (f"  {url}  {health.get('status', 'up')}  "
               f"units {units:g}  joined {joins:g}")
        refusals = _total(snapshot, "repro_worker_drain_refusals_total")
        disconnects = _total(snapshot, "repro_client_disconnects_total")
        evicted = _total(snapshot, "repro_worker_ledger_evicted_sweeps_total")
        if refusals:
            row += f"  drain refusals {refusals:g}"
        if disconnects:
            row += f"  disconnects {disconnects:g}"
        if evicted:
            row += f"  ledger evictions {evicted:g}"
        summary = _histogram_summary(snapshot, "repro_worker_unit_seconds")
        if summary:
            row += f"  ({summary})"
        lines.append(row)
    lines.append("")
    lines.append(f"total     units {total_units:g}  joined {total_joins:g}")
    return "\n".join(lines)
