"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        execute one application configuration and print its metrics
``sweep``      locality-level sweep for one app/machine (a paper table)
``profile``    run with the profiler: comm matrix, hot objects, utilization,
               critical path, per-optimization attribution
``bench-diff`` compare two bench/profile snapshots; nonzero on regression
``chaos``      run under a seeded fault plan; verify coherence/determinism
``chaos-proxy`` fault-injecting HTTP proxy in front of a repro worker
``chaos-fleet`` sweep through chaos proxies; verify bytes survive
``analyze``    static concurrency analysis of an application's program
``check``      validate access specs, detect races, verify determinism
``describe``   list applications, machines, optimization switches
``serve``      run the HTTP job server (async queue + result cache)
``status``     one-shot text dashboard for a running serve instance
``worker``     run a fleet unit-executor (remote sweep worker)

Exit codes: 0 success, 1 a verification/regression failed, 2 bad
arguments or configuration, 3 the simulation itself raised (coherence
violation, deadlock, exhausted retry budget, ``--max-sim-time`` guard).

The handlers here are thin: the experiment logic lives behind the frozen
request types of :mod:`repro.serve` (``RunRequest``/``SweepRequest``/
``ChaosRequest`` + :mod:`repro.serve.api`), which the HTTP service
executes through the same code path.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import ALL_APPLICATIONS, MachineKind
from repro.lab import (
    PAPER_PROCS,
    levels_for,
    make_application,
    render_table,
    rows_to_series,
)
from repro.errors import (
    ExperimentError,
    JadeError,
    MachineError,
    SimulationError,
)
from repro.lab.analysis import summarize


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--app", required=True, choices=sorted(ALL_APPLICATIONS))
    parser.add_argument("--machine", default="ipsc860",
                        choices=["dash", "ipsc860"])
    parser.add_argument("--scale", default="paper", choices=["tiny", "paper"])


def cmd_run(args) -> int:
    from repro.serve import api
    from repro.serve.requests import run_request_from_args

    try:
        request = run_request_from_args(args)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_out:
        from repro.sim.trace import Tracer

        try:
            # Fail before the run, not after: the file is rewritten below.
            open(args.trace_out, "w").close()
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 2
        tracer = Tracer(enabled=True)

    want_profile = args.profile or args.profile_json
    flight = None
    if getattr(args, "flight", False):
        if not want_profile:
            print("error: --flight requires --profile or --profile-json "
                  "(the flight series ships in the profile snapshot)",
                  file=sys.stderr)
            return 2
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
    try:
        if want_profile:
            metrics, profile = api.profile_metrics(request, tracer=tracer,
                                                   flight=flight)
        else:
            profile = None
            metrics = api.run_metrics(request, tracer=tracer)
    except (SimulationError, JadeError, MachineError) as exc:
        # SimTimeLimitError lands here too (it is a SimulationError first):
        # exit 3 means the simulation itself raised, not that the request
        # was malformed.
        print(f"error: simulation failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    except ExperimentError as exc:
        print(f"error: {exc}\nvalid applications: "
              f"{', '.join(sorted(ALL_APPLICATIONS))}", file=sys.stderr)
        return 2
    print(f"{args.app} on {args.machine}, {args.procs} processors "
          f"[{request.options().describe()}]")
    for key, value in metrics.summary().items():
        print(f"  {key:<14} {value:.6g}")
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"  trace          {len(tracer)} events -> {args.trace_out}")
    if profile is not None:
        if args.profile:
            print()
            print(profile.format())
        if args.profile_json:
            from repro.obs.snapshot import write_profile_snapshot

            try:
                write_profile_snapshot(args.profile_json, profile)
            except (ValueError, OSError) as exc:
                print(f"error: cannot write snapshot to "
                      f"{args.profile_json}: {exc}", file=sys.stderr)
                return 2
            print(f"  profile        -> {args.profile_json}")
    return 0


def cmd_sweep(args) -> int:
    from repro.fleet import default_jobs
    from repro.lab import locality_sweep
    from repro.serve import api
    from repro.serve.requests import SweepRequest

    machine = MachineKind(args.machine)
    procs = args.procs or PAPER_PROCS
    jobs = default_jobs() if args.jobs is None else args.jobs
    # Heartbeats (sweep_progress events) only appear when asked for:
    # the default warning level keeps plain sweeps byte-quiet.
    from repro.telemetry.log import configure_from_args

    configure_from_args(args, default_level="warning")
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(f"error: --timeout must be positive, got {args.timeout}",
              file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}",
              file=sys.stderr)
        return 2
    if args.workers and args.backend != "remote":
        print("error: --workers only applies to --backend remote",
              file=sys.stderr)
        return 2
    if args.trace_out and args.backend != "remote":
        print("error: --trace-out merges a fleet timeline and requires "
              "--backend remote (single runs trace via `repro run "
              "--trace-out`)", file=sys.stderr)
        return 2
    if args.fleet and args.backend != "remote":
        print("error: --fleet scrapes remote workers and requires "
              "--backend remote", file=sys.stderr)
        return 2
    if args.fleet and not args.json:
        print("error: --fleet embeds worker telemetry in the sweep "
              "snapshot and requires --json PATH", file=sys.stderr)
        return 2
    backend = None
    trace_collector = None
    if args.backend == "remote":
        if not args.workers:
            print("error: --backend remote requires at least one "
                  "--workers URL (start one with `repro worker`)",
                  file=sys.stderr)
            return 2
        from repro.fleet import RemoteBackend

        if args.trace_out:
            from repro.telemetry.fleet import FleetTraceCollector

            try:
                open(args.trace_out, "w").close()
            except OSError as exc:
                print(f"error: cannot write trace to {args.trace_out}: "
                      f"{exc}", file=sys.stderr)
                return 2
            trace_collector = FleetTraceCollector()
        backend = RemoteBackend(args.workers, trace=trace_collector)
    outcome = None
    try:
        request = SweepRequest(app=args.app, machine=args.machine,
                               scale=args.scale, procs=tuple(procs))
        if (jobs > 1 or args.partial or backend is not None
                or args.checkpoint):
            policy = api.ExecutionPolicy(jobs=jobs, timeout=args.timeout,
                                         retries=args.retries)
            rows, outcome = api.sweep_rows(request, policy,
                                           partial=args.partial,
                                           backend=backend,
                                           checkpoint=args.checkpoint)
        else:
            rows = locality_sweep(args.app, machine, procs, args.scale)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    degraded = outcome is not None and not outcome.ok
    if degraded:
        # Partial result: the full level x procs tables would have holes,
        # so report completed rows individually plus every failure.
        print(f"sweep degraded: {outcome.completed}/{len(outcome.metrics)} "
              f"units completed, {len(outcome.failures)} failed"
              + (f", {outcome.pool_restarts} pool restart(s)"
                 if outcome.pool_restarts else ""))
        for row in rows:
            print(f"  {row.level:>14} p{row.procs:<4} "
                  f"elapsed {row.metrics.elapsed:.6g} s")
        for failure in outcome.failures:
            print(f"  FAILED {failure.describe()}", file=sys.stderr)
    else:
        series = rows_to_series(rows, lambda r: r.metrics.elapsed)
        print(render_table(
            f"{args.app} on {args.machine}: execution times (s)", procs,
            series))
        pct = rows_to_series(rows, lambda r: r.metrics.task_locality_pct)
        print()
        print(render_table(
            f"{args.app} on {args.machine}: task locality (%)", procs, pct,
            fmt=lambda v: f"{v:.1f}"))
    if args.json:
        try:
            if args.checkpoint and not degraded and not args.fleet:
                # Streaming merge: render the snapshot row-by-row from
                # the journal (byte-identical to the in-memory path)
                # instead of holding every unit's metrics at once.
                from repro.fleet import sweep_units
                from repro.fleet.checkpoint import (
                    CheckpointJournal,
                    write_sweep_snapshot_stream,
                )

                units = sweep_units(args.app, machine, list(procs),
                                    args.scale)
                write_sweep_snapshot_stream(
                    args.json, args.app, args.machine, args.scale, units,
                    CheckpointJournal(args.checkpoint))
            else:
                from repro.obs.snapshot import dump_json

                if args.fleet:
                    # repro.sweep/2: the same rows plus the scraped
                    # per-worker telemetry and the host's own counters.
                    from repro.fleet import fleet_sweep_doc
                    from repro.telemetry.metrics import default_registry

                    fleet = backend.scrape_fleet()
                    fleet["host"] = default_registry().snapshot()
                    doc = fleet_sweep_doc(args.app, args.machine,
                                          args.scale, rows, fleet)
                else:
                    from repro.fleet import sweep_snapshot_doc

                    doc = sweep_snapshot_doc(args.app, args.machine,
                                             args.scale, rows)
                with open(args.json, "w", encoding="utf-8") as fh:
                    fh.write(dump_json(doc) + "\n")
        except (ValueError, OSError, ExperimentError) as exc:
            print(f"error: cannot write sweep JSON to {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"\nsweep JSON -> {args.json}")
    if trace_collector is not None:
        from repro.obs.snapshot import dump_json
        from repro.telemetry.fleet import merge_timeline

        timeline = merge_timeline(trace_collector.records,
                                  sweep=trace_collector.sweep)
        try:
            with open(args.trace_out, "w", encoding="utf-8") as fh:
                fh.write(dump_json(timeline) + "\n")
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 2
        spans = sum(e.get("ph") != "M" for e in timeline["traceEvents"])
        print(f"fleet trace: {spans} events -> {args.trace_out}")
    return 1 if degraded else 0


def cmd_analyze(args) -> int:
    app = make_application(args.app, args.scale)
    program = app.build(args.procs, machine=MachineKind(args.machine))
    print(f"{args.app} ({args.scale}, {args.procs}-way decomposition)")
    for key, value in summarize(program).items():
        print(f"  {key:<22} {value:.6g}")
    return 0


def cmd_describe(args) -> int:
    if getattr(args, "json", False):
        from repro.serve.api import describe_catalog
        from repro.util.canon import canonical_json

        # The exact catalog the service returns from GET /v1/describe.
        print(canonical_json(describe_catalog(), indent=2))
        return 0
    print("applications:")
    for name in sorted(ALL_APPLICATIONS):
        app = make_application(name, "tiny")
        levels = ", ".join(l.value for l in levels_for(name))
        print(f"  {name:<10} levels: {levels}")
    print("machines: dash (shared memory), ipsc860 (message passing),")
    print("          workstations (heterogeneous farm; library API only)")
    print("optimization switches: replication, adaptive_broadcast,")
    print("          concurrent_fetches, target_tasks_per_processor,")
    print("          eager_update, work_free  (see RuntimeOptions)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.runtime.options import LocalityLevel

    run_p = sub.add_parser("run", help="execute one configuration")
    _add_common(run_p)
    run_p.add_argument("--procs", type=int, default=8)
    run_p.add_argument("--level", default="locality",
                       choices=[l.value for l in LocalityLevel])
    run_p.add_argument("--no-broadcast", action="store_true")
    run_p.add_argument("--no-replication", action="store_true")
    run_p.add_argument("--serial-fetches", action="store_true")
    run_p.add_argument("--target-tasks", type=int, default=1)
    run_p.add_argument("--eager-update", action="store_true")
    run_p.add_argument("--work-free", action="store_true")
    run_p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="record a trace: Chrome about:tracing JSON for "
                            "*.json, JSON Lines otherwise")
    run_p.add_argument("--profile", action="store_true",
                       help="attach the profiler and print the full report")
    run_p.add_argument("--profile-json", metavar="PATH", default=None,
                       help="attach the profiler and write the repro.obs/4 "
                            "snapshot here")
    run_p.add_argument("--flight", action="store_true",
                       help="attach the engine flight recorder (requires "
                            "--profile/--profile-json; adds the 'flight' "
                            "time series to the snapshot)")
    run_p.add_argument("--max-sim-time", type=float, default=None,
                       metavar="SECONDS",
                       help="runaway guard: abort (exit 3) if simulated time "
                            "would pass this limit")
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="locality-level sweep (paper table)")
    _add_common(sweep_p)
    sweep_p.add_argument("--procs", type=int, nargs="*", default=None)
    sweep_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes for the sweep (default: one "
                              "per available CPU; 1 forces the serial path; "
                              "output is byte-identical either way)")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="also write every row's metrics as JSON")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-unit wall-clock budget; a worker past it "
                              "is killed (requires --jobs >= 2)")
    sweep_p.add_argument("--retries", type=int, default=1, metavar="N",
                         help="fresh worker pools allowed after a worker "
                              "dies outright (default 1)")
    sweep_p.add_argument("--partial", action="store_true",
                         help="degraded mode: keep completed units and "
                              "report failures instead of aborting the "
                              "whole sweep (exit 1 when any unit failed)")
    sweep_p.add_argument("--backend", default="process",
                         choices=["process", "remote"],
                         help="where units execute: this host's process "
                              "pool, or remote `repro worker` hosts "
                              "(requires --workers; output is "
                              "byte-identical either way)")
    sweep_p.add_argument("--workers", metavar="URL", nargs="+", default=None,
                         help="worker base URLs for --backend remote, "
                              "e.g. http://10.0.0.2:8764")
    sweep_p.add_argument("--checkpoint", metavar="DIR", default=None,
                         help="journal every completed unit here and "
                              "resume a killed sweep by skipping "
                              "journaled units")
    sweep_p.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the merged fleet timeline "
                              "(Chrome/Perfetto JSON, one process track "
                              "per worker; requires --backend remote)")
    sweep_p.add_argument("--fleet", action="store_true",
                         help="scrape every worker's /v1/metrics after the "
                              "sweep and embed the per-worker fleet section "
                              "in the snapshot (repro.sweep/2; requires "
                              "--backend remote and --json)")
    from repro.telemetry.log import add_logging_args

    add_logging_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    an_p = sub.add_parser("analyze", help="static concurrency analysis")
    _add_common(an_p)
    an_p.add_argument("--procs", type=int, default=32)
    an_p.set_defaults(func=cmd_analyze)

    from repro.check.cli import add_check_parser
    from repro.faults.chaosfleet import add_chaos_fleet_parser
    from repro.faults.cli import add_chaos_parser
    from repro.faults.proxy import add_chaos_proxy_parser
    from repro.fleet.worker import add_worker_parser
    from repro.obs.benchdiff import add_benchdiff_parser
    from repro.obs.cli import add_profile_parser
    from repro.serve.cli import add_serve_parser, add_status_parser

    add_check_parser(sub)
    add_profile_parser(sub)
    add_benchdiff_parser(sub)
    add_chaos_parser(sub)
    add_chaos_proxy_parser(sub)
    add_chaos_fleet_parser(sub)
    add_serve_parser(sub)
    add_status_parser(sub)
    add_worker_parser(sub)

    de_p = sub.add_parser("describe", help="list apps/machines/switches")
    de_p.add_argument("--json", action="store_true",
                      help="emit the machine-readable catalog (identical to "
                           "the service's GET /v1/describe)")
    de_p.set_defaults(func=cmd_describe)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
