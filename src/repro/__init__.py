"""repro — a reproduction of Rinard, "Communication Optimizations for
Parallel Computing Using Data Access Information" (Supercomputing 1995).

The package provides:

* a Python embedding of the **Jade** implicitly-parallel language
  (:mod:`repro.core`): shared objects, ``withonly`` tasks with access
  specifications, and the queue-based synchronizer that extracts
  concurrency from the serial program order;
* deterministic models of the paper's two machines
  (:mod:`repro.machines`): the Stanford DASH and the Intel iPSC/860;
* the two Jade implementations (:mod:`repro.runtime`) with the paper's
  five communication optimizations — replication, locality scheduling,
  adaptive broadcast, concurrent fetches and latency hiding;
* the four evaluated applications (:mod:`repro.apps`): Water, String,
  Ocean and Panel Cholesky;
* the experiment harness (:mod:`repro.lab`) that regenerates every table
  and figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import JadeBuilder, RuntimeOptions, run_message_passing, run_stripped

    jade = JadeBuilder()
    grid = jade.object("grid", initial=np.zeros(64))
    jade.task("fill", body=lambda ctx: ctx.wr(grid).fill(1.0), wr=[grid], cost=1e-3)
    program = jade.finish("demo")

    serial = run_stripped(program)
    parallel = run_message_passing(program, num_processors=4)
    assert np.array_equal(serial.payload(grid), parallel.final_store.get(grid.object_id))
"""

from repro.core import (
    AccessMode,
    AccessSpec,
    JadeBuilder,
    JadeProgram,
    ObjectRegistry,
    ObjectStore,
    SharedObject,
    Synchronizer,
    TaskContext,
    TaskSpec,
    run_stripped,
)
from repro.machines import DashMachine, Ipsc860Machine, WorkstationFarm
from repro.runtime import (
    LocalityLevel,
    MessagePassingRuntime,
    RunMetrics,
    RuntimeOptions,
    SharedMemoryRuntime,
    make_work_free,
    run_message_passing,
    run_shared_memory,
)

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "AccessSpec",
    "JadeBuilder",
    "JadeProgram",
    "ObjectRegistry",
    "ObjectStore",
    "SharedObject",
    "Synchronizer",
    "TaskContext",
    "TaskSpec",
    "run_stripped",
    "DashMachine",
    "Ipsc860Machine",
    "WorkstationFarm",
    "LocalityLevel",
    "MessagePassingRuntime",
    "RunMetrics",
    "RuntimeOptions",
    "SharedMemoryRuntime",
    "make_work_free",
    "run_message_passing",
    "run_shared_memory",
    "__version__",
]
