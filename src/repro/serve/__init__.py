"""``repro.serve`` — simulation-as-a-service.

The layering (DESIGN.md "Service" section):

* :mod:`repro.serve.requests` — the stable wire format: frozen
  ``RunRequest`` / ``SweepRequest`` / ``ChaosRequest`` dataclasses with
  canonical-JSON serialization and content-addressed cache keys;
* :mod:`repro.serve.api` — the programmatic entry point:
  ``submit(request) -> repro.serve/1 snapshot document``, wrapping the
  experiment logic the CLI handlers use, with a content-addressed result
  cache in front (determinism verification makes hits sound by
  construction);
* :mod:`repro.serve.jobs` — the job manager: queue, bounded worker pool
  delegating sweep fan-out to :func:`repro.fleet.run_units_resilient`,
  job lifecycle states;
* :mod:`repro.serve.server` — a stdlib-only asyncio HTTP front end
  (``repro serve``) exposing the job lifecycle as ``/v1`` endpoints;
* :mod:`repro.serve.transport` — the ``Transport`` interface (modeled on
  openmas's ``BaseCommunicator``): in-process and HTTP backends share one
  surface, optional gRPC/MQTT backends lazy-load via ``importlib``.
"""

from repro.serve.api import SubmitResult, describe_catalog, execute, submit
from repro.serve.cache import ResultCache
from repro.serve.jobs import OverloadedError
from repro.serve.requests import (
    ChaosRequest,
    RunRequest,
    SweepRequest,
    request_from_json,
)
from repro.serve.transport import Transport, available_transports, create_transport

__all__ = [
    "ChaosRequest",
    "OverloadedError",
    "ResultCache",
    "RunRequest",
    "SubmitResult",
    "SweepRequest",
    "Transport",
    "available_transports",
    "create_transport",
    "describe_catalog",
    "execute",
    "request_from_json",
    "submit",
]
