"""The service's stable wire format: frozen, canonical request objects.

A request names *what to simulate* — application, machine, scale,
processor count(s), optimization switches, seed, fault spec — and nothing
about *how the host executes it* (worker counts, timeouts, retry budgets
are execution policy, owned by the caller or the server).  That split is
what makes the content-addressed cache sound: two requests with equal
fields denote the same deterministic simulation, so the SHA-256 of a
request's canonical JSON (:meth:`cache_key`) is a complete address for
its result document.

Requests are frozen dataclasses that validate on construction (raising
:class:`~repro.errors.ExperimentError`, the bad-arguments class of the
exit-code taxonomy), serialize with :func:`repro.util.canon.canonical_json`
via :meth:`to_json`, and round-trip through :func:`request_from_json`.
Unknown fields are rejected rather than ignored — a typo that silently
vanished from the cache key would alias two different experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.errors import ExperimentError
from repro.faults import FaultSpec, NodeSlowdown, NodeStall
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel
from repro.util.canon import canonical_json, content_key

_MACHINES = ("dash", "ipsc860")
_SCALES = ("tiny", "paper")
_LEVELS = tuple(level.value for level in LocalityLevel)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentError(message)


def _check_app(app: Any) -> None:
    from repro.apps import ALL_APPLICATIONS

    _require(isinstance(app, str) and app in ALL_APPLICATIONS,
             f"unknown application {app!r}; valid applications: "
             f"{', '.join(sorted(ALL_APPLICATIONS))}")


def fault_spec_from_json(payload: Any) -> FaultSpec:
    """Rebuild a :class:`FaultSpec` from its ``to_json`` dict (strict)."""
    _require(isinstance(payload, dict), "fault spec must be a JSON object")
    known = {"seed", "drop_rate", "duplicate_rate", "delay_rate", "delay_us",
             "degrade_rate", "degrade_multiplier", "slowdowns", "stalls"}
    unknown = set(payload) - known
    _require(not unknown,
             f"unknown fault spec field(s): {', '.join(sorted(unknown))}")
    slowdowns = tuple(
        NodeSlowdown(node=s["node"], factor=s["factor"],
                     start=s["start"], end=s["end"])
        for s in payload.get("slowdowns", ())
    )
    stalls = tuple(
        NodeStall(node=s["node"], start=s["start"], end=s["end"])
        for s in payload.get("stalls", ())
    )
    return FaultSpec(
        seed=payload.get("seed", 0),
        drop_rate=payload.get("drop_rate", 0.0),
        duplicate_rate=payload.get("duplicate_rate", 0.0),
        delay_rate=payload.get("delay_rate", 0.0),
        delay_us=payload.get("delay_us", 200.0),
        degrade_rate=payload.get("degrade_rate", 0.0),
        degrade_multiplier=payload.get("degrade_multiplier", 4.0),
        slowdowns=slowdowns,
        stalls=stalls,
    )


class _Request:
    """Shared canonical-serialization surface of the request kinds."""

    #: Overridden per subclass; serialized into every request document,
    #: so requests of different kinds can never collide in the cache.
    kind = ""

    def to_json(self) -> Dict[str, Any]:
        raise NotImplementedError

    def canonical(self) -> str:
        """The compact canonical JSON text this request hashes as."""
        return canonical_json(self.to_json())

    def cache_key(self) -> str:
        """SHA-256 of the canonical request: the content address of its
        result document.  Stable across processes and hosts; any single
        field change — including nested fault-spec fields — changes it."""
        return content_key(self.to_json())

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class RunRequest(_Request):
    """One simulated execution: ``repro run`` as data."""

    app: str
    machine: str = "ipsc860"
    scale: str = "paper"
    procs: int = 8
    level: str = "locality"
    replication: bool = True
    adaptive_broadcast: bool = True
    concurrent_fetches: bool = True
    target_tasks: int = 1
    eager_update: bool = False
    work_free: bool = False
    seed: int = 0
    max_sim_time: Optional[float] = None
    faults: Optional[FaultSpec] = None

    kind = "run"

    def __post_init__(self) -> None:
        _check_app(self.app)
        _require(self.machine in _MACHINES,
                 f"unknown machine {self.machine!r}; valid: "
                 f"{', '.join(_MACHINES)}")
        _require(self.scale in _SCALES,
                 f"unknown scale {self.scale!r}; valid: {', '.join(_SCALES)}")
        _require(self.level in _LEVELS,
                 f"unknown locality level {self.level!r}; valid: "
                 f"{', '.join(_LEVELS)}")
        _require(isinstance(self.procs, int) and self.procs >= 1,
                 f"procs must be a positive integer, got {self.procs!r}")
        _require(self.faults is None or self.machine == "ipsc860",
                 "fault injection requires the ipsc860 machine")
        try:
            self.options()  # RuntimeOptions re-validates the switches
        except ValueError as exc:
            raise ExperimentError(str(exc)) from None

    def options(self) -> RuntimeOptions:
        """The :class:`RuntimeOptions` this request denotes."""
        return RuntimeOptions(
            locality=LocalityLevel(self.level),
            replication=self.replication,
            adaptive_broadcast=self.adaptive_broadcast,
            concurrent_fetches=self.concurrent_fetches,
            target_tasks_per_processor=self.target_tasks,
            eager_update=self.eager_update,
            work_free=self.work_free,
            seed=self.seed,
            max_sim_time=self.max_sim_time,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "app": self.app,
            "machine": self.machine,
            "scale": self.scale,
            "procs": self.procs,
            "level": self.level,
            "replication": self.replication,
            "adaptive_broadcast": self.adaptive_broadcast,
            "concurrent_fetches": self.concurrent_fetches,
            "target_tasks": self.target_tasks,
            "eager_update": self.eager_update,
            "work_free": self.work_free,
            "seed": self.seed,
            "max_sim_time": self.max_sim_time,
            "faults": self.faults.to_json() if self.faults else None,
        }

    def describe(self) -> str:
        text = (f"run {self.app} on {self.machine}, {self.procs} processors "
                f"({self.scale} scale) [{self.options().describe()}]")
        if self.faults is not None:
            text += f" faults[{self.faults.describe()}]"
        return text


@dataclass(frozen=True)
class SweepRequest(_Request):
    """A locality-level sweep: ``repro sweep`` as data.

    ``procs`` is the processor-count axis; the level axis is derived from
    the application (§5.2), exactly as the CLI does.  Worker counts and
    timeout/retry budgets are deliberately absent: they never change the
    result bytes (the fleet determinism contract), so they must not
    change the cache key.
    """

    app: str
    machine: str = "ipsc860"
    scale: str = "paper"
    procs: Tuple[int, ...] = ()

    kind = "sweep"

    def __post_init__(self) -> None:
        _check_app(self.app)
        _require(self.machine in _MACHINES,
                 f"unknown machine {self.machine!r}; valid: "
                 f"{', '.join(_MACHINES)}")
        _require(self.scale in _SCALES,
                 f"unknown scale {self.scale!r}; valid: {', '.join(_SCALES)}")
        procs = tuple(self.procs)
        _require(bool(procs), "sweep requires at least one processor count")
        _require(all(isinstance(p, int) and p >= 1 for p in procs),
                 f"procs must be positive integers, got {self.procs!r}")
        object.__setattr__(self, "procs", procs)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "app": self.app,
            "machine": self.machine,
            "scale": self.scale,
            "procs": list(self.procs),
        }

    def describe(self) -> str:
        procs = ",".join(str(p) for p in self.procs)
        return (f"sweep {self.app} on {self.machine}, procs [{procs}] "
                f"({self.scale} scale)")


@dataclass(frozen=True)
class ChaosRequest(_Request):
    """A chaos verification: ``repro chaos`` as data.

    Three runs (fault-free reference plus two same-seed faulty runs) with
    coherence and determinism verdicts; iPSC/860 only, because faults
    perturb the message fabric.
    """

    app: str
    procs: int = 4
    scale: str = "tiny"
    faults: FaultSpec = field(default_factory=FaultSpec)
    max_sim_time: Optional[float] = None

    kind = "chaos"

    def __post_init__(self) -> None:
        _check_app(self.app)
        _require(self.scale in _SCALES,
                 f"unknown scale {self.scale!r}; valid: {', '.join(_SCALES)}")
        _require(isinstance(self.procs, int) and self.procs >= 1,
                 f"procs must be a positive integer, got {self.procs!r}")
        try:
            RuntimeOptions(max_sim_time=self.max_sim_time)
        except ValueError as exc:
            raise ExperimentError(str(exc)) from None

    @property
    def machine(self) -> str:
        return "ipsc860"

    def options(self) -> RuntimeOptions:
        return RuntimeOptions(max_sim_time=self.max_sim_time)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "app": self.app,
            "machine": self.machine,
            "scale": self.scale,
            "procs": self.procs,
            "max_sim_time": self.max_sim_time,
            "faults": self.faults.to_json(),
        }

    def describe(self) -> str:
        return (f"chaos {self.app} on ipsc860, {self.procs} processors "
                f"({self.scale} scale) [{self.faults.describe()}]")


def run_request_from_args(args) -> RunRequest:
    """Build the :class:`RunRequest` a ``repro run`` / ``repro profile``
    argparse namespace denotes (the two subcommands share switches;
    ``--work-free`` exists only on ``run``)."""
    return RunRequest(
        app=args.app,
        machine=args.machine,
        scale=args.scale,
        procs=args.procs,
        level=args.level,
        adaptive_broadcast=not args.no_broadcast,
        replication=not args.no_replication,
        concurrent_fetches=not args.serial_fetches,
        target_tasks=args.target_tasks,
        eager_update=args.eager_update,
        work_free=getattr(args, "work_free", False),
        max_sim_time=args.max_sim_time,
    )


_KINDS = {"run": RunRequest, "sweep": SweepRequest, "chaos": ChaosRequest}


def request_from_json(doc: Any) -> _Request:
    """Parse a request document (the ``POST /v1/jobs`` body).

    Accepts either the enveloped form ``{"kind": ..., "request": {...}}``
    or a flat dict carrying its own ``"kind"`` field.  Unknown kinds and
    unknown fields raise :class:`ExperimentError` (HTTP 400 / exit 2).
    """
    _require(isinstance(doc, dict), "request must be a JSON object")
    payload = doc
    if isinstance(doc.get("request"), dict):
        payload = dict(doc["request"])
        if "kind" not in payload and "kind" in doc:
            payload["kind"] = doc["kind"]
    else:
        payload = dict(payload)
    kind = payload.pop("kind", None)
    _require(kind in _KINDS,
             f"unknown request kind {kind!r}; valid: "
             f"{', '.join(sorted(_KINDS))}")
    cls = _KINDS[kind]
    if kind == "chaos":
        # ``machine`` is a derived property (chaos is ipsc860-only); the
        # round-trip through to_json carries it, so accept exactly that.
        machine = payload.pop("machine", "ipsc860")
        _require(machine == "ipsc860",
                 "chaos requests require the ipsc860 machine — fault "
                 "injection perturbs the message fabric, which only the "
                 "iPSC/860 model has")
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    _require(not unknown,
             f"unknown {kind} request field(s): {', '.join(sorted(unknown))}")
    if "faults" in payload and payload["faults"] is not None:
        payload["faults"] = fault_spec_from_json(payload["faults"])
    elif "faults" in payload:
        del payload["faults"]
    if kind == "sweep" and "procs" in payload:
        procs = payload["procs"]
        _require(isinstance(procs, (list, tuple)),
                 f"sweep procs must be a list, got {procs!r}")
        payload["procs"] = tuple(procs)
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ExperimentError(f"malformed {kind} request: {exc}") from None
