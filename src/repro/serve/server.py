"""The stdlib-only asyncio HTTP front end: ``repro serve``.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
— no third-party web framework, matching the repo's no-new-dependencies
constraint.  The event loop only parses requests and reads job state;
every simulation runs on the :class:`~repro.serve.jobs.JobManager`'s
worker pool, so a slow sweep never blocks health checks or status polls.

Endpoints (all JSON):

* ``POST /v1/jobs`` — body ``{"kind": ..., "request": {...}}`` (or a flat
  request dict with ``kind``); returns the job document.  Cache hits come
  back already ``done`` with ``"cache": "hit"``.
* ``GET /v1/jobs/{id}`` — the job document.
* ``GET /v1/jobs/{id}/result`` — the finished job's ``repro.serve/1``
  document, byte-for-byte as stored (plus an ``X-Repro-Cache`` header);
  202 while queued/running, error document with the taxonomy code once
  failed.
* ``GET /v1/health`` — uptime, job counts and monotonic totals, cache
  stats (hits/misses/evictions plus disk-tier usage), worker sizes.
* ``GET /v1/metrics`` — the process metrics registry: Prometheus text by
  default, the ``repro.telemetry/1`` JSON snapshot with ``?format=json``.
* ``GET /v1/describe`` — the machine-readable catalog (identical to
  ``repro describe --json``).

Error mapping follows the exit-code taxonomy: bad requests (exit 2) are
HTTP 400, simulation failures (exit 3) are HTTP 500, unknown jobs/paths
are 404; every error body is ``{"error", "type", "exit_code"}``.  A full
job queue sheds new cache-miss submissions with 429 plus a ``Retry-After``
header priced by the fleet's seeded backoff schedule (see
:class:`repro.serve.jobs.OverloadedError`); clients that disconnect
mid-response are counted into ``repro_client_disconnects_total`` and
suppressed, never tracebacks.

Every request emits one structured ``http_request`` access-log line
(method, path, status, duration; error responses add the taxonomy exit
code) and counts into ``repro_http_requests_total`` under a normalized
route label, so one noisy client polling a job id cannot explode label
cardinality.  Job-scoped responses carry ``X-Repro-Job`` so the access
log correlates with the job lifecycle events.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import EXIT_BAD_REQUEST, ExperimentError
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobManager, OverloadedError
from repro.serve.requests import request_from_json
from repro.telemetry.log import get_logger, log_event
from repro.telemetry.metrics import MetricsRegistry, default_registry

_log = get_logger("serve.http")

_MAX_BODY = 4 * 1024 * 1024  # a request document is small; refuse floods
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                413: "Payload Too Large", 429: "Too Many Requests",
                500: "Internal Server Error", 503: "Service Unavailable"}


def _error_body(message: str, exc_type: str, exit_code: int) -> bytes:
    return (json.dumps({"error": message, "type": exc_type,
                        "exit_code": exit_code}, sort_keys=True) +
            "\n").encode("utf-8")


def _http_status(exit_code: int) -> int:
    return 400 if exit_code == EXIT_BAD_REQUEST else 500


class ServeServer:
    """The HTTP server: owns a :class:`JobManager` and an asyncio loop.

    ``start_background`` runs the loop on a daemon thread (tests, library
    embedding); :meth:`run` blocks the calling thread (the CLI).  With
    ``port=0`` the OS assigns a free port, published as :attr:`port` once
    the socket is bound.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8753,
                 cache: Optional[ResultCache] = None, workers: int = 2,
                 sweep_jobs: int = 1, timeout: Optional[float] = None,
                 max_jobs: int = 10_000, max_queue: int = 64,
                 registry: Optional[MetricsRegistry] = None,
                 trace_dir: Optional[str] = None) -> None:
        self.host = host
        self.port = port
        self._registry = registry if registry is not None \
            else default_registry()
        self.manager = JobManager(cache=cache, workers=workers,
                                  sweep_jobs=sweep_jobs, timeout=timeout,
                                  max_jobs=max_jobs, max_queue=max_queue,
                                  registry=self._registry,
                                  trace_dir=trace_dir)
        self._m_requests = self._registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by normalized route",
            labels=("route", "method", "status"))
        self._g_in_flight = self._registry.gauge(
            "repro_http_requests_in_flight",
            "Requests currently being handled")
        self._m_disconnects = self._registry.counter(
            "repro_client_disconnects_total",
            "HTTP clients that disconnected mid-response (suppressed, "
            "not errors).")
        self._started = time.time()
        self._summary_logged = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._failed: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # request handling (runs on the event loop)
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        started = time.monotonic()
        self._g_in_flight.inc()
        method = path = "?"
        try:
            try:
                method, path, status, headers, body = \
                    await self._respond(reader)
            except Exception as exc:  # noqa: BLE001 - keep serving
                status = 500
                headers = {}
                body = _error_body(f"internal error: {exc}",
                                   type(exc).__name__, 3)
            self._observe_request(method, path, status, headers,
                                  len(body), started)
            try:
                writer.write(self._render(status, headers, body))
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                # The client hung up mid-response: data, not an error —
                # count it and keep serving, no traceback.
                self._m_disconnects.inc()
        finally:
            self._g_in_flight.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _route_label(self, path: str) -> str:
        """Bounded-cardinality route label for the request counter."""
        if path.startswith("/v1/jobs/"):
            return "/v1/jobs/{id}/result" if path.endswith("/result") \
                else "/v1/jobs/{id}"
        if path in ("/v1/jobs", "/v1/health", "/v1/describe", "/v1/metrics"):
            return path
        return "other"

    def _observe_request(self, method: str, path: str, status: int,
                         headers: Dict[str, str], body_bytes: int,
                         started: float) -> None:
        """One access-log line and one request-counter tick per request."""
        self._m_requests.inc(route=self._route_label(path), method=method,
                             status=str(status))
        fields: Dict[str, Any] = {
            "method": method, "path": path, "status": status,
            "duration_s": round(time.monotonic() - started, 6),
            "bytes": body_bytes,
        }
        if status >= 400:
            # The inverse of _http_status: the taxonomy code the error
            # body carries (2 = bad request, 3 = simulation failure).
            fields["exit_code"] = 2 if status < 500 else 3
        log_event(_log, logging.INFO if status < 500 else logging.ERROR,
                  "http_request", job_id=headers.get("X-Repro-Job"),
                  **fields)

    def _render(self, status: int, headers: Dict[str, str],
                body: bytes) -> bytes:
        lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
        base = {"Content-Type": "application/json",
                "Content-Length": str(len(body)),
                "Connection": "close"}
        base.update(headers)
        lines.extend(f"{key}: {value}" for key, value in base.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body

    async def _respond(
        self, reader: asyncio.StreamReader,
    ) -> Tuple[str, str, int, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return "?", "?", 400, {}, _error_body(
                "empty request", "ProtocolError", 2)
        parts = request_line.split()
        if len(parts) != 3:
            return "?", "?", 400, {}, _error_body(
                f"malformed request line {request_line!r}",
                "ProtocolError", 2)
        method, target, _version = parts
        raw_path, _, query = target.partition("?")
        path = raw_path.rstrip("/") or "/"
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return method, path, 413, {}, _error_body(
                f"request body of {length} bytes exceeds {_MAX_BODY}",
                "ProtocolError", 2)
        body = await reader.readexactly(length) if length else b""
        status, response_headers, payload = self._route(method, path,
                                                        query, body)
        return method, path, status, response_headers, payload

    def _route(self, method: str, path: str, query: str,
               body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        if path == "/v1/jobs" and method == "POST":
            return self._post_job(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {}, _error_body(
                    f"{method} not allowed on {path}", "ProtocolError", 2)
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                return self._get_result(tail[:-len("/result")])
            if "/" not in tail:
                return self._get_job(tail)
        if path == "/v1/health" and method == "GET":
            return self._json(200, self.manager.health())
        if path == "/v1/metrics" and method == "GET":
            return self._get_metrics(query)
        if path == "/v1/describe" and method == "GET":
            from repro.serve.api import describe_catalog

            return self._json(200, describe_catalog())
        return 404, {}, _error_body(f"no such endpoint: {method} {path}",
                                    "NotFound", 2)

    def _get_metrics(self, query: str) -> Tuple[int, Dict[str, str], bytes]:
        self.manager.refresh_metrics()
        params = dict(part.partition("=")[::2]
                      for part in query.split("&") if part)
        if params.get("format") == "json":
            return (200, {},
                    self._registry.snapshot_text().encode("utf-8"))
        if params.get("format") not in (None, "", "prometheus", "text"):
            return 400, {}, _error_body(
                f"unknown metrics format {params['format']!r} "
                "(expected 'prometheus' or 'json')", "ProtocolError", 2)
        return (200,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                self._registry.render_prometheus().encode("utf-8"))

    def _json(self, status: int, payload: Any,
              headers: Optional[Dict[str, str]] = None
              ) -> Tuple[int, Dict[str, str], bytes]:
        body = (json.dumps(payload, sort_keys=True, indent=2) +
                "\n").encode("utf-8")
        return status, headers or {}, body

    def _post_job(self, body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, _error_body(f"request body is not JSON: {exc}",
                                        type(exc).__name__, 2)
        try:
            request = request_from_json(doc)
            job = self.manager.submit(request)
        except OverloadedError as exc:
            # Shed load instead of queueing unboundedly: 429 plus a
            # Retry-After priced by the fleet's seeded backoff schedule.
            return (429, {"Retry-After": str(exc.retry_after)},
                    _error_body(str(exc), type(exc).__name__, 2))
        except ExperimentError as exc:
            return 400, {}, _error_body(str(exc), type(exc).__name__, 2)
        return self._json(200, job.to_doc(),
                          headers={"X-Repro-Job": job.id})

    def _get_job(self, job_id: str) -> Tuple[int, Dict[str, str], bytes]:
        try:
            doc = self.manager.job_doc(job_id)
        except ExperimentError as exc:
            return 404, {}, _error_body(str(exc), type(exc).__name__, 2)
        return self._json(200, doc, headers={"X-Repro-Job": job_id})

    def _get_result(self, job_id: str) -> Tuple[int, Dict[str, str], bytes]:
        try:
            job = self.manager.get(job_id)
        except ExperimentError as exc:
            return 404, {}, _error_body(str(exc), type(exc).__name__, 2)
        job_header = {"X-Repro-Job": job.id}
        if job.state in ("queued", "running"):
            return self._json(202, {"id": job.id, "state": job.state},
                              headers=job_header)
        if job.state == "failed":
            assert job.error is not None
            return (_http_status(job.error["exit_code"]), job_header,
                    _error_body(job.error["message"], job.error["type"],
                                job.error["exit_code"]))
        assert job.result_text is not None
        cache_header = "hit" if job.cache_hit else "miss"
        return (200, {"X-Repro-Cache": cache_header, **job_header},
                job.result_text.encode("utf-8"))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle, self.host,
                                                self.port)
        except OSError as exc:
            self._failed = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        log_event(_log, logging.INFO, "serve_started", host=self.host,
                  port=self.port, workers=self.manager.workers,
                  sweep_jobs=self.manager.policy.jobs)
        async with server:
            await self._stop.wait()
        self.manager.shutdown()
        self._log_summary()

    def _log_summary(self) -> None:
        """One final stats line on shutdown (idempotent across paths)."""
        if self._summary_logged:
            return
        self._summary_logged = True
        counters = self.manager.counters()
        cache = self.manager.cache.stats()
        lookups = cache["hits"] + cache["misses"]
        log_event(_log, logging.INFO, "serve_stopped",
                  uptime_s=round(time.time() - self._started, 3),
                  jobs_submitted=counters["submitted"],
                  jobs_completed=counters["completed"],
                  jobs_failed=counters["failed"],
                  cache_hits=cache["hits"], cache_misses=cache["misses"],
                  cache_hit_ratio=round(cache["hits"] / lookups, 4)
                  if lookups else None)

    def run(self) -> None:
        """Serve until interrupted (the ``repro serve`` foreground path)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self.manager.shutdown()
            self._log_summary()
        finally:
            self._done.set()

    def start_background(self, timeout: float = 10.0) -> None:
        """Serve on a daemon thread; returns once the socket is bound."""
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ExperimentError("serve loop failed to start in time")
        if self._failed is not None:
            raise ExperimentError(
                f"cannot bind {self.host}:{self.port}: {self._failed}")

    def join(self) -> None:
        """Block until the background serve thread exits (the CLI path)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            # A SIGINT delivered while the main thread was blocked in
            # Thread.join() can leave the thread falsely marked stopped
            # (the interrupted join releases the still-running thread's
            # tstate lock), making a plain join() return before the serve
            # loop has run its shutdown tail. Wait on our own event, which
            # run() sets only after the final summary is logged.
            self._done.wait(timeout)
            self._thread.join(timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
