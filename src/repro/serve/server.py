"""The stdlib-only asyncio HTTP front end: ``repro serve``.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
— no third-party web framework, matching the repo's no-new-dependencies
constraint.  The event loop only parses requests and reads job state;
every simulation runs on the :class:`~repro.serve.jobs.JobManager`'s
worker pool, so a slow sweep never blocks health checks or status polls.

Endpoints (all JSON):

* ``POST /v1/jobs`` — body ``{"kind": ..., "request": {...}}`` (or a flat
  request dict with ``kind``); returns the job document.  Cache hits come
  back already ``done`` with ``"cache": "hit"``.
* ``GET /v1/jobs/{id}`` — the job document.
* ``GET /v1/jobs/{id}/result`` — the finished job's ``repro.serve/1``
  document, byte-for-byte as stored (plus an ``X-Repro-Cache`` header);
  202 while queued/running, error document with the taxonomy code once
  failed.
* ``GET /v1/health`` — job counts, cache hit/miss counters, worker sizes.
* ``GET /v1/describe`` — the machine-readable catalog (identical to
  ``repro describe --json``).

Error mapping follows the exit-code taxonomy: bad requests (exit 2) are
HTTP 400, simulation failures (exit 3) are HTTP 500, unknown jobs/paths
are 404; every error body is ``{"error", "type", "exit_code"}``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.errors import EXIT_BAD_REQUEST, ExperimentError
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobManager
from repro.serve.requests import request_from_json

_MAX_BODY = 4 * 1024 * 1024  # a request document is small; refuse floods
_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                413: "Payload Too Large", 500: "Internal Server Error"}


def _error_body(message: str, exc_type: str, exit_code: int) -> bytes:
    return (json.dumps({"error": message, "type": exc_type,
                        "exit_code": exit_code}, sort_keys=True) +
            "\n").encode("utf-8")


def _http_status(exit_code: int) -> int:
    return 400 if exit_code == EXIT_BAD_REQUEST else 500


class ServeServer:
    """The HTTP server: owns a :class:`JobManager` and an asyncio loop.

    ``start_background`` runs the loop on a daemon thread (tests, library
    embedding); :meth:`run` blocks the calling thread (the CLI).  With
    ``port=0`` the OS assigns a free port, published as :attr:`port` once
    the socket is bound.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8753,
                 cache: Optional[ResultCache] = None, workers: int = 2,
                 sweep_jobs: int = 1, timeout: Optional[float] = None,
                 max_jobs: int = 10_000) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(cache=cache, workers=workers,
                                  sweep_jobs=sweep_jobs, timeout=timeout,
                                  max_jobs=max_jobs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failed: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # request handling (runs on the event loop)
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, headers, body = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - defensive: keep serving
            status = 500
            headers = {}
            body = _error_body(f"internal error: {exc}",
                               type(exc).__name__, 3)
        try:
            writer.write(self._render(status, headers, body))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _render(self, status: int, headers: Dict[str, str],
                body: bytes) -> bytes:
        lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
        base = {"Content-Type": "application/json",
                "Content-Length": str(len(body)),
                "Connection": "close"}
        base.update(headers)
        lines.extend(f"{key}: {value}" for key, value in base.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body

    async def _respond(
        self, reader: asyncio.StreamReader,
    ) -> Tuple[int, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, {}, _error_body("empty request", "ProtocolError", 2)
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {}, _error_body(
                f"malformed request line {request_line!r}",
                "ProtocolError", 2)
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            return 413, {}, _error_body(
                f"request body of {length} bytes exceeds {_MAX_BODY}",
                "ProtocolError", 2)
        body = await reader.readexactly(length) if length else b""
        return self._route(method, path.rstrip("/") or "/", body)

    def _route(self, method: str, path: str,
               body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        if path == "/v1/jobs" and method == "POST":
            return self._post_job(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {}, _error_body(
                    f"{method} not allowed on {path}", "ProtocolError", 2)
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/result"):
                return self._get_result(tail[:-len("/result")])
            if "/" not in tail:
                return self._get_job(tail)
        if path == "/v1/health" and method == "GET":
            return self._json(200, self.manager.health())
        if path == "/v1/describe" and method == "GET":
            from repro.serve.api import describe_catalog

            return self._json(200, describe_catalog())
        return 404, {}, _error_body(f"no such endpoint: {method} {path}",
                                    "NotFound", 2)

    def _json(self, status: int, payload: Any,
              headers: Optional[Dict[str, str]] = None
              ) -> Tuple[int, Dict[str, str], bytes]:
        body = (json.dumps(payload, sort_keys=True, indent=2) +
                "\n").encode("utf-8")
        return status, headers or {}, body

    def _post_job(self, body: bytes) -> Tuple[int, Dict[str, str], bytes]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {}, _error_body(f"request body is not JSON: {exc}",
                                        type(exc).__name__, 2)
        try:
            request = request_from_json(doc)
            job = self.manager.submit(request)
        except ExperimentError as exc:
            return 400, {}, _error_body(str(exc), type(exc).__name__, 2)
        return self._json(200, job.to_doc())

    def _get_job(self, job_id: str) -> Tuple[int, Dict[str, str], bytes]:
        try:
            doc = self.manager.job_doc(job_id)
        except ExperimentError as exc:
            return 404, {}, _error_body(str(exc), type(exc).__name__, 2)
        return self._json(200, doc)

    def _get_result(self, job_id: str) -> Tuple[int, Dict[str, str], bytes]:
        try:
            job = self.manager.get(job_id)
        except ExperimentError as exc:
            return 404, {}, _error_body(str(exc), type(exc).__name__, 2)
        if job.state in ("queued", "running"):
            return self._json(202, {"id": job.id, "state": job.state})
        if job.state == "failed":
            assert job.error is not None
            return (_http_status(job.error["exit_code"]), {},
                    _error_body(job.error["message"], job.error["type"],
                                job.error["exit_code"]))
        assert job.result_text is not None
        cache_header = "hit" if job.cache_hit else "miss"
        return (200, {"X-Repro-Cache": cache_header},
                job.result_text.encode("utf-8"))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle, self.host,
                                                self.port)
        except OSError as exc:
            self._failed = exc
            self._ready.set()
            raise
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop.wait()
        self.manager.shutdown()

    def run(self) -> None:
        """Serve until interrupted (the ``repro serve`` foreground path)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            self.manager.shutdown()

    def start_background(self, timeout: float = 10.0) -> None:
        """Serve on a daemon thread; returns once the socket is bound."""
        self._thread = threading.Thread(target=self.run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ExperimentError("serve loop failed to start in time")
        if self._failed is not None:
            raise ExperimentError(
                f"cannot bind {self.host}:{self.port}: {self._failed}")

    def join(self) -> None:
        """Block until the background serve thread exits (the CLI path)."""
        if self._thread is not None:
            self._thread.join()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
