"""Job lifecycle: queue, bounded worker pool, typed states.

A :class:`Job` moves ``queued -> running -> done | failed``.  The
manager's pool is a bounded ``ThreadPoolExecutor`` — the simulation work
itself is CPU-bound *Python*, but each worker thread delegates the heavy
fan-out to :func:`repro.fleet.run_units_resilient`, which runs the
simulations in worker *processes*; the threads only coordinate, so a
small pool serves many concurrent clients without oversubscribing the
host.

Cache hits are resolved synchronously at submit time: a hit never
occupies a worker, so a warmed cache turns heavy repeat traffic into
dictionary lookups (the scaling story of ROADMAP item 1).

Failures keep their taxonomy: a job that fails records the exception
type, message and :func:`repro.errors.exit_code_for` code (2 bad
request, 3 simulation raised), which the HTTP layer maps onto status
codes.  Timestamps are host wall-clock for operators; they live only in
job documents, never in result documents — result bytes stay
deterministic.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ExperimentError, exit_code_for
from repro.serve.api import ExecutionPolicy, submit as api_submit
from repro.serve.cache import ResultCache
from repro.serve.requests import SweepRequest, _Request

_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    request: _Request
    state: str = "queued"
    cache_key: str = ""
    cache_hit: Optional[bool] = None
    result_text: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    def to_doc(self) -> Dict[str, Any]:
        """The job document the lifecycle endpoints return."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "state": self.state,
            "request": self.request.to_json(),
            "cache_key": self.cache_key,
            "created": self.created,
        }
        if self.cache_hit is not None:
            doc["cache"] = "hit" if self.cache_hit else "miss"
        if self.started is not None:
            doc["started"] = self.started
        if self.finished is not None:
            doc["finished"] = self.finished
        if self.error is not None:
            doc["error"] = dict(self.error)
        return doc


class JobManager:
    """Submit requests, execute them on a bounded pool, track lifecycle."""

    def __init__(self, cache: Optional[ResultCache] = None, workers: int = 2,
                 sweep_jobs: int = 1, timeout: Optional[float] = None,
                 max_jobs: int = 10_000) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        #: Process fan-out each sweep job may use (fleet worker pool).
        self.policy = ExecutionPolicy(jobs=max(1, sweep_jobs),
                                      timeout=timeout)
        self._max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-serve")
        self._closed = False

    # ------------------------------------------------------------------ #
    def submit(self, request: _Request) -> Job:
        """Enqueue ``request``; cache hits complete before returning."""
        key = request.cache_key()
        with self._lock:
            if self._closed:
                raise ExperimentError("job manager is shut down")
            if len(self._jobs) >= self._max_jobs:
                raise ExperimentError(
                    f"job table full ({self._max_jobs} jobs); restart the "
                    "server or raise --max-jobs")
            self._counter += 1
            job = Job(id=f"j{self._counter:06d}", request=request,
                      cache_key=key)
            self._jobs[job.id] = job
        # Peek before get: the worker path consults the cache again via
        # ``api_submit``, so only count one miss per actual computation.
        cached = self.cache.get(key) if key in self.cache else None
        if cached is not None:
            job.state = "done"
            job.cache_hit = True
            job.result_text = cached
            job.started = job.finished = time.time()
            job.done_event.set()
            return job
        self._pool.submit(self._run, job)
        return job

    def _run(self, job: Job) -> None:
        job.state = "running"
        job.started = time.time()
        try:
            policy = self.policy if isinstance(job.request, SweepRequest) \
                else ExecutionPolicy(jobs=1, timeout=None)
            result = api_submit(job.request, cache=self.cache, policy=policy)
            job.result_text = result.text
            job.cache_hit = result.cache_hit
            job.state = "done"
        except Exception as exc:  # noqa: BLE001 - shipped to the client
            job.cache_hit = False
            job.error = {
                "type": type(exc).__name__,
                "message": str(exc),
                "exit_code": exit_code_for(exc),
            }
            job.state = "failed"
        finally:
            job.finished = time.time()
            job.done_event.set()

    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ExperimentError(f"unknown job {job_id!r}") from None

    def job_doc(self, job_id: str) -> Dict[str, Any]:
        return self.get(job_id).to_doc()

    def result_text(self, job_id: str) -> str:
        job = self.get(job_id)
        if job.state == "failed":
            assert job.error is not None
            raise ExperimentError(
                f"job {job_id} failed: {job.error['type']}: "
                f"{job.error['message']}")
        if job.state != "done" or job.result_text is None:
            raise ExperimentError(
                f"job {job_id} has no result yet (state {job.state})")
        return job.result_text

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        job = self.get(job_id)
        if not job.done_event.wait(timeout):
            raise ExperimentError(
                f"timed out waiting for job {job_id} (state {job.state})")
        return job

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, Any]:
        counts = dict.fromkeys(_STATES, 0)
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return {
            "status": "ok",
            "workers": self.workers,
            "sweep_jobs": self.policy.jobs,
            "jobs": counts,
            "cache": self.cache.counters(),
        }

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
