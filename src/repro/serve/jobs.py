"""Job lifecycle: queue, bounded worker pool, typed states.

A :class:`Job` moves ``queued -> running -> done | failed``.  The
manager's pool is a bounded ``ThreadPoolExecutor`` — the simulation work
itself is CPU-bound *Python*, but each worker thread delegates the heavy
fan-out to :func:`repro.fleet.run_units_resilient`, which runs the
simulations in worker *processes*; the threads only coordinate, so a
small pool serves many concurrent clients without oversubscribing the
host.

Cache hits are resolved synchronously at submit time: a hit never
occupies a worker, so a warmed cache turns heavy repeat traffic into
dictionary lookups (the scaling story of ROADMAP item 1).

Admission is bounded: once ``max_queue`` jobs sit unstarted, further
cache-miss submissions are shed with :class:`OverloadedError` — HTTP
429 upstairs — carrying a ``Retry-After`` advice priced by the same
seeded :class:`repro.fleet.breaker.BackoffSchedule` the fleet's circuit
breakers use (consecutive sheds deepen the advice; an admitted job
resets it).  Cache hits are always admitted: they cost a dictionary
lookup, not a worker.

Failures keep their taxonomy: a job that fails records the exception
type, message and :func:`repro.errors.exit_code_for` code (2 bad
request, 3 simulation raised), which the HTTP layer maps onto status
codes.  Timestamps are host wall-clock for operators; they live only in
job documents, never in result documents — result bytes stay
deterministic.

Telemetry: the manager counts submissions/completions/failures per kind
and observes submit-to-finish latency into a per-kind histogram; every
lifecycle log line a job emits — including the fleet heartbeats running
on its worker thread — carries the job's id via
:func:`repro.telemetry.log.job_context`.  With ``trace_dir`` set, run
jobs additionally write their simulation event timeline to
``<trace_dir>/<job_id>.trace.json`` (observation only: tracing never
changes result bytes).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ExperimentError, exit_code_for
from repro.fleet.breaker import BackoffSchedule, retry_after_s
from repro.serve.api import ExecutionPolicy, submit as api_submit
from repro.serve.cache import ResultCache
from repro.serve.requests import RunRequest, SweepRequest, _Request
from repro.telemetry.log import get_logger, job_context, log_event
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
)

_STATES = ("queued", "running", "done", "failed")

_log = get_logger("serve.jobs")


class OverloadedError(ExperimentError):
    """The job queue is full; the client should back off and retry.

    Carries the advised wait (seconds) the HTTP layer surfaces as a
    ``Retry-After`` header on the 429 response.  The advice is priced by
    the same :class:`repro.fleet.breaker.BackoffSchedule` the fleet's
    circuit breakers use: consecutive sheds deepen the advised backoff,
    and any admitted job resets the streak.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    request: _Request
    state: str = "queued"
    cache_key: str = ""
    cache_hit: Optional[bool] = None
    result_text: Optional[str] = None
    error: Optional[Dict[str, Any]] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    def to_doc(self) -> Dict[str, Any]:
        """The job document the lifecycle endpoints return."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "state": self.state,
            "request": self.request.to_json(),
            "cache_key": self.cache_key,
            "created": self.created,
        }
        if self.cache_hit is not None:
            doc["cache"] = "hit" if self.cache_hit else "miss"
        if self.started is not None:
            doc["started"] = self.started
        if self.finished is not None:
            doc["finished"] = self.finished
        if self.error is not None:
            doc["error"] = dict(self.error)
        return doc


class JobManager:
    """Submit requests, execute them on a bounded pool, track lifecycle."""

    def __init__(self, cache: Optional[ResultCache] = None, workers: int = 2,
                 sweep_jobs: int = 1, timeout: Optional[float] = None,
                 max_jobs: int = 10_000, max_queue: int = 64,
                 registry: Optional[MetricsRegistry] = None,
                 trace_dir: Optional[str] = None) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ExperimentError(
                f"max_queue must be >= 0 (0 = unbounded), got {max_queue}")
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        #: Process fan-out each sweep job may use (fleet worker pool).
        self.policy = ExecutionPolicy(jobs=max(1, sweep_jobs),
                                      timeout=timeout)
        self.trace_dir = trace_dir
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
        self._max_jobs = max_jobs
        self._max_queue = max_queue
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self._started = time.time()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._shed = 0
        self._shed_streak = 0
        # Retry-After pricing shares the fleet's backoff primitive; zero
        # jitter keeps the advice deterministic for a given shed streak.
        self._shed_backoff = BackoffSchedule(seed=0, label="serve.shed",
                                             base_s=1.0, max_s=60.0,
                                             jitter=0.0)
        registry = registry if registry is not None else default_registry()
        self._m_submitted = registry.counter(
            "repro_jobs_submitted_total", "Jobs accepted by the manager",
            labels=("kind",))
        self._m_completed = registry.counter(
            "repro_jobs_completed_total", "Jobs finished successfully",
            labels=("kind", "cache"))
        self._m_failed = registry.counter(
            "repro_jobs_failed_total", "Jobs that raised", labels=("kind",))
        self._m_shed = registry.counter(
            "repro_jobs_shed_total",
            "Submissions refused with 429 because the queue was full",
            labels=("kind",))
        self._g_queued = registry.gauge(
            "repro_jobs_queued",
            "Jobs waiting for a worker (refreshed at scrape time)")
        self._g_running = registry.gauge(
            "repro_jobs_running",
            "Jobs currently executing (refreshed at scrape time)")
        self._h_latency = registry.histogram(
            "repro_job_latency_seconds",
            "Submit-to-finish wall-clock seconds", labels=("kind",),
            buckets=DEFAULT_LATENCY_BUCKETS)
        self._pool = ThreadPoolExecutor(max_workers=workers,
                                        thread_name_prefix="repro-serve")
        self._closed = False

    # ------------------------------------------------------------------ #
    def submit(self, request: _Request) -> Job:
        """Enqueue ``request``; cache hits complete before returning.

        Raises :class:`OverloadedError` (HTTP 429 upstairs) when the
        queue already holds ``max_queue`` unstarted jobs and the request
        is not a cache hit — hits never occupy a worker, so they are
        always admitted.
        """
        key = request.cache_key()
        will_hit = key in self.cache
        shed_retry: Optional[float] = None
        queued = 0
        with self._lock:
            if self._closed:
                raise ExperimentError("job manager is shut down")
            if len(self._jobs) >= self._max_jobs:
                raise ExperimentError(
                    f"job table full ({self._max_jobs} jobs); restart the "
                    "server or raise --max-jobs")
            if self._max_queue and not will_hit:
                queued = sum(1 for j in self._jobs.values()
                             if j.state == "queued")
                if queued >= self._max_queue:
                    self._shed += 1
                    self._shed_streak += 1
                    shed_retry = retry_after_s(self._shed_backoff,
                                               self._shed_streak - 1)
            if shed_retry is None:
                self._shed_streak = 0
                self._counter += 1
                job = Job(id=f"j{self._counter:06d}", request=request,
                          cache_key=key)
                self._jobs[job.id] = job
                self._submitted += 1
        if shed_retry is not None:
            self._m_shed.inc(kind=request.kind)
            log_event(_log, logging.WARNING, "job_shed", kind=request.kind,
                      queued=queued, max_queue=self._max_queue,
                      retry_after_s=shed_retry)
            raise OverloadedError(
                f"job queue full ({queued} queued >= --max-queue "
                f"{self._max_queue}); retry after {shed_retry}s",
                retry_after=shed_retry)
        self._m_submitted.inc(kind=request.kind)
        log_event(_log, logging.INFO, "job_submitted", job_id=job.id,
                  kind=request.kind, cache_key=key)
        # Peek before get: the worker path consults the cache again via
        # ``api_submit``, so only count one miss per actual computation.
        cached = self.cache.get(key) if key in self.cache else None
        if cached is not None:
            job.state = "done"
            job.cache_hit = True
            job.result_text = cached
            job.started = job.finished = time.time()
            self._finish(job)
            job.done_event.set()
            return job
        self._pool.submit(self._run, job)
        return job

    def _finish(self, job: Job) -> None:
        """Count one finished job (completed or failed) into telemetry."""
        kind = job.request.kind
        assert job.finished is not None
        duration = job.finished - job.created
        self._h_latency.observe(duration, kind=kind)
        if job.state == "failed":
            with self._lock:
                self._failed += 1
            self._m_failed.inc(kind=kind)
            assert job.error is not None
            log_event(_log, logging.ERROR, "job_failed", job_id=job.id,
                      kind=kind, duration_s=round(duration, 6),
                      error_type=job.error["type"],
                      error=job.error["message"],
                      exit_code=job.error["exit_code"])
        else:
            cache = "hit" if job.cache_hit else "miss"
            with self._lock:
                self._completed += 1
            self._m_completed.inc(kind=kind, cache=cache)
            log_event(_log, logging.INFO, "job_completed", job_id=job.id,
                      kind=kind, cache=cache, duration_s=round(duration, 6))

    def _tracer_for(self, job: Job):
        """A fresh tracer for run jobs when ``trace_dir`` is set."""
        if not self.trace_dir or not isinstance(job.request, RunRequest):
            return None
        from repro.sim.trace import Tracer

        return Tracer(enabled=True)

    def _run(self, job: Job) -> None:
        with job_context(job.id):
            job.state = "running"
            job.started = time.time()
            log_event(_log, logging.INFO, "job_started",
                      kind=job.request.kind)
            tracer = self._tracer_for(job)
            try:
                policy = self.policy \
                    if isinstance(job.request, SweepRequest) \
                    else ExecutionPolicy(jobs=1, timeout=None)
                result = api_submit(job.request, cache=self.cache,
                                    policy=policy, tracer=tracer)
                job.result_text = result.text
                job.cache_hit = result.cache_hit
                # Persist the trace before the job becomes visible as
                # done, so a client that polled to completion can read it.
                if tracer is not None and len(tracer) \
                        and not result.cache_hit:
                    path = os.path.join(self.trace_dir,
                                        f"{job.id}.trace.json")
                    tracer.write(path)
                    log_event(_log, logging.INFO, "job_trace_written",
                              path=path, events=len(tracer))
                job.state = "done"
            except Exception as exc:  # noqa: BLE001 - shipped to the client
                job.cache_hit = False
                job.error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "exit_code": exit_code_for(exc),
                }
                job.state = "failed"
            finally:
                job.finished = time.time()
                self._finish(job)
                job.done_event.set()

    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ExperimentError(f"unknown job {job_id!r}") from None

    def job_doc(self, job_id: str) -> Dict[str, Any]:
        return self.get(job_id).to_doc()

    def result_text(self, job_id: str) -> str:
        job = self.get(job_id)
        if job.state == "failed":
            assert job.error is not None
            raise ExperimentError(
                f"job {job_id} failed: {job.error['type']}: "
                f"{job.error['message']}")
        if job.state != "done" or job.result_text is None:
            raise ExperimentError(
                f"job {job_id} has no result yet (state {job.state})")
        return job.result_text

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        job = self.get(job_id)
        if not job.done_event.wait(timeout):
            raise ExperimentError(
                f"timed out waiting for job {job_id} (state {job.state})")
        return job

    # ------------------------------------------------------------------ #
    def _state_counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(_STATES, 0)
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def counters(self) -> Dict[str, int]:
        """Monotonic job totals since manager start (health reports)."""
        with self._lock:
            return {"submitted": self._submitted,
                    "completed": self._completed,
                    "failed": self._failed}

    def refresh_metrics(self) -> None:
        """Recompute scrape-time gauges (queue depth, cache entry/disk).

        Gauges that mirror internal state are set from the truth at
        scrape time rather than maintained incrementally — there is
        nothing to drift.
        """
        counts = self._state_counts()
        self._g_queued.set(counts["queued"])
        self._g_running.set(counts["running"])
        self.cache.stats()

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime": round(time.time() - self._started, 3),
            "workers": self.workers,
            "sweep_jobs": self.policy.jobs,
            "jobs": self._state_counts(),
            "counters": self.counters(),
            "queue": self.queue_stats(),
            "cache": self.cache.stats(),
        }

    def queue_stats(self) -> Dict[str, int]:
        """Admission-control state (bound, sheds, current streak)."""
        with self._lock:
            return {"max_queue": self._max_queue, "shed": self._shed,
                    "shed_streak": self._shed_streak}

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
