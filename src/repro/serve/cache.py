"""Content-addressed result cache for the serve subsystem.

Entries are keyed by the SHA-256 of a request's canonical JSON
(:meth:`repro.serve.requests._Request.cache_key`).  Because the repo's
determinism verifier machine-checks that equal requests produce equal
result bytes, a hit may return the stored bytes verbatim — the cache can
*never* serve a stale or wrong answer, only skip a recomputation.  That
is the whole design: correctness comes from determinism, not from
invalidation logic.

Two tiers share one interface:

* **memory** — a dict of ``key -> bytes-text``, always on;
* **disk** (optional ``directory``) — ``<key>.json`` holding the exact
  result document text plus ``<key>.meta.json`` with stored-at wall
  clock and the document's schema tag, so a cache survives server
  restarts and its entries are directly inspectable / ``repro check``
  validatable.

Writes are atomic (temp file + rename) and idempotent: two racing
workers computing the same key store byte-identical text, so last-write
wins is harmless.  All operations are thread-safe.

Telemetry: every cache carries hit/miss/store/eviction counters both as
plain ints (``counters()``/``stats()``, the ``/v1/health`` payload) and
as :mod:`repro.telemetry` instruments on the process registry, so a
``GET /v1/metrics`` scrape and a health poll always tell the same story.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry, default_registry


def _is_key(key: str) -> bool:
    return (isinstance(key, str) and len(key) == 64
            and all(c in "0123456789abcdef" for c in key))


class ResultCache:
    """Thread-safe content-addressed store of result-document text."""

    def __init__(self, directory: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.directory = directory
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._memory: Dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        registry = registry if registry is not None else default_registry()
        self._m_hits = registry.counter(
            "repro_cache_hits_total",
            "Result-cache lookups answered from a tier")
        self._m_misses = registry.counter(
            "repro_cache_misses_total",
            "Result-cache lookups that required computation")
        self._m_stores = registry.counter(
            "repro_cache_stores_total", "Result documents stored")
        self._m_evictions = registry.counter(
            "repro_cache_evictions_total",
            "Memory-tier entries evicted (FIFO; disk tier never evicts)")
        self._g_entries = registry.gauge(
            "repro_cache_entries", "Distinct cached result documents")
        self._g_disk_bytes = registry.gauge(
            "repro_cache_disk_bytes", "Bytes held by the disk tier")
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def _meta_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.meta.json")

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[str]:
        """The stored result text for ``key``, or ``None`` (counts a miss)."""
        if not _is_key(key):
            raise ValueError(f"malformed cache key {key!r}")
        with self._lock:
            text = self._memory.get(key)
            if text is None and self.directory:
                try:
                    with open(self._path(key), "r", encoding="utf-8") as fh:
                        text = fh.read()
                except OSError:
                    text = None
                else:
                    # Re-warm the memory tier from disk (restart recovery).
                    self._memory[key] = text
            if text is None:
                self.misses += 1
                self._m_misses.inc()
                return None
            self.hits += 1
            self._m_hits.inc()
            return text

    def put(self, key: str, text: str, schema: Optional[str] = None) -> None:
        """Store ``text`` under ``key`` (atomic, idempotent)."""
        if not _is_key(key):
            raise ValueError(f"malformed cache key {key!r}")
        with self._lock:
            if self.max_entries is not None \
                    and key not in self._memory \
                    and len(self._memory) >= self.max_entries:
                # FIFO eviction from the memory tier only: disk entries
                # are the durable record and stay put.
                self._memory.pop(next(iter(self._memory)))
                self.evictions += 1
                self._m_evictions.inc()
            self._memory[key] = text
            self.stores += 1
            self._m_stores.inc()
            if self.directory:
                self._write_atomic(self._path(key), text)
                meta = {"key": key, "stored_at": time.time()}
                if schema is not None:
                    meta["schema"] = schema
                self._write_atomic(self._meta_path(key),
                                   json.dumps(meta, sort_keys=True) + "\n")

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The disk-tier metadata for ``key`` (stored-at, schema tag)."""
        if not self.directory:
            return None
        try:
            with open(self._meta_path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def _write_atomic(self, path: str, text: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return bool(self.directory) and os.path.exists(self._path(key))

    def __len__(self) -> int:
        with self._lock:
            keys = set(self._memory)
        if self.directory:
            try:
                keys.update(
                    name[:-5] for name in os.listdir(self.directory)
                    if name.endswith(".json")
                    and not name.endswith(".meta.json") and _is_key(name[:-5]))
            except OSError:
                pass
        return len(keys)

    def counters(self) -> Dict[str, int]:
        """Hit/miss/store totals plus current entry count (health reports)."""
        with self._lock:
            hits, misses, stores = self.hits, self.misses, self.stores
        return {"hits": hits, "misses": misses, "stores": stores,
                "entries": len(self)}

    def _disk_usage(self) -> Tuple[int, int]:
        """``(entries, bytes)`` of the disk tier (0, 0 when memory-only)."""
        if not self.directory:
            return 0, 0
        entries = size = 0
        try:
            with os.scandir(self.directory) as it:
                for item in it:
                    if not item.is_file():
                        continue
                    try:
                        size += item.stat().st_size
                    except OSError:
                        continue
                    if item.name.endswith(".json") \
                            and not item.name.endswith(".meta.json") \
                            and _is_key(item.name[:-5]):
                        entries += 1
        except OSError:
            return 0, 0
        return entries, size

    def stats(self) -> Dict[str, int]:
        """:meth:`counters` plus eviction and disk-tier pressure numbers.

        The ``/v1/health`` cache section: operators see eviction pressure
        (``evictions`` climbing means ``max_entries`` is too small) and
        disk-tier growth (``disk_bytes``) without a metrics stack.  Also
        refreshes the entry/disk gauges, so a metrics scrape that calls
        here reports the same numbers.
        """
        stats = self.counters()
        with self._lock:
            stats["evictions"] = self.evictions
        disk_entries, disk_bytes = self._disk_usage()
        stats["disk_entries"] = disk_entries
        stats["disk_bytes"] = disk_bytes
        self._g_entries.set(stats["entries"])
        self._g_disk_bytes.set(disk_bytes)
        return stats
