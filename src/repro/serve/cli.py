"""The ``repro serve`` and ``repro status`` subcommands."""

from __future__ import annotations

import sys

from repro.telemetry.log import add_logging_args, configure_from_args


def add_serve_parser(sub) -> None:
    """Register the ``serve`` subcommand on an argparse subparsers object."""
    p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP job server",
        description="Serve /v1/jobs, /v1/health and /v1/describe over "
                    "HTTP: an async job queue with a bounded worker pool "
                    "and a content-addressed result cache (identical "
                    "requests are answered from the cache, byte-identical "
                    "to fresh computation).",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8753,
                   help="bind port; 0 picks a free port (default 8753)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent jobs the server executes (default 2)")
    p.add_argument("--sweep-jobs", type=int, default=1, metavar="N",
                   help="fleet worker processes each sweep job may fan out "
                        "over (default 1: serial reference path)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-sweep-unit wall-clock budget (fleet hardening)")
    p.add_argument("--cache-dir", metavar="PATH", default=None,
                   help="persist the result cache here (survives restarts); "
                        "default is in-memory only")
    p.add_argument("--max-jobs", type=int, default=10_000, metavar="N",
                   help="job-table capacity guard (default 10000)")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="shed new cache-miss submissions with 429 + "
                        "Retry-After once this many jobs sit unstarted "
                        "(0 = unbounded; default 64)")
    p.add_argument("--trace-dir", metavar="PATH", default=None,
                   help="write each run job's simulation event timeline to "
                        "PATH/<job_id>.trace.json (observation only)")
    add_logging_args(p)
    p.set_defaults(func=cmd_serve)


def add_status_parser(sub) -> None:
    """Register the ``status`` subcommand on an argparse subparsers object."""
    p = sub.add_parser(
        "status",
        help="one-shot text dashboard for a running repro serve instance",
        description="Fetch /v1/health and /v1/metrics from a running "
                    "server and render jobs, latency, cache and HTTP "
                    "traffic as one terminal screen.  With --fleet, "
                    "scrape a set of repro worker hosts instead and "
                    "render an aggregated per-worker dashboard.",
    )
    p.add_argument("url", nargs="?", default=None,
                   help="server base URL, e.g. http://127.0.0.1:8753")
    p.add_argument("--fleet", nargs="+", metavar="URL", default=None,
                   help="scrape these repro worker base URLs "
                        "(GET /v1/health + /v1/metrics) instead of a "
                        "serve instance; exits 2 if any worker is down")
    p.add_argument("--json", action="store_true",
                   help="emit the raw telemetry snapshot (aggregated "
                        "across workers with --fleet) as canonical JSON "
                        "instead of the text dashboard")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                   help="per-request timeout (default 10)")
    p.set_defaults(func=cmd_status)


def cmd_status(args) -> int:
    from repro.errors import ExperimentError

    if args.fleet is not None:
        return _status_fleet(args)
    if args.url is None:
        print("error: status needs a server URL or --fleet URL...",
              file=sys.stderr)
        return 2

    from repro.obs.snapshot import dump_json
    from repro.serve.client import HttpTransport
    from repro.telemetry.dashboard import render_dashboard

    transport = HttpTransport(args.url, request_timeout=args.timeout)
    try:
        health = transport.health()
        snapshot = transport.metrics_json()
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(dump_json(snapshot))
        return 0
    print(render_dashboard(transport.base_url, health, snapshot))
    return 0


def _status_fleet(args) -> int:
    """``repro status --fleet URL...``: scrape workers, aggregate, render."""
    from repro.fleet.worker import WorkerClient, WorkerError
    from repro.obs.snapshot import dump_json
    from repro.telemetry.dashboard import render_fleet_dashboard
    from repro.telemetry.fleet import aggregate_snapshots

    entries = []
    for url in args.fleet:
        client = WorkerClient(url, timeout=args.timeout)
        try:
            entries.append({"url": client.base_url,
                            "health": client.health(),
                            "metrics": client.metrics_json()})
        except WorkerError as exc:
            entries.append({"url": client.base_url, "health": None,
                            "metrics": None, "error": str(exc)})
    # Exit 2 when any worker is DOWN (both modes) so cron/CI probes can
    # alert on a degraded fleet without parsing the dashboard.
    down = [e["url"] for e in entries if e["metrics"] is None]
    if args.json:
        snapshots = [e["metrics"] for e in entries if e["metrics"]]
        try:
            print(dump_json(aggregate_snapshots(snapshots)))
        except ValueError as exc:
            print(f"error: cannot aggregate fleet metrics: {exc}",
                  file=sys.stderr)
            return 2
        if down:
            print(f"error: {len(down)} worker(s) down: {', '.join(down)}",
                  file=sys.stderr)
            return 2
        return 0
    print(render_fleet_dashboard(entries))
    return 2 if down else 0


def cmd_serve(args) -> int:
    from repro.errors import ExperimentError
    from repro.serve.cache import ResultCache
    from repro.serve.server import ServeServer

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.sweep_jobs < 1:
        print(f"error: --sweep-jobs must be >= 1, got {args.sweep_jobs}",
              file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(f"error: --timeout must be positive, got {args.timeout}",
              file=sys.stderr)
        return 2
    if args.max_queue < 0:
        print(f"error: --max-queue must be >= 0 (0 = unbounded), got "
              f"{args.max_queue}", file=sys.stderr)
        return 2
    configure_from_args(args, default_level="info")
    try:
        cache = ResultCache(directory=args.cache_dir)
        server = ServeServer(host=args.host, port=args.port, cache=cache,
                             workers=args.workers, sweep_jobs=args.sweep_jobs,
                             timeout=args.timeout, max_jobs=args.max_jobs,
                             max_queue=args.max_queue,
                             trace_dir=args.trace_dir)
    except (OSError, ValueError, ExperimentError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Bind before announcing, so "listening" is never a lie and a taken
    # port fails fast with exit 2 instead of a traceback mid-serve.
    try:
        server.start_background()
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tiers = "memory+disk" if args.cache_dir else "memory"
    print(f"repro serve listening on {server.url} "
          f"({args.workers} workers, {args.sweep_jobs} sweep jobs, "
          f"{tiers} cache)", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
        server.stop()
    return 0
