"""The ``Transport`` interface: one surface, pluggable protocol backends.

Modeled on openmas's ``BaseCommunicator`` (SNIPPETS.md §2): a small
abstract class defines the job-lifecycle surface — submit, status,
result, health, describe — and each protocol backend implements it.
Backends are *lazy-loaded* by name through :func:`create_transport` and
``importlib``, so the core stays stdlib-only: the in-process and HTTP
backends always work, while gRPC/MQTT are registry entries whose modules
import their third-party dependencies only when actually requested and
raise a :class:`~repro.errors.ExperimentError` naming the missing extra
otherwise.  A future remote-fleet backend (ROADMAP item 3) slots in as
one more registry line.
"""

from __future__ import annotations

import importlib
import time
from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

from repro.errors import ExperimentError
from repro.serve.requests import _Request

#: Backend registry: name -> "module:Class".  Extending the service with
#: a new protocol means adding a line here, not touching the callers.
TRANSPORTS = {
    "inprocess": "repro.serve.transport:InProcessTransport",
    "http": "repro.serve.client:HttpTransport",
    "worker": "repro.fleet.worker:FleetWorkerTransport",
    "grpc": "repro.serve.extras:GrpcTransport",
    "mqtt": "repro.serve.extras:MqttTransport",
}


def available_transports() -> Dict[str, str]:
    """The registry, name -> implementation path (for describe/docs)."""
    return dict(TRANSPORTS)


def create_transport(kind: str, **options: Any) -> "Transport":
    """Instantiate a transport backend by registry name (lazy import)."""
    try:
        target = TRANSPORTS[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown transport {kind!r}; valid: "
            f"{', '.join(sorted(TRANSPORTS))}") from None
    module_name, _, class_name = target.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ExperimentError(
            f"transport {kind!r} could not be loaded ({exc}); it may "
            "require an optional dependency") from exc
    cls = getattr(module, class_name)
    return cls(**options)


class Transport(ABC):
    """The job-lifecycle surface every backend implements.

    ``submit`` returns a *job document* — a plain dict with at least
    ``id``, ``state`` (``queued``/``running``/``done``/``failed``),
    ``kind``, ``cache_key`` and, once known, ``cache`` (``"hit"`` or
    ``"miss"``) and ``error`` (with its taxonomy ``exit_code``).
    ``result_text`` returns the result document's exact bytes-text so
    callers can do byte-identity comparisons; ``result`` parses it.
    """

    #: Registry name of the backend (informational).
    kind = ""

    @abstractmethod
    def submit(self, request: _Request) -> Dict[str, Any]:
        """Enqueue a request; return its job document."""

    @abstractmethod
    def status(self, job_id: str) -> Dict[str, Any]:
        """The current job document for ``job_id``."""

    @abstractmethod
    def result_text(self, job_id: str) -> str:
        """The finished job's ``repro.serve/1`` document text (exact
        bytes).  Raises :class:`ExperimentError` if the job is not done."""

    @abstractmethod
    def health(self) -> Dict[str, Any]:
        """Server liveness document: job counts, cache counters, workers."""

    @abstractmethod
    def describe(self) -> Dict[str, Any]:
        """The machine-readable catalog (``describe_catalog``)."""

    # ------------------------------------------------------------------ #
    def result(self, job_id: str) -> Dict[str, Any]:
        import json

        return json.loads(self.result_text(job_id))

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job leaves the queued/running states."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc["state"] not in ("queued", "running"):
                return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise ExperimentError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id} (state {doc['state']})")
            time.sleep(poll)

    def close(self) -> None:
        """Release backend resources (idempotent)."""


class InProcessTransport(Transport):
    """The reference backend: a :class:`~repro.serve.jobs.JobManager`
    in this process — same lifecycle semantics as the HTTP server, no
    sockets.  Useful for tests, notebooks and library embedding."""

    kind = "inprocess"

    def __init__(self, cache=None, workers: int = 2, sweep_jobs: int = 1,
                 timeout: Optional[float] = None) -> None:
        from repro.serve.jobs import JobManager

        self._manager = JobManager(cache=cache, workers=workers,
                                   sweep_jobs=sweep_jobs, timeout=timeout)

    @property
    def manager(self):
        return self._manager

    def submit(self, request: _Request) -> Dict[str, Any]:
        return self._manager.submit(request).to_doc()

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._manager.job_doc(job_id)

    def result_text(self, job_id: str) -> str:
        return self._manager.result_text(job_id)

    def health(self) -> Dict[str, Any]:
        return self._manager.health()

    def describe(self) -> Dict[str, Any]:
        from repro.serve.api import describe_catalog

        return describe_catalog()

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.05) -> Dict[str, Any]:
        # The manager exposes a real completion event; no need to poll.
        self._manager.wait(job_id, timeout=timeout)
        return self.status(job_id)

    def close(self) -> None:
        self._manager.shutdown()
