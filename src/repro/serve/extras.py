"""Optional protocol backends: present in the registry, absent by default.

Following the openmas lazy-loading pattern (SNIPPETS.md §2), the gRPC and
MQTT transports are registered in
:data:`repro.serve.transport.TRANSPORTS` but import their third-party
dependencies only on construction.  The container deliberately ships
without those libraries, so instantiating one raises a
:class:`~repro.errors.ExperimentError` naming the missing extra — the
HTTP and in-process backends remain fully functional without them, which
is the point: the core stays stdlib-only and heavier protocols are
opt-in.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.errors import ExperimentError
from repro.serve.transport import Transport


def _require_dependency(module: str, extra: str, transport: str) -> Any:
    try:
        return importlib.import_module(module)
    except ImportError:
        raise ExperimentError(
            f"the {transport!r} transport requires the optional "
            f"{module!r} package (install the {extra!r} extra); the "
            "stdlib 'http' and 'inprocess' transports need no extras"
        ) from None


class GrpcTransport(Transport):
    """gRPC backend placeholder: requires the ``grpcio`` package."""

    kind = "grpc"

    def __init__(self, **_options: Any) -> None:
        self._grpc = _require_dependency("grpc", "grpc", self.kind)
        raise ExperimentError(
            "the grpc transport is a registry stub; implement it against "
            "the Transport interface once grpcio is available")

    def submit(self, request):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def status(self, job_id):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def result_text(self, job_id):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def health(self):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def describe(self):  # pragma: no cover - unreachable stub
        raise NotImplementedError


class MqttTransport(Transport):
    """MQTT backend placeholder: requires the ``paho-mqtt`` package."""

    kind = "mqtt"

    def __init__(self, **_options: Any) -> None:
        self._mqtt = _require_dependency("paho.mqtt", "mqtt", self.kind)
        raise ExperimentError(
            "the mqtt transport is a registry stub; implement it against "
            "the Transport interface once paho-mqtt is available")

    def submit(self, request):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def status(self, job_id):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def result_text(self, job_id):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def health(self):  # pragma: no cover - unreachable stub
        raise NotImplementedError

    def describe(self):  # pragma: no cover - unreachable stub
        raise NotImplementedError
