"""The programmatic API: ``submit(request) -> repro.serve/1 document``.

This module is the logic that used to live inside ``__main__.py``'s CLI
handlers, extracted behind the frozen request types so the CLI, the
in-process transport and the HTTP server all execute experiments through
one code path:

* :func:`execute` — run a request synchronously and return its
  kind-specific result payload (run → metrics dict, sweep → the
  ``repro.sweep/1`` document, chaos → the ``repro.chaos/1`` verdict
  document);
* :func:`submit` — :func:`execute` wrapped in the result envelope and the
  content-addressed cache: build the ``repro.serve/1`` document, validate
  it, serialize it canonically, and store/return the exact bytes.  A
  cache hit returns the stored bytes verbatim — byte-identical to the
  fresh computation by the determinism contract;
* :func:`describe_catalog` — the machine-readable catalog behind
  ``repro describe --json`` and ``GET /v1/describe``.

Failures map onto the uniform exit-code taxonomy via
:func:`repro.errors.exit_code_for`; the HTTP layer translates the same
codes to status codes (2 → 400, 3 → 500).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ExperimentError
from repro.obs.schema import SERVE_SCHEMA, assert_valid
from repro.serve.cache import ResultCache
from repro.serve.requests import (
    ChaosRequest,
    RunRequest,
    SweepRequest,
    _Request,
)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the host executes a request — never part of the cache key.

    ``jobs`` bounds the process fan-out a sweep may use
    (:func:`repro.fleet.run_units_resilient`); ``timeout`` and
    ``retries`` are the fleet's per-unit wall-clock budget and
    pool-restart budget.  ``partial`` is deliberately absent: a cached
    document must always be a *complete* result, so the service runs
    sweeps strictly and a degraded sweep is an error, not a cache entry.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ExperimentError(
                f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {self.retries}")


# ---------------------------------------------------------------------- #
# kind-specific executors
# ---------------------------------------------------------------------- #
def run_metrics(request: RunRequest, tracer=None, profiler=None):
    """Execute a :class:`RunRequest` in-process; returns ``RunMetrics``.

    Exceptions propagate with their original types so callers can apply
    the exit-code taxonomy (``SimulationError``/``JadeError``/
    ``MachineError`` → 3, ``ExperimentError`` → 2).
    """
    from repro.apps import MachineKind
    from repro.lab.experiments import run_app
    from repro.runtime.options import LocalityLevel

    options = request.options()
    return run_app(request.app, request.procs, MachineKind(request.machine),
                   LocalityLevel(request.level), options, request.scale,
                   tracer=tracer, profiler=profiler, faults=request.faults)


def profile_metrics(request: RunRequest, tracer=None, interval=None,
                    samples=50, flight=None):
    """Execute a :class:`RunRequest` with the profiler attached.

    Returns ``(metrics, profile)`` — the ``repro run --profile`` /
    ``repro profile`` core.  ``interval``/``samples`` control the
    profiler's time-series sampling and ``flight`` optionally installs an
    engine :class:`~repro.obs.flight.FlightRecorder`; all three shape the
    observation, not the simulation, so they live outside the request.
    """
    from repro.apps import MachineKind
    from repro.lab.experiments import profile_app
    from repro.runtime.options import LocalityLevel

    options = request.options()
    return profile_app(request.app, request.procs,
                       MachineKind(request.machine),
                       LocalityLevel(request.level), options, request.scale,
                       tracer=tracer, interval=interval, samples=samples,
                       faults=request.faults, flight=flight)


def sweep_rows(request: SweepRequest,
               policy: Optional[ExecutionPolicy] = None,
               partial: bool = False,
               backend=None,
               checkpoint=None):
    """Execute a :class:`SweepRequest`; returns ``(rows, outcome)``.

    Fan-out is delegated to :func:`repro.fleet.run_units_resilient`
    (``policy.jobs`` worker processes, per-unit ``timeout``, pool-restart
    ``retries``); the rows come back in canonical unit order, so the
    resulting document is byte-identical to the serial path.  ``partial``
    is the CLI's degraded mode — the service always runs strict
    (``partial=False``), because a cached document must be complete.
    ``backend`` (a :class:`repro.fleet.FleetBackend`) and ``checkpoint``
    (a journal directory) pass straight through to the fleet executor —
    like ``policy``, they shape *where* units run, never the cache key.
    """
    from repro.apps import MachineKind
    from repro.fleet import resilient_locality_sweep

    policy = policy or ExecutionPolicy()
    return resilient_locality_sweep(
        request.app, MachineKind(request.machine), list(request.procs),
        request.scale, jobs=policy.jobs, timeout=policy.timeout,
        retries=policy.retries, partial=partial,
        backend=backend, checkpoint=checkpoint)


def chaos_verdict(request: ChaosRequest) -> Tuple[Dict[str, Any], Any, Any]:
    """Execute a :class:`ChaosRequest`: reference run plus two same-seed
    faulty runs, coherence/determinism verdicts.

    Returns ``(chaos_doc, reference_metrics, faulty_metrics)`` where
    ``chaos_doc`` is the validated ``repro.chaos/1`` document.  Runs
    in-process — the verdicts compare ``final_store``, which never
    crosses a process boundary.
    """
    import numpy as np

    from repro.apps import MachineKind
    from repro.lab.experiments import run_app
    from repro.obs.schema import CHAOS_SCHEMA
    from repro.obs.snapshot import dump_json

    options = request.options()

    def one_run(faults):
        return run_app(request.app, request.procs, MachineKind("ipsc860"),
                       options.locality, options, request.scale,
                       faults=faults)

    def stores_match(a, b) -> bool:
        if a is None or b is None:
            return False
        ids_a, ids_b = a.object_ids(), b.object_ids()
        if ids_a != ids_b:
            return False
        return all(np.array_equal(a.get(oid), b.get(oid)) for oid in ids_a)

    reference = one_run(None)
    first = one_run(request.faults)
    second = one_run(request.faults)

    # Snapshot-facing state: everything to_json() serializes, which is
    # exactly what bench-diff and the committed baselines compare.
    coherent = stores_match(first.final_store, reference.final_store)
    deterministic = (
        dump_json(first.to_json()) == dump_json(second.to_json())
        and stores_match(first.final_store, second.final_store))

    doc = {
        "schema": CHAOS_SCHEMA,
        "run": {
            "application": request.app,
            "machine": "ipsc860",
            "num_processors": request.procs,
            "scale": request.scale,
            "options": options.describe(),
        },
        "fault_spec": request.faults.to_json(),
        "counters": {
            "messages_dropped": first.messages_dropped,
            "messages_duplicated": first.messages_duplicated,
            "retransmissions": first.retransmissions,
            "duplicates_suppressed": first.duplicates_suppressed,
            "ack_bytes": first.ack_bytes,
            "recovery_stall_us": first.recovery_stall_us,
        },
        "verdicts": {"coherent": coherent, "deterministic": deterministic},
    }
    assert_valid(doc)
    return doc, reference, first


# ---------------------------------------------------------------------- #
# the uniform entry points
# ---------------------------------------------------------------------- #
def execute(request: _Request,
            policy: Optional[ExecutionPolicy] = None,
            tracer=None) -> Dict[str, Any]:
    """Run ``request`` synchronously; return the kind-specific payload.

    ``tracer`` (a :class:`repro.sim.trace.Tracer`) applies to run
    requests only — it records the simulation's event timeline without
    touching its numerics, so tracing never changes the payload.
    """
    if isinstance(request, RunRequest):
        return run_metrics(request, tracer=tracer).to_json()
    if isinstance(request, SweepRequest):
        from repro.fleet import sweep_snapshot_doc

        rows, _outcome = sweep_rows(request, policy)
        return sweep_snapshot_doc(request.app, request.machine,
                                  request.scale, rows)
    if isinstance(request, ChaosRequest):
        doc, _reference, _first = chaos_verdict(request)
        return doc
    raise ExperimentError(
        f"cannot execute request of type {type(request).__name__}")


def result_doc(request: _Request, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a payload in the ``repro.serve/1`` envelope (not yet validated)."""
    return {
        "schema": SERVE_SCHEMA,
        "kind": request.kind,
        "request": request.to_json(),
        "cache_key": request.cache_key(),
        "result": payload,
    }


@dataclass
class SubmitResult:
    """What :func:`submit` returns: the document, its exact bytes-text,
    and whether the cache supplied it."""

    doc: Dict[str, Any]
    text: str
    cache_key: str
    cache_hit: bool


def submit(request: _Request,
           cache: Optional[ResultCache] = None,
           policy: Optional[ExecutionPolicy] = None,
           tracer=None) -> SubmitResult:
    """The service entry point: execute (or recall) one request.

    With a cache, the request's content address is consulted first; a hit
    returns the stored text verbatim (determinism makes it byte-identical
    to recomputation).  A miss executes, validates the ``repro.serve/1``
    document against :mod:`repro.obs.schema`, serializes it canonically,
    stores the bytes, and returns them.  ``tracer`` rides along to
    :func:`execute` for run requests; it is never part of the cache key.
    """
    import json as _json

    from repro.obs.snapshot import dump_json

    key = request.cache_key()
    if cache is not None:
        text = cache.get(key)
        if text is not None:
            return SubmitResult(doc=_json.loads(text), text=text,
                                cache_key=key, cache_hit=True)
    payload = execute(request, policy, tracer=tracer)
    doc = result_doc(request, payload)
    assert_valid(doc)
    text = dump_json(doc) + "\n"
    if cache is not None:
        cache.put(key, text, schema=SERVE_SCHEMA)
    return SubmitResult(doc=doc, text=text, cache_key=key, cache_hit=False)


# ---------------------------------------------------------------------- #
# the describe catalog
# ---------------------------------------------------------------------- #
def describe_catalog() -> Dict[str, Any]:
    """The machine-readable catalog of apps, machines and switches.

    One builder serves both ``repro describe --json`` and the service's
    ``GET /v1/describe`` — the CLI output *is* the API output.
    """
    import dataclasses

    from repro.apps import ALL_APPLICATIONS
    from repro.lab import levels_for, make_application
    from repro.obs.schema import (
        BENCH_SCHEMA,
        CHAOS_SCHEMA,
        FLEET_TRACE_SCHEMA,
        PROFILE_SCHEMA,
        SWEEP_FLEET_SCHEMA,
        SWEEP_SCHEMA,
        TELEMETRY_SCHEMA,
    )
    from repro.runtime import RuntimeOptions

    applications = {}
    for name in sorted(ALL_APPLICATIONS):
        app = make_application(name, "tiny")
        applications[name] = {
            "levels": [level.value for level in levels_for(name)],
            "scales": ["tiny", "paper"],
            "supports_task_placement": bool(app.supports_task_placement),
        }
    switches = {}
    for field in dataclasses.fields(RuntimeOptions):
        if field.name in ("locality", "max_sim_time"):
            continue
        default = field.default
        switches[field.name] = {
            "type": type(default).__name__,
            "default": default,
        }
    return {
        "applications": applications,
        "machines": {
            "dash": {"model": "shared memory", "faults": False},
            "ipsc860": {"model": "message passing", "faults": True},
            "workstations": {"model": "heterogeneous farm",
                             "library_only": True},
        },
        "switches": switches,
        "request_kinds": ["run", "sweep", "chaos"],
        "schemas": [PROFILE_SCHEMA, BENCH_SCHEMA, SWEEP_SCHEMA,
                    SWEEP_FLEET_SCHEMA, CHAOS_SCHEMA, SERVE_SCHEMA,
                    TELEMETRY_SCHEMA, FLEET_TRACE_SCHEMA],
    }
