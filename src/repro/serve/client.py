"""The HTTP backend of :class:`~repro.serve.transport.Transport`.

A stdlib ``urllib`` client for a running ``repro serve`` instance — the
same lifecycle surface as :class:`InProcessTransport`, over the wire.
Error documents from the server (``{"error", "type", "exit_code"}``) are
re-raised as :class:`~repro.errors.ExperimentError` carrying the
server-side message, so callers see one exception surface regardless of
backend.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict

from repro.errors import ExperimentError
from repro.serve.requests import _Request
from repro.serve.transport import Transport


class HttpTransport(Transport):
    """Talk to a ``repro serve`` instance at ``base_url``."""

    kind = "http"

    def __init__(self, base_url: str, request_timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout

    # ------------------------------------------------------------------ #
    def _call(self, method: str, path: str,
              payload: Any = None) -> bytes:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urllib.request.urlopen(
                    req, timeout=self.request_timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                doc = json.loads(body.decode("utf-8"))
                message = doc.get("error", body.decode("utf-8", "replace"))
            except (ValueError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace")
            raise ExperimentError(
                f"HTTP {exc.code} from {url}: {message}") from None
        except urllib.error.URLError as exc:
            raise ExperimentError(
                f"cannot reach {url}: {exc.reason}") from None

    def _call_json(self, method: str, path: str,
                   payload: Any = None) -> Dict[str, Any]:
        return json.loads(self._call(method, path, payload).decode("utf-8"))

    # ------------------------------------------------------------------ #
    def submit(self, request: _Request) -> Dict[str, Any]:
        return self._call_json("POST", "/v1/jobs", request.to_json())

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call_json("GET", f"/v1/jobs/{job_id}")

    def result_text(self, job_id: str) -> str:
        return self._call("GET", f"/v1/jobs/{job_id}/result").decode("utf-8")

    def health(self) -> Dict[str, Any]:
        return self._call_json("GET", "/v1/health")

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition."""
        return self._call("GET", "/v1/metrics").decode("utf-8")

    def metrics_json(self) -> Dict[str, Any]:
        """The server's ``repro.telemetry/1`` JSON snapshot."""
        return self._call_json("GET", "/v1/metrics?format=json")

    def describe(self) -> Dict[str, Any]:
        return self._call_json("GET", "/v1/describe")
