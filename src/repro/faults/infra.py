"""Infrastructure fault model: what a real network does to HTTP.

:mod:`repro.faults.schedule` perturbs the *simulated* message fabric;
this module perturbs the *real* dispatch transport between a sweep host
and its ``repro worker`` processes — the faults PR 8's fleet will
actually meet at scale.  Same design rules as :class:`FaultSpec`:

* :class:`InfraFaultSpec` is declarative and immutable — a seed, one
  probability per fault type, and explicit worker-stall windows over the
  proxy's request ordinals.
* :class:`InfraFaultPlan` is one proxy's live instance: per-fault RNG
  substreams (``infra.refuse``, ``infra.error``, ...) drawn in request
  order, so the decision sequence is a pure function of the spec and the
  request count.  **Zero-rate fault types draw no RNG**: enabling one
  fault never shifts another's decision stream, and an all-zero spec is
  contractually a byte-transparent proxy.

The fault taxonomy, applied by :class:`repro.faults.proxy.ChaosProxy`
to unit dispatches:

* **refuse** — the connection is closed before any response bytes
  (looks like a worker that died between accept and reply);
* **error** — an injected HTTP 503 with a structured error body (a
  worker or load balancer shedding load);
* **delay** — the response is held for an exponentially-distributed
  extra beat (congestion);
* **truncate** — correct headers, then the body stops early (a worker
  killed mid-write; the advertised Content-Length never arrives);
* **corrupt** — one byte of the response body is flipped (the fault the
  host's checksum verification exists to catch);
* **stall windows** — every request whose ordinal falls inside
  ``[start, end)`` is held for ``hold_s`` wall seconds before
  forwarding (a worker that froze mid-sweep and came back).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.errors import ExperimentError
from repro.util.rng import substream


@dataclass(frozen=True)
class RequestStall:
    """Requests with ordinal in ``[start, end)`` are held ``hold_s``."""

    start: int
    end: int
    hold_s: float


@dataclass(frozen=True)
class InfraDecision:
    """The plan's verdict for one proxied request (at most one mutation).

    ``refuse`` and ``error`` preempt forwarding entirely; ``truncate``
    and ``corrupt`` are mutually exclusive (a truncated body already
    fails integrity, corrupting it too would double-count); ``delay_s``
    and ``stall_s`` compose with anything.
    """

    refuse: bool = False
    error: Optional[int] = None
    delay_s: float = 0.0
    truncate: bool = False
    corrupt: bool = False
    stall_s: float = 0.0

    @property
    def clean(self) -> bool:
        return (not self.refuse and self.error is None
                and self.delay_s == 0.0 and not self.truncate
                and not self.corrupt and self.stall_s == 0.0)


@dataclass(frozen=True)
class InfraFaultSpec:
    """Declarative transport fault model: seed + rates + stall windows.

    All rates are per-request probabilities in ``[0, 1]``.  An all-zero
    spec is valid and injects nothing — by contract a proxy under it
    forwards byte-verbatim and draws no RNG at all.
    """

    seed: int = 0
    #: Probability the connection is closed before any response bytes.
    refuse_rate: float = 0.0
    #: Probability an HTTP 503 is injected instead of forwarding.
    error_rate: float = 0.0
    #: Probability the response is delayed, and the mean extra delay (ms).
    delay_rate: float = 0.0
    delay_ms: float = 20.0
    #: Probability the response body is cut off mid-stream.
    truncate_rate: float = 0.0
    #: Probability one byte of the response body is flipped.
    corrupt_rate: float = 0.0
    #: Worker-stall windows over the proxy's request ordinals.
    stalls: Tuple[RequestStall, ...] = ()

    def __post_init__(self) -> None:
        for name in ("refuse_rate", "error_rate", "delay_rate",
                     "truncate_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ExperimentError(
                    f"infra fault {name} must be in [0, 1], got {rate!r}")
        if self.delay_ms < 0:
            raise ExperimentError(
                f"infra fault delay_ms must be >= 0, got {self.delay_ms!r}")
        for stall in self.stalls:
            if stall.end <= stall.start or stall.start < 0 \
                    or stall.hold_s < 0:
                raise ExperimentError(
                    f"malformed request-stall window {stall!r}")

    # ------------------------------------------------------------------ #
    @property
    def perturbs_requests(self) -> bool:
        """True when any per-request fault can fire."""
        return (self.refuse_rate > 0.0 or self.error_rate > 0.0
                or self.delay_rate > 0.0 or self.truncate_rate > 0.0
                or self.corrupt_rate > 0.0)

    @property
    def any_faults(self) -> bool:
        return self.perturbs_requests or bool(self.stalls)

    def describe(self) -> str:
        """Short stable description for logs and snapshot provenance."""
        bits = [f"seed={self.seed}"]
        for name, rate in (("refuse", self.refuse_rate),
                           ("error", self.error_rate),
                           ("delay", self.delay_rate),
                           ("truncate", self.truncate_rate),
                           ("corrupt", self.corrupt_rate)):
            if rate > 0.0:
                bits.append(f"{name}={rate:g}")
        if self.stalls:
            bits.append(f"stalls={len(self.stalls)}")
        return ",".join(bits)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "refuse_rate": self.refuse_rate,
            "error_rate": self.error_rate,
            "delay_rate": self.delay_rate,
            "delay_ms": self.delay_ms,
            "truncate_rate": self.truncate_rate,
            "corrupt_rate": self.corrupt_rate,
            "stalls": [
                {"start": s.start, "end": s.end, "hold_s": s.hold_s}
                for s in self.stalls
            ],
        }


#: Named plans for ``repro chaos-proxy --plan`` / ``repro chaos-fleet
#: --plan``.  Rates are deliberately modest: the point is that the fleet
#: *completes identically* under them, not that it suffers maximally.
NAMED_INFRA_PLANS: Dict[str, InfraFaultSpec] = {
    "none": InfraFaultSpec(),
    "flaky": InfraFaultSpec(refuse_rate=0.10, delay_rate=0.20,
                            delay_ms=10.0),
    "lossy": InfraFaultSpec(truncate_rate=0.10, corrupt_rate=0.10),
    "nasty": InfraFaultSpec(refuse_rate=0.08, error_rate=0.06,
                            delay_rate=0.12, delay_ms=8.0,
                            truncate_rate=0.06, corrupt_rate=0.06,
                            stalls=(RequestStall(3, 5, 0.3),)),
}


def named_infra_spec(name: str, seed: int = 0) -> InfraFaultSpec:
    """The named preset re-seeded with ``seed``."""
    try:
        base = NAMED_INFRA_PLANS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown infra fault plan {name!r}; valid: "
            f"{', '.join(sorted(NAMED_INFRA_PLANS))}") from None
    return replace(base, seed=seed)


class InfraFaultPlan:
    """One proxy's fault decisions, drawn deterministically from a spec.

    :meth:`decide` is called once per faultable request, in arrival
    order, under the plan's own lock (the proxy serves threads
    concurrently; the decision *sequence* stays deterministic, which
    request draws which decision follows arrival order).  Per-fault
    substreams keep the streams independent: turning a fault type on or
    off never changes any other type's draws.
    """

    def __init__(self, spec: InfraFaultSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._ordinal = 0
        self._refuse_rng = substream(spec.seed, "infra.refuse")
        self._error_rng = substream(spec.seed, "infra.error")
        self._delay_rng = substream(spec.seed, "infra.delay")
        self._truncate_rng = substream(spec.seed, "infra.truncate")
        self._corrupt_rng = substream(spec.seed, "infra.corrupt")
        self._corrupt_byte_rng = substream(spec.seed, "infra.corrupt.byte")
        self.counters: Dict[str, int] = {
            "requests_seen": 0,
            "connections_refused": 0,
            "responses_errored": 0,
            "responses_delayed": 0,
            "responses_truncated": 0,
            "responses_corrupted": 0,
            "requests_stalled": 0,
        }

    # ------------------------------------------------------------------ #
    def decide(self) -> InfraDecision:
        """Draw the fault verdict for the next request.

        Zero-rate fault types consume no RNG draws.  A refused or
        errored request still consumes this ordinal's draws for the
        delivery faults — the decision stream per fault type depends
        only on how many requests were seen, never on which earlier
        faults fired.
        """
        spec = self.spec
        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
            self.counters["requests_seen"] += 1
            stall_s = 0.0
            for stall in spec.stalls:
                if stall.start <= ordinal < stall.end:
                    stall_s = max(stall_s, stall.hold_s)
            if stall_s > 0.0:
                self.counters["requests_stalled"] += 1
            refuse = (spec.refuse_rate > 0.0
                      and self._refuse_rng.random() < spec.refuse_rate)
            error = (spec.error_rate > 0.0
                     and self._error_rng.random() < spec.error_rate)
            delay_s = 0.0
            if spec.delay_rate > 0.0 \
                    and self._delay_rng.random() < spec.delay_rate:
                delay_s = (float(self._delay_rng.exponential(spec.delay_ms))
                           * 1e-3 if spec.delay_ms > 0 else 0.0)
            truncate = (spec.truncate_rate > 0.0
                        and self._truncate_rng.random() < spec.truncate_rate)
            corrupt = (spec.corrupt_rate > 0.0
                       and self._corrupt_rng.random() < spec.corrupt_rate)
            if truncate and corrupt:
                corrupt = False
            if refuse:
                error, delay_s, truncate, corrupt = False, 0.0, False, False
                self.counters["connections_refused"] += 1
                return InfraDecision(refuse=True, stall_s=stall_s)
            if error:
                delay_s, truncate, corrupt = 0.0, False, False
                self.counters["responses_errored"] += 1
                return InfraDecision(error=503, stall_s=stall_s)
            if delay_s > 0.0:
                self.counters["responses_delayed"] += 1
            if truncate:
                self.counters["responses_truncated"] += 1
            if corrupt:
                self.counters["responses_corrupted"] += 1
            return InfraDecision(delay_s=delay_s, truncate=truncate,
                                 corrupt=corrupt, stall_s=stall_s)

    def corrupt_body(self, body: bytes) -> bytes:
        """Flip one seeded-random byte of ``body`` (unchanged if empty)."""
        if not body:
            return body
        with self._lock:
            offset = int(self._corrupt_byte_rng.integers(0, len(body)))
        mutated = bytearray(body)
        mutated[offset] ^= 0x01
        return bytes(mutated)

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, int]:
        """The injection counters (exact totals)."""
        with self._lock:
            return dict(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InfraFaultPlan {self.spec.describe()} {self.counters}>"
