"""Deterministic, seeded fault injection for the simulated machines.

``repro.faults`` perturbs a run the way an unreliable interconnect or a
degraded node would — dropping, duplicating and delaying messages, slowing
links, stalling processors — while keeping the simulation bit-for-bit
reproducible: every decision is drawn from :func:`repro.util.rng.substream`
streams derived from an explicit seed, never from wall-clock state, so the
same :class:`FaultSpec` produces the same :class:`FaultPlan` decisions and
the same run, event for event.

The plan is consulted at two injection points (see
:mod:`repro.machines.network`): the tx NIC (duplication, link degradation)
and rx delivery (drop, delay — routed through the simulator's ``perturb``
hook so retracted deliveries are ordinary cancelled events).  Surviving a
plan with a nonzero drop rate requires the reliable-delivery layer
(:mod:`repro.runtime.reliable`); the ``repro chaos`` CLI wires the two
together and asserts the coherence invariant still holds.

:mod:`repro.faults.infra` applies the same seeded-spec discipline one
layer up, to the *real* HTTP transport between a sweep host and its
``repro worker`` fleet: :class:`InfraFaultSpec` drives the ``repro
chaos-proxy`` man-in-the-middle, and ``repro chaos-fleet``
(:mod:`repro.faults.chaosfleet`) verifies the hardened dispatch path
survives it byte-for-byte.
"""

from repro.faults.infra import (
    NAMED_INFRA_PLANS,
    InfraFaultPlan,
    InfraFaultSpec,
    RequestStall,
    named_infra_spec,
)
from repro.faults.schedule import (
    FaultPlan,
    FaultSpec,
    LinkDegrade,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    NodeSlowdown,
    NodeStall,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InfraFaultPlan",
    "InfraFaultSpec",
    "LinkDegrade",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "NAMED_INFRA_PLANS",
    "NodeSlowdown",
    "NodeStall",
    "RequestStall",
    "named_infra_spec",
]
