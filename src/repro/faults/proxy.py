"""``repro chaos-proxy``: a fault-injecting HTTP man-in-the-middle.

The proxy sits between a sweep host and one ``repro worker`` and applies
an :class:`~repro.faults.infra.InfraFaultPlan` to the dispatch path —
the *real* dispatch path: the host speaks to the proxy exactly as it
would to a worker, the worker never knows the proxy exists, and every
fault the host survives is therefore survived by the production code,
not by a test double.

Scope: faults apply only to ``POST /v1/units`` (the dispatch path whose
integrity the fleet's hardening defends).  Health and metrics requests
forward untouched — the breaker's half-open probes must measure the
*worker*, and observability must not be able to un-finish a sweep.
With an all-zero spec every request (units included) forwards
byte-verbatim and no RNG is drawn: ``chaos-proxy --plan none`` is
contractually a transparent TCP relay at the HTTP layer.

The proxy's own counters are served at ``GET /chaos/v1/counters`` (a
path no worker endpoint occupies), so CI can scrape what was injected
without touching the plan object.
"""

from __future__ import annotations

import json
import logging
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import EXIT_BAD_REQUEST, ExperimentError
from repro.faults.infra import (
    NAMED_INFRA_PLANS,
    InfraFaultPlan,
    InfraFaultSpec,
    RequestStall,
    named_infra_spec,
)
from repro.telemetry.log import get_logger, log_event

_log = get_logger("faults.proxy")

#: The proxy's own management prefix (never forwarded).
_CHAOS_PREFIX = "/chaos/v1/"


class ChaosProxy:
    """One worker's fault-injecting reverse proxy (port 0 = free port)."""

    def __init__(self, upstream: str, spec: InfraFaultSpec,
                 host: str = "127.0.0.1", port: int = 0,
                 request_timeout: float = 300.0) -> None:
        self.upstream = upstream.rstrip("/")
        self.plan = InfraFaultPlan(spec)
        self.request_timeout = request_timeout
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="chaos-proxy-http",
                                        daemon=True)
        self._thread.start()
        log_event(_log, logging.INFO, "chaos_proxy_started", url=self.url,
                  upstream=self.upstream, spec=self.plan.spec.describe())

    def join(self) -> None:
        if self._thread is not None:
            self._thread.join()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ #
    def forward(self, method: str, path: str, body: Optional[bytes],
                content_type: Optional[str]
                ) -> Tuple[int, str, bytes, Optional[str]]:
        """Relay one request upstream; returns (status, ctype, body, retry).

        An upstream HTTP error is a *response* (its status and body relay
        verbatim — the host's error taxonomy must survive the proxy); an
        unreachable upstream becomes a 502 with a structured body.
        """
        headers: Dict[str, str] = {}
        if content_type:
            headers["Content-Type"] = content_type
        req = urllib.request.Request(self.upstream + path, data=body,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    req, timeout=self.request_timeout) as resp:
                return (resp.status,
                        resp.headers.get("Content-Type",
                                         "application/json"),
                        resp.read(),
                        resp.headers.get("Retry-After"))
        except urllib.error.HTTPError as exc:
            return (exc.code,
                    exc.headers.get("Content-Type", "application/json"),
                    exc.read(),
                    exc.headers.get("Retry-After"))
        except (urllib.error.URLError, socket.timeout, OSError) as exc:
            payload = json.dumps({
                "error": f"chaos proxy upstream {self.upstream} "
                         f"unreachable: {exc}",
                "type": "ExperimentError",
                "exit_code": EXIT_BAD_REQUEST,
            }).encode("utf-8")
            return 502, "application/json", payload, None

    def counters_doc(self) -> Dict[str, Any]:
        return {
            "upstream": self.upstream,
            "spec": self.plan.spec.to_json(),
            "counters": self.plan.summary(),
        }


def _make_handler(proxy: ChaosProxy):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
            pass

        # -- plumbing --------------------------------------------------- #
        def _reply(self, status: int, ctype: str, body: bytes,
                   retry_after: Optional[str] = None,
                   truncate: bool = False) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                if retry_after is not None:
                    self.send_header("Retry-After", retry_after)
                if truncate:
                    # The advertised length will never arrive: close the
                    # connection after the partial write so the client
                    # sees IncompleteRead, exactly like a worker killed
                    # mid-response.
                    self.send_header("Connection", "close")
                self.end_headers()
                self.wfile.write(body[:len(body) // 2] if truncate
                                 else body)
            except (BrokenPipeError, ConnectionResetError):
                pass  # the client gave up first; nothing to salvage
            if truncate:
                self.close_connection = True

        def _refuse(self) -> None:
            """Abort the connection with no response bytes at all."""
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self.close_connection = True

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", 0))
            return self.rfile.read(length) if length else b""

        def _relay(self, faultable: bool) -> None:
            body = self._read_body() if self.command == "POST" else None
            decision = proxy.plan.decide() if faultable else None
            if decision is not None and decision.stall_s > 0.0:
                time.sleep(decision.stall_s)
            if decision is not None and decision.refuse:
                log_event(_log, logging.INFO, "chaos_refused",
                          path=self.path)
                self._refuse()
                return
            if decision is not None and decision.error is not None:
                log_event(_log, logging.INFO, "chaos_errored",
                          path=self.path, status=decision.error)
                self._reply(decision.error, "application/json", json.dumps({
                    "error": "chaos proxy injected a server error",
                    "type": "ExperimentError",
                    "exit_code": EXIT_BAD_REQUEST,
                }).encode("utf-8"))
                return
            status, ctype, payload, retry_after = proxy.forward(
                self.command, self.path, body,
                self.headers.get("Content-Type"))
            if decision is not None and decision.delay_s > 0.0:
                time.sleep(decision.delay_s)
            if decision is not None and decision.corrupt:
                log_event(_log, logging.INFO, "chaos_corrupted",
                          path=self.path, nbytes=len(payload))
                payload = proxy.plan.corrupt_body(payload)
            truncate = bool(decision is not None and decision.truncate
                            and payload)
            if truncate:
                log_event(_log, logging.INFO, "chaos_truncated",
                          path=self.path, nbytes=len(payload))
            self._reply(status, ctype, payload, retry_after=retry_after,
                        truncate=truncate)

        # -- verbs ------------------------------------------------------ #
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path == _CHAOS_PREFIX + "counters":
                self._reply(200, "application/json",
                            json.dumps(proxy.counters_doc()).encode("utf-8"))
                return
            self._relay(faultable=False)

        def do_POST(self):  # noqa: N802 - http.server API
            self._relay(faultable=self.path == "/v1/units")

    return Handler


# ---------------------------------------------------------------------- #
# CLI: ``repro chaos-proxy``
# ---------------------------------------------------------------------- #
def add_infra_spec_args(p, default_plan: str = "none") -> None:
    """The shared ``--plan``/rate flags (chaos-proxy and chaos-fleet)."""
    p.add_argument("--plan", default=default_plan,
                   choices=sorted(NAMED_INFRA_PLANS),
                   help=f"named fault plan (default {default_plan})")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--refuse-rate", type=float, default=None)
    p.add_argument("--error-rate", type=float, default=None)
    p.add_argument("--delay-rate", type=float, default=None)
    p.add_argument("--delay-ms", type=float, default=None)
    p.add_argument("--truncate-rate", type=float, default=None)
    p.add_argument("--corrupt-rate", type=float, default=None)
    p.add_argument("--stall", action="append", default=None,
                   metavar="START:END:HOLD_S",
                   help="hold requests with ordinal in [START, END) for "
                        "HOLD_S seconds (repeatable; overrides the plan's "
                        "windows)")


def spec_from_args(args) -> InfraFaultSpec:
    """Resolve the named plan plus explicit rate overrides."""
    from dataclasses import replace

    spec = named_infra_spec(args.plan, seed=args.seed)
    overrides: Dict[str, Any] = {}
    for flag, field in (("refuse_rate", "refuse_rate"),
                        ("error_rate", "error_rate"),
                        ("delay_rate", "delay_rate"),
                        ("delay_ms", "delay_ms"),
                        ("truncate_rate", "truncate_rate"),
                        ("corrupt_rate", "corrupt_rate")):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if args.stall is not None:
        windows = []
        for text in args.stall:
            parts = text.split(":")
            if len(parts) != 3:
                raise ExperimentError(
                    f"--stall expects START:END:HOLD_S, got {text!r}")
            try:
                windows.append(RequestStall(int(parts[0]), int(parts[1]),
                                            float(parts[2])))
            except ValueError as exc:
                raise ExperimentError(
                    f"--stall expects START:END:HOLD_S, got {text!r}: "
                    f"{exc}") from exc
        overrides["stalls"] = tuple(windows)
    return replace(spec, **overrides) if overrides else spec


def add_chaos_proxy_parser(sub) -> None:
    """Register ``chaos-proxy`` on an argparse subparsers object."""
    from repro.telemetry.log import add_logging_args

    p = sub.add_parser(
        "chaos-proxy",
        help="fault-injecting HTTP proxy in front of a repro worker",
        description="Relay requests to an upstream `repro worker`, "
                    "applying a seeded infrastructure fault plan to unit "
                    "dispatches (POST /v1/units). The proxy's injection "
                    "counters are served at GET /chaos/v1/counters.",
    )
    p.add_argument("--upstream", required=True,
                   help="the worker URL to relay to")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port; 0 picks a free port (default 0)")
    p.add_argument("--request-timeout", type=float, default=300.0,
                   help="upstream request timeout in seconds")
    add_infra_spec_args(p, default_plan="none")
    add_logging_args(p)
    p.set_defaults(func=cmd_chaos_proxy)


def cmd_chaos_proxy(args) -> int:
    from repro.telemetry.log import configure_from_args

    configure_from_args(args, default_level="info")
    try:
        spec = spec_from_args(args)
        proxy = ChaosProxy(args.upstream, spec, host=args.host,
                           port=args.port,
                           request_timeout=args.request_timeout)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_REQUEST
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_REQUEST
    proxy.start_background()
    print(f"repro chaos-proxy listening on {proxy.url} -> {args.upstream} "
          f"[{spec.describe()}]", flush=True)
    try:
        proxy.join()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
        proxy.stop()
    return 0
