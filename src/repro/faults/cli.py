"""The ``repro chaos`` subcommand.

Runs one application on the iPSC/860 model under a seeded fault plan and
verifies the two properties the fault-injection subsystem promises:

* **coherence** — the run under faults produces bit-identical final
  shared-object state to the fault-free run (the reliable-delivery layer
  absorbs drops/duplicates/delays without changing *what* is computed);
* **determinism** — two runs under the same seed produce identical
  metrics and identical final state (fault decisions are a pure function
  of the spec, never of wall-clock state).

The verdicts, the fault spec and the recovery counters are emitted as a
validated ``repro.chaos/1`` document (``--json``).  Exit status: 0 both
verdicts hold, 1 a verdict failed, 2 bad arguments, 3 the simulation
raised (coherence violation, retry budget exhausted, deadlock).
"""

from __future__ import annotations

import sys


def add_chaos_parser(sub) -> None:
    """Register the ``chaos`` subcommand on an argparse subparsers object."""
    from repro.apps import ALL_APPLICATIONS

    p = sub.add_parser(
        "chaos",
        help="run under a seeded fault plan; verify coherence + determinism",
        description="Execute one application configuration on the iPSC/860 "
                    "model under deterministic fault injection, twice, and "
                    "verify the results match the fault-free run and each "
                    "other.",
    )
    p.add_argument("--app", required=True, choices=sorted(ALL_APPLICATIONS))
    p.add_argument("--machine", default="ipsc860",
                   help="must be ipsc860 — fault injection perturbs the "
                        "message fabric, which DASH does not have")
    p.add_argument("--scale", default="tiny", choices=["tiny", "paper"],
                   help="chaos defaults to tiny: the verification runs the "
                        "simulation three times")
    p.add_argument("--procs", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--drop-rate", type=float, default=0.0)
    p.add_argument("--duplicate-rate", type=float, default=0.0)
    p.add_argument("--delay-rate", type=float, default=0.0)
    p.add_argument("--delay-us", type=float, default=200.0,
                   help="mean extra delivery delay when a delay fires")
    p.add_argument("--degrade-rate", type=float, default=0.0)
    p.add_argument("--degrade-multiplier", type=float, default=4.0)
    p.add_argument("--max-sim-time", type=float, default=None,
                   help="abort if simulated time would pass this guard")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the validated repro.chaos/1 verdict document")
    p.set_defaults(func=cmd_chaos)


def cmd_chaos(args) -> int:
    from repro.errors import (
        ExperimentError,
        JadeError,
        MachineError,
        SimulationError,
    )
    from repro.faults import FaultSpec
    from repro.obs.snapshot import dump_json
    from repro.serve.api import chaos_verdict
    from repro.serve.requests import ChaosRequest

    if args.machine != "ipsc860":
        print("error: repro chaos requires --machine ipsc860 — fault "
              "injection perturbs the message fabric, and only the iPSC/860 "
              "model has one", file=sys.stderr)
        return 2
    try:
        spec = FaultSpec(
            seed=args.seed,
            drop_rate=args.drop_rate,
            duplicate_rate=args.duplicate_rate,
            delay_rate=args.delay_rate,
            delay_us=args.delay_us,
            degrade_rate=args.degrade_rate,
            degrade_multiplier=args.degrade_multiplier,
        )
        request = ChaosRequest(app=args.app, procs=args.procs,
                               scale=args.scale, faults=spec,
                               max_sim_time=args.max_sim_time)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # The shared executor: the same three-run verification the service
    # performs for a submitted ChaosRequest.
    try:
        doc, reference, first = chaos_verdict(request)
    except (SimulationError, JadeError, MachineError) as exc:
        # The simulation itself failed under faults: a coherence violation,
        # an exhausted retry budget, a deadlock, or the max-sim-time guard.
        print(f"error: simulation failed under fault plan "
              f"[{spec.describe()}]: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verdicts = doc["verdicts"]

    print(f"chaos {args.app} on {args.machine}, {args.procs} processors "
          f"({args.scale} scale) [{spec.describe()}]")
    print(f"  elapsed        fault-free {reference.elapsed:.6g} s, "
          f"under faults {first.elapsed:.6g} s")
    for key, value in doc["counters"].items():
        print(f"  {key:<22} {value:.6g}")
    for key, value in verdicts.items():
        print(f"  {key:<22} {'PASS' if value else 'FAIL'}")
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(dump_json(doc) + "\n")
        except OSError as exc:
            print(f"error: cannot write chaos JSON to {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"  verdict JSON -> {args.json}")
    return 0 if verdicts["coherent"] and verdicts["deterministic"] else 1
