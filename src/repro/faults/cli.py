"""The ``repro chaos`` subcommand.

Runs one application on the iPSC/860 model under a seeded fault plan and
verifies the two properties the fault-injection subsystem promises:

* **coherence** — the run under faults produces bit-identical final
  shared-object state to the fault-free run (the reliable-delivery layer
  absorbs drops/duplicates/delays without changing *what* is computed);
* **determinism** — two runs under the same seed produce identical
  metrics and identical final state (fault decisions are a pure function
  of the spec, never of wall-clock state).

The verdicts, the fault spec and the recovery counters are emitted as a
validated ``repro.chaos/1`` document (``--json``).  Exit status: 0 both
verdicts hold, 1 a verdict failed, 2 bad arguments, 3 the simulation
raised (coherence violation, retry budget exhausted, deadlock).
"""

from __future__ import annotations

import sys

import numpy as np


def add_chaos_parser(sub) -> None:
    """Register the ``chaos`` subcommand on an argparse subparsers object."""
    from repro.apps import ALL_APPLICATIONS

    p = sub.add_parser(
        "chaos",
        help="run under a seeded fault plan; verify coherence + determinism",
        description="Execute one application configuration on the iPSC/860 "
                    "model under deterministic fault injection, twice, and "
                    "verify the results match the fault-free run and each "
                    "other.",
    )
    p.add_argument("--app", required=True, choices=sorted(ALL_APPLICATIONS))
    p.add_argument("--machine", default="ipsc860",
                   help="must be ipsc860 — fault injection perturbs the "
                        "message fabric, which DASH does not have")
    p.add_argument("--scale", default="tiny", choices=["tiny", "paper"],
                   help="chaos defaults to tiny: the verification runs the "
                        "simulation three times")
    p.add_argument("--procs", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--drop-rate", type=float, default=0.0)
    p.add_argument("--duplicate-rate", type=float, default=0.0)
    p.add_argument("--delay-rate", type=float, default=0.0)
    p.add_argument("--delay-us", type=float, default=200.0,
                   help="mean extra delivery delay when a delay fires")
    p.add_argument("--degrade-rate", type=float, default=0.0)
    p.add_argument("--degrade-multiplier", type=float, default=4.0)
    p.add_argument("--max-sim-time", type=float, default=None,
                   help="abort if simulated time would pass this guard")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the validated repro.chaos/1 verdict document")
    p.set_defaults(func=cmd_chaos)


def _stores_match(a, b) -> bool:
    """Bit-identical final shared-object state across two runs."""
    if a is None or b is None:
        return False
    ids_a, ids_b = a.object_ids(), b.object_ids()
    if ids_a != ids_b:
        return False
    return all(np.array_equal(a.get(oid), b.get(oid)) for oid in ids_a)


def _chaos_doc(args, spec, metrics, options, verdicts) -> dict:
    from repro.obs.schema import CHAOS_SCHEMA

    return {
        "schema": CHAOS_SCHEMA,
        "run": {
            "application": args.app,
            "machine": args.machine,
            "num_processors": args.procs,
            "scale": args.scale,
            "options": options.describe(),
        },
        "fault_spec": spec.to_json(),
        "counters": {
            "messages_dropped": metrics.messages_dropped,
            "messages_duplicated": metrics.messages_duplicated,
            "retransmissions": metrics.retransmissions,
            "duplicates_suppressed": metrics.duplicates_suppressed,
            "ack_bytes": metrics.ack_bytes,
            "recovery_stall_us": metrics.recovery_stall_us,
        },
        "verdicts": dict(verdicts),
    }


def cmd_chaos(args) -> int:
    from repro.apps import MachineKind
    from repro.errors import (
        ExperimentError,
        JadeError,
        MachineError,
        SimulationError,
    )
    from repro.faults import FaultSpec
    from repro.lab.experiments import run_app
    from repro.obs.schema import assert_valid
    from repro.obs.snapshot import dump_json
    from repro.runtime import RuntimeOptions

    if args.machine != "ipsc860":
        print("error: repro chaos requires --machine ipsc860 — fault "
              "injection perturbs the message fabric, and only the iPSC/860 "
              "model has one", file=sys.stderr)
        return 2
    try:
        spec = FaultSpec(
            seed=args.seed,
            drop_rate=args.drop_rate,
            duplicate_rate=args.duplicate_rate,
            delay_rate=args.delay_rate,
            delay_us=args.delay_us,
            degrade_rate=args.degrade_rate,
            degrade_multiplier=args.degrade_multiplier,
        )
        options = RuntimeOptions(max_sim_time=args.max_sim_time)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def one_run(faults):
        return run_app(args.app, args.procs, MachineKind(args.machine),
                       options.locality, options, args.scale, faults=faults)

    try:
        reference = one_run(None)
        first = one_run(spec)
        second = one_run(spec)
    except (SimulationError, JadeError, MachineError) as exc:
        # The simulation itself failed under faults: a coherence violation,
        # an exhausted retry budget, a deadlock, or the max-sim-time guard.
        print(f"error: simulation failed under fault plan "
              f"[{spec.describe()}]: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 3
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Snapshot-facing state: everything to_json() serializes, which is
    # exactly what bench-diff and the committed baselines compare.
    coherent = _stores_match(first.final_store, reference.final_store)
    deterministic = (
        dump_json(first.to_json()) == dump_json(second.to_json())
        and _stores_match(first.final_store, second.final_store))
    verdicts = {"coherent": coherent, "deterministic": deterministic}

    doc = _chaos_doc(args, spec, first, options, verdicts)
    try:
        assert_valid(doc)
    except ValueError as exc:  # pragma: no cover - producer bug guard
        print(f"error: {exc}", file=sys.stderr)
        return 3

    print(f"chaos {args.app} on {args.machine}, {args.procs} processors "
          f"({args.scale} scale) [{spec.describe()}]")
    print(f"  elapsed        fault-free {reference.elapsed:.6g} s, "
          f"under faults {first.elapsed:.6g} s")
    for key, value in doc["counters"].items():
        print(f"  {key:<22} {value:.6g}")
    for key, value in verdicts.items():
        print(f"  {key:<22} {'PASS' if value else 'FAIL'}")
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(dump_json(doc) + "\n")
        except OSError as exc:
            print(f"error: cannot write chaos JSON to {args.json}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"  verdict JSON -> {args.json}")
    return 0 if coherent and deterministic else 1
