"""``repro chaos-fleet``: chaos-engineer the distributed sweep path.

The command stands up a miniature production fleet *inside one process*
— N ``repro worker`` servers, each behind a fault-injecting
:class:`~repro.faults.proxy.ChaosProxy` — and pushes a real sweep
through it with the hardened :class:`~repro.fleet.backends.RemoteBackend`
(circuit breakers, integrity verification, requeue-on-failure).  Two
verdicts come out, mirroring ``repro chaos``'s coherence/determinism
pair at the infrastructure layer:

* **completed** — every unit produced metrics despite refused
  connections, injected 503s, truncated and corrupted bodies, stall
  windows and (optionally) one worker draining mid-sweep;
* **byte_identical** — the merged sweep snapshot is byte-for-byte the
  clean serial run's output.  Corruption may cost retries; it must never
  cost a byte.

The verdicts, the fault spec and three counter groups (host survival
counters, proxy injection counters, worker observation counters) are
emitted as a validated ``repro.chaos/2`` document.  Exit status: 0 both
verdicts hold, 1 a verdict failed, 2 bad arguments, 3 the simulation
raised.
"""

from __future__ import annotations

import logging
import sys
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import (
    EXIT_BAD_REQUEST,
    EXIT_VERIFICATION_FAILED,
    ExperimentError,
    exit_code_for,
)
from repro.faults.infra import InfraFaultSpec
from repro.telemetry.log import get_logger, log_event

_log = get_logger("faults.chaosfleet")


def _counter(registry, name: str, labels=()) -> Any:
    """Fetch an existing instrument by name (help text is ignored)."""
    return registry.counter(name, "", labels=tuple(labels))


def _host_counters(registry) -> Dict[str, int]:
    """The host-side survival counters a chaos run is judged by."""
    breaker = _counter(registry, "repro_fleet_breaker_transitions_total",
                       labels=("state",))
    probes = _counter(registry, "repro_fleet_health_probes_total",
                      labels=("outcome",))
    return {
        "units_dispatched": int(_counter(
            registry, "repro_fleet_units_dispatched_total").value()),
        "units_completed": int(_counter(
            registry, "repro_fleet_units_completed_total").value()),
        "units_failed": int(_counter(
            registry, "repro_fleet_units_failed_total").value()),
        "units_timed_out": int(_counter(
            registry, "repro_fleet_units_timed_out_total").value()),
        "units_retried": int(_counter(
            registry, "repro_fleet_units_retried_total").value()),
        "corrupt_responses": int(_counter(
            registry, "repro_fleet_corrupt_responses_total").value()),
        "checkpoint_quarantined": int(_counter(
            registry, "repro_fleet_checkpoint_quarantined_total").value()),
        "drained_dispatches": int(_counter(
            registry, "repro_fleet_drained_dispatches_total").value()),
        "breaker_opened": int(breaker.value(state="open")),
        "breaker_half_open": int(breaker.value(state="half_open")),
        "breaker_closed": int(breaker.value(state="closed")),
        "probes_ok": int(probes.value(outcome="ok")),
        "probes_failed": int(probes.value(outcome="failed")),
    }


def _worker_counters(workers: Sequence[Any]) -> Dict[str, int]:
    """Sum what the workers themselves observed (their own registries)."""
    totals = {
        "units_executed": 0,
        "duplicates_joined": 0,
        "drain_refusals": 0,
        "client_disconnects": 0,
        "ledger_evicted_sweeps": 0,
    }
    names = {
        "units_executed": "repro_worker_units_executed_total",
        "duplicates_joined": "repro_worker_duplicates_joined_total",
        "drain_refusals": "repro_worker_drain_refusals_total",
        "client_disconnects": "repro_client_disconnects_total",
        "ledger_evicted_sweeps": "repro_worker_ledger_evicted_sweeps_total",
    }
    for worker in workers:
        for key, metric in names.items():
            totals[key] += int(_counter(worker.registry, metric).value())
    return totals


def _proxy_counters(proxies: Sequence[Any]) -> Dict[str, int]:
    """Sum the injection counters across every proxy's fault plan."""
    totals: Dict[str, int] = {}
    for proxy in proxies:
        for key, value in proxy.plan.summary().items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


class _DrainTrigger:
    """Drain one worker mid-sweep, once N units have completed.

    Polls the host's completed-units counter (observation only — the
    counter moves exactly once per merged unit) and calls
    ``worker.drain()``, the same method the worker's SIGTERM handler
    runs: in-flight units finish, new dispatches get 503 + Retry-After,
    the host requeues them on the surviving workers.
    """

    def __init__(self, worker: Any, registry: Any, after_units: int) -> None:
        self.worker = worker
        self.after_units = after_units
        self.fired = False
        self._completed = _counter(registry,
                                   "repro_fleet_units_completed_total")
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="chaos-drain-trigger",
                                        daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._completed.value() >= self.after_units:
                self.fired = True
                log_event(_log, logging.INFO, "chaos_drain_triggered",
                          worker=self.worker.url,
                          after_units=self.after_units)
                self.worker.drain(timeout=60.0)
                return
            self._stop.wait(0.01)

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_chaos_fleet(
    app: str,
    machine: "Any",
    procs: Sequence[int],
    scale: str,
    spec: InfraFaultSpec,
    n_workers: int = 2,
    retries: int = 8,
    request_timeout: float = 300.0,
    drain_after: Optional[int] = None,
    trace: Optional[Any] = None,
) -> Dict[str, Any]:
    """One full chaos-fleet verification; returns the ``repro.chaos/2`` doc.

    ``drain_after`` > 0 drains one worker after that many units complete
    (requires ``n_workers >= 2`` so the sweep can finish on the rest);
    ``None`` picks half the sweep, ``0`` disables the drain.  Each proxy
    gets the spec re-seeded with ``spec.seed + proxy index`` so the
    fleet's workers do not suffer identical fault sequences, while the
    whole injection pattern stays a pure function of the seed.
    """
    from repro.fleet.backends import RemoteBackend
    from repro.fleet.executor import (
        run_units_resilient,
        sweep_snapshot_doc,
        sweep_units,
    )
    from repro.fleet.worker import WorkerServer
    from repro.lab.experiments import ExperimentRow
    from repro.faults.proxy import ChaosProxy
    from repro.obs.schema import CHAOS_FLEET_SCHEMA
    from repro.obs.snapshot import dump_json
    from repro.telemetry.metrics import MetricsRegistry

    if n_workers < 1:
        raise ExperimentError(
            f"chaos-fleet needs at least one worker, got {n_workers}")
    units = sweep_units(app, machine, list(procs), scale)
    if drain_after is None:
        drain_after = len(units) // 2 if n_workers >= 2 else 0
    if drain_after and n_workers < 2:
        raise ExperimentError(
            "draining a worker mid-sweep needs --workers >= 2 (the "
            "remaining workers must finish the sweep)")

    # The clean reference: the serial path whose bytes every backend
    # must reproduce.
    serial = run_units_resilient(units, jobs=1,
                                 registry=MetricsRegistry())
    serial_rows = [
        ExperimentRow(app, unit.machine, unit.level, unit.procs, metrics)
        for unit, metrics in zip(units, serial.metrics)
    ]
    serial_text = dump_json(sweep_snapshot_doc(
        app, machine.value, scale, serial_rows)) + "\n"

    workers: List[WorkerServer] = []
    proxies: List[ChaosProxy] = []
    trigger: Optional[_DrainTrigger] = None
    registry = MetricsRegistry()
    try:
        for i in range(n_workers):
            worker = WorkerServer(port=0, registry=MetricsRegistry())
            worker.start_background()
            workers.append(worker)
            proxy = ChaosProxy(worker.url,
                               replace(spec, seed=spec.seed + i),
                               request_timeout=request_timeout)
            proxy.start_background()
            proxies.append(proxy)
        if drain_after:
            trigger = _DrainTrigger(workers[-1], registry, drain_after)
            trigger.start()
        backend = RemoteBackend([proxy.url for proxy in proxies],
                                request_timeout=request_timeout,
                                trace=trace)
        outcome = run_units_resilient(
            units, jobs=1, retries=retries, partial=True,
            registry=registry, backend=backend)
    finally:
        if trigger is not None:
            trigger.stop()
        for proxy in proxies:
            proxy.stop()
        for worker in workers:
            if not worker.draining:
                worker.stop()

    completed = outcome.ok and all(m is not None for m in outcome.metrics)
    byte_identical = False
    if completed:
        rows = [
            ExperimentRow(app, unit.machine, unit.level, unit.procs,
                          metrics)
            for unit, metrics in zip(units, outcome.metrics)
        ]
        chaos_text = dump_json(sweep_snapshot_doc(
            app, machine.value, scale, rows)) + "\n"
        byte_identical = chaos_text == serial_text

    return {
        "schema": CHAOS_FLEET_SCHEMA,
        "sweep": {
            "app": app,
            "machine": machine.value,
            "scale": scale,
            "units": len(units),
            "workers": n_workers,
            "drain_after": drain_after,
            "drained": bool(trigger is not None and trigger.fired),
            "failures": [f.describe() for f in outcome.failures],
        },
        "fault_spec": spec.to_json(),
        "counters": {
            "host": _host_counters(registry),
            "proxy": _proxy_counters(proxies),
            "worker": _worker_counters(workers),
        },
        "verdicts": {
            "completed": completed,
            "byte_identical": byte_identical,
        },
    }


# ---------------------------------------------------------------------- #
# CLI: ``repro chaos-fleet``
# ---------------------------------------------------------------------- #
def add_chaos_fleet_parser(sub) -> None:
    """Register ``chaos-fleet`` on an argparse subparsers object."""
    from repro.apps import ALL_APPLICATIONS
    from repro.faults.proxy import add_infra_spec_args
    from repro.telemetry.log import add_logging_args

    p = sub.add_parser(
        "chaos-fleet",
        help="sweep through fault-injecting proxies; verify bytes survive",
        description="Run a sweep against in-process workers fronted by "
                    "chaos proxies under a seeded infrastructure fault "
                    "plan, and verify the merged snapshot is byte-"
                    "identical to the clean serial run. Emits a validated "
                    "repro.chaos/2 verdict document.",
    )
    p.add_argument("--app", default="water",
                   choices=sorted(ALL_APPLICATIONS))
    p.add_argument("--machine", default="ipsc860",
                   choices=["ipsc860", "dash"])
    p.add_argument("--scale", default="tiny", choices=["tiny", "paper"],
                   help="chaos-fleet defaults to tiny: the sweep runs "
                        "twice (clean serial + chaos)")
    p.add_argument("--procs", type=int, nargs="+", default=[1, 2])
    p.add_argument("--workers", type=int, default=2,
                   help="in-process repro workers, one chaos proxy each "
                        "(default 2)")
    p.add_argument("--retries", type=int, default=8,
                   help="extra dispatch attempts per unit beyond one per "
                        "worker (default 8 — chaos burns attempts)")
    p.add_argument("--request-timeout", type=float, default=300.0)
    p.add_argument("--drain-after", type=int, default=None,
                   help="drain one worker after this many completed units "
                        "(default: half the sweep; 0 disables)")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the validated repro.chaos/2 verdict "
                        "document")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the merged fleet trace timeline "
                        "(Chrome/Perfetto JSON)")
    add_infra_spec_args(p, default_plan="nasty")
    add_logging_args(p)
    p.set_defaults(func=cmd_chaos_fleet)


def cmd_chaos_fleet(args) -> int:
    from repro.apps import MachineKind
    from repro.errors import ReproError
    from repro.faults.proxy import spec_from_args
    from repro.obs.schema import assert_valid
    from repro.obs.snapshot import dump_json
    from repro.telemetry.fleet import FleetTraceCollector, merge_timeline
    from repro.telemetry.log import configure_from_args

    configure_from_args(args, default_level="info")
    try:
        spec = spec_from_args(args)
        machine = MachineKind(args.machine)
        if args.workers < 1 or args.retries < 0:
            raise ExperimentError(
                "--workers must be >= 1 and --retries >= 0")
    except (ExperimentError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BAD_REQUEST

    trace = FleetTraceCollector() if args.trace_out else None
    t0 = time.monotonic()
    try:
        doc = run_chaos_fleet(
            args.app, machine, args.procs, args.scale, spec,
            n_workers=args.workers, retries=args.retries,
            request_timeout=args.request_timeout,
            drain_after=args.drain_after, trace=trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    assert_valid(doc)
    elapsed = time.monotonic() - t0

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(dump_json(doc) + "\n")
    if args.trace_out and trace is not None:
        timeline = merge_timeline(trace.records, sweep=trace.sweep)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(dump_json(timeline) + "\n")

    host = doc["counters"]["host"]
    proxy = doc["counters"]["proxy"]
    verdicts = doc["verdicts"]
    print(f"chaos-fleet: {args.app} on {args.machine} ({args.scale}), "
          f"{doc['sweep']['units']} units across {args.workers} workers "
          f"[{spec.describe()}] in {elapsed:.1f}s")
    print(f"  injected: {proxy.get('connections_refused', 0)} refused, "
          f"{proxy.get('responses_errored', 0)} errored, "
          f"{proxy.get('responses_truncated', 0)} truncated, "
          f"{proxy.get('responses_corrupted', 0)} corrupted, "
          f"{proxy.get('requests_stalled', 0)} stalled")
    print(f"  survived: {host['units_retried']} requeued, "
          f"{host['corrupt_responses']} corrupt responses rejected, "
          f"{host['drained_dispatches']} drained dispatches, "
          f"{host['breaker_opened']} breaker opens, "
          f"{host['probes_ok']} probes ok")
    print(f"  completed: {str(verdicts['completed']).lower()}  "
          f"byte_identical: {str(verdicts['byte_identical']).lower()}")
    if verdicts["completed"] and verdicts["byte_identical"]:
        print("chaos-fleet verdict: PASS — every injected fault was "
              "survived and no byte changed")
        return 0
    for failure in doc["sweep"]["failures"]:
        print(f"  failure: {failure}", file=sys.stderr)
    print("chaos-fleet verdict: FAIL", file=sys.stderr)
    return EXIT_VERIFICATION_FAILED
