"""Fault specifications and the per-run fault plan.

A :class:`FaultSpec` is declarative and immutable: a seed, per-message
event rates, and explicit node-degradation windows.  A :class:`FaultPlan`
is one run's live instance of a spec: it owns the RNG substreams, draws a
decision for every message the network offers it (in deterministic send
order — the simulator fires events in a total order, so the draw sequence
is a pure function of the spec and the program), and records every
injected fault as a typed event for reports and tests.

Two plans built from the same spec make identical decisions; a plan is
never shared between runs (its RNG state *is* the run's fault history).

The typed events:

* :class:`MessageDrop` — an rx delivery retracted (the message vanishes
  between the NICs);
* :class:`MessageDuplicate` — the tx NIC injects an extra copy;
* :class:`MessageDelay` — an rx delivery postponed by ``extra_us``;
* :class:`LinkDegrade` — one message streams at ``per_byte_multiplier``
  times the normal per-byte cost on both NICs;
* :class:`NodeSlowdown` — task compute on a node multiplied by ``factor``
  inside a ``[start, end)`` window of simulated time;
* :class:`NodeStall` — a node freezes: compute submitted inside the
  window additionally waits until the window closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import ExperimentError
from repro.util.rng import substream


# ---------------------------------------------------------------------- #
# typed fault events
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class MessageDrop:
    """One retracted delivery: the message never reached the rx NIC."""

    time: float
    src: int
    dst: int
    kind: str


@dataclass(frozen=True)
class MessageDuplicate:
    """The tx NIC injected ``copies`` extra cop(ies) of one message."""

    time: float
    src: int
    dst: int
    kind: str
    copies: int = 1


@dataclass(frozen=True)
class MessageDelay:
    """One delivery postponed by ``extra_us`` microseconds in the fabric."""

    time: float
    src: int
    dst: int
    kind: str
    extra_us: float


@dataclass(frozen=True)
class LinkDegrade:
    """One message streamed at a degraded per-byte rate on both NICs."""

    time: float
    src: int
    dst: int
    per_byte_multiplier: float


@dataclass(frozen=True)
class NodeSlowdown:
    """Compute on ``node`` runs ``factor``× slower during ``[start, end)``."""

    node: int
    factor: float
    start: float
    end: float


@dataclass(frozen=True)
class NodeStall:
    """``node`` freezes during ``[start, end)``: compute submitted inside
    the window additionally waits for the window to close."""

    node: int
    start: float
    end: float


# ---------------------------------------------------------------------- #
# the spec
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model: seed + rates + degradation windows.

    All rates are per-message probabilities in ``[0, 1]``.  An all-zero
    spec is valid and injects nothing — by contract a run under it is
    byte-identical to a run with no spec at all (the injection points
    short-circuit before touching any RNG).
    """

    seed: int = 0
    #: Probability a message is dropped between the NICs.
    drop_rate: float = 0.0
    #: Probability the tx NIC injects one extra copy of a message.
    duplicate_rate: float = 0.0
    #: Probability a delivery is postponed, and the mean of the
    #: exponentially-distributed extra delay (microseconds).
    delay_rate: float = 0.0
    delay_us: float = 200.0
    #: Probability one message streams at ``degrade_multiplier`` times the
    #: normal per-byte cost.
    degrade_rate: float = 0.0
    degrade_multiplier: float = 4.0
    #: Explicit node-degradation windows (simulated seconds).
    slowdowns: Tuple[NodeSlowdown, ...] = ()
    stalls: Tuple[NodeStall, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate",
                     "degrade_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ExperimentError(
                    f"fault {name} must be in [0, 1], got {rate!r}")
        if self.delay_us < 0:
            raise ExperimentError(
                f"fault delay_us must be >= 0, got {self.delay_us!r}")
        if self.degrade_multiplier < 1.0:
            raise ExperimentError(
                "fault degrade_multiplier must be >= 1, got "
                f"{self.degrade_multiplier!r}")
        for slow in self.slowdowns:
            if slow.factor < 1.0 or slow.end <= slow.start:
                raise ExperimentError(f"malformed slowdown window {slow!r}")
        for stall in self.stalls:
            if stall.end <= stall.start:
                raise ExperimentError(f"malformed stall window {stall!r}")

    # ------------------------------------------------------------------ #
    @property
    def perturbs_messages(self) -> bool:
        """True when any per-message fault can fire — the condition under
        which the runtime must interpose reliable delivery."""
        return (self.drop_rate > 0.0 or self.duplicate_rate > 0.0
                or self.delay_rate > 0.0 or self.degrade_rate > 0.0)

    @property
    def any_faults(self) -> bool:
        return (self.perturbs_messages or bool(self.slowdowns)
                or bool(self.stalls))

    def describe(self) -> str:
        """Short stable description for reports and snapshot provenance."""
        bits = [f"seed={self.seed}"]
        for name, rate in (("drop", self.drop_rate),
                           ("dup", self.duplicate_rate),
                           ("delay", self.delay_rate),
                           ("degrade", self.degrade_rate)):
            if rate > 0.0:
                bits.append(f"{name}={rate:g}")
        if self.slowdowns:
            bits.append(f"slowdowns={len(self.slowdowns)}")
        if self.stalls:
            bits.append(f"stalls={len(self.stalls)}")
        return ",".join(bits)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "delay_us": self.delay_us,
            "degrade_rate": self.degrade_rate,
            "degrade_multiplier": self.degrade_multiplier,
            "slowdowns": [
                {"node": s.node, "factor": s.factor,
                 "start": s.start, "end": s.end}
                for s in self.slowdowns
            ],
            "stalls": [
                {"node": s.node, "start": s.start, "end": s.end}
                for s in self.stalls
            ],
        }


# ---------------------------------------------------------------------- #
# the plan
# ---------------------------------------------------------------------- #
class FaultPlan:
    """One run's fault decisions, drawn deterministically from a spec.

    The network consults the plan at its two injection points:

    * :meth:`tx_decision` at tx-NIC injection — duplication and link
      degradation, which shape how the message is sent;
    * :meth:`perturb_delivery` (installed as the simulator's ``perturb``
      hook) at rx delivery — drop and delay, which shape whether/when the
      scheduled delivery event survives.

    The runtimes consult :meth:`perturb_compute` when pricing task bodies.
    Separate RNG substreams per injection point keep the draw sequences
    independent of how tx and rx decisions interleave.
    """

    #: Cap on recorded typed events: counters keep exact totals, the event
    #: list is a diagnostic sample, and an adversarial plan over a long run
    #: should not hoard memory.
    MAX_RECORDED = 10_000

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._tx_rng = substream(spec.seed, "faults.tx")
        self._rx_rng = substream(spec.seed, "faults.delivery")
        #: Typed fault events actually injected, in injection order (the
        #: spec's node windows are included up front — they are part of
        #: the plan whether or not any compute lands inside them).
        self.injected: List[Any] = list(spec.slowdowns) + list(spec.stalls)
        self.counters: Dict[str, int] = {
            "messages_dropped": 0,
            "messages_duplicated": 0,
            "messages_delayed": 0,
            "links_degraded": 0,
            "compute_slowdowns": 0,
            "compute_stalls": 0,
        }

    # ------------------------------------------------------------------ #
    @property
    def perturbs_messages(self) -> bool:
        return self.spec.perturbs_messages

    def _record(self, event: Any) -> None:
        if len(self.injected) < self.MAX_RECORDED:
            self.injected.append(event)

    # ------------------------------------------------------------------ #
    # injection points
    # ------------------------------------------------------------------ #
    def tx_decision(self, now: float, src: int, dst: int, nbytes: int,
                    kind: str) -> Tuple[int, float]:
        """Decide duplication and degradation for one message at injection.

        Returns ``(extra_copies, per_byte_multiplier)``.  Zero-rate faults
        consume no RNG draws, so enabling one fault type does not shift
        another type's decision stream.
        """
        spec = self.spec
        copies = 0
        multiplier = 1.0
        if spec.duplicate_rate > 0.0 \
                and self._tx_rng.random() < spec.duplicate_rate:
            copies = 1
            self.counters["messages_duplicated"] += 1
            self._record(MessageDuplicate(now, src, dst, kind, copies))
        if spec.degrade_rate > 0.0 \
                and self._tx_rng.random() < spec.degrade_rate:
            multiplier = spec.degrade_multiplier
            self.counters["links_degraded"] += 1
            self._record(LinkDegrade(now, src, dst, multiplier))
        return copies, multiplier

    def perturb_delivery(self, tag: Any, time: float) -> Tuple[bool, float]:
        """The simulator ``perturb`` hook: ``(drop, extra_delay_seconds)``.

        ``tag`` is the network's ``("deliver", src, dst, kind)`` label;
        unlabelled events pass through untouched — only message deliveries
        are fair game.
        """
        if not (isinstance(tag, tuple) and len(tag) >= 4
                and tag[0] == "deliver"):
            return False, 0.0
        _, src, dst, kind = tag[:4]
        spec = self.spec
        if spec.drop_rate > 0.0 and self._rx_rng.random() < spec.drop_rate:
            self.counters["messages_dropped"] += 1
            self._record(MessageDrop(time, src, dst, kind))
            return True, 0.0
        if spec.delay_rate > 0.0 and self._rx_rng.random() < spec.delay_rate:
            extra_us = (float(self._rx_rng.exponential(spec.delay_us))
                        if spec.delay_us > 0 else 0.0)
            self.counters["messages_delayed"] += 1
            self._record(MessageDelay(time, src, dst, kind, extra_us))
            return False, extra_us * 1e-6
        return False, 0.0

    def perturb_compute(self, node: int, now: float, cost: float) -> float:
        """Apply node slowdown/stall windows to one compute submission."""
        spec = self.spec
        if not spec.slowdowns and not spec.stalls:
            return cost
        factor = 1.0
        for slow in spec.slowdowns:
            if slow.node == node and slow.start <= now < slow.end:
                factor *= slow.factor
        extra = 0.0
        for stall in spec.stalls:
            if stall.node == node and stall.start <= now < stall.end:
                extra = max(extra, stall.end - now)
        if factor != 1.0:
            self.counters["compute_slowdowns"] += 1
        if extra > 0.0:
            self.counters["compute_stalls"] += 1
        return cost * factor + extra

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, int]:
        """The injection counters (exact totals, never capped)."""
        return dict(self.counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan {self.spec.describe()} {self.counters}>"
