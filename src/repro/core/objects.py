"""Shared objects: the unit of Jade's data-access reasoning.

"Each piece of data allocated ... in this memory is a shared object.  The
programmer therefore implicitly aggregates the individual words of memory
into larger granularity shared objects by allocating data at that
granularity." (§2)

Two sizes per object
--------------------

Real payloads in this reproduction are numpy arrays (or arbitrary Python
values) that the task bodies genuinely compute on — that is how the test
suite proves parallel executions produce the serial program's results.
Because test payloads are deliberately small while the *paper's* data sets
are large (Water's molecule-derived object is 165,888 bytes), each object
carries an explicit ``sim_nbytes`` used by the machine cost models.  By
default ``sim_nbytes`` is the payload's actual size; applications override
it with the paper-scale figure so communication costs are realistic even
when numerics run scaled-down.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import SpecificationError


class SharedObject:
    """A named shared object with an initial payload and a simulated size.

    Instances are descriptors, not storage: actual data lives in
    :class:`ObjectStore` instances (one global store for the shared-memory
    machine, one per processor for the message-passing machine) keyed by
    object id.
    """

    __slots__ = ("object_id", "name", "initial", "sim_nbytes", "home_hint")

    def __init__(
        self,
        object_id: int,
        name: str,
        initial: Any = None,
        sim_nbytes: Optional[int] = None,
        home_hint: Optional[int] = None,
    ) -> None:
        self.object_id = object_id
        self.name = name
        self.initial = initial
        if sim_nbytes is None:
            sim_nbytes = _default_nbytes(initial)
        if sim_nbytes < 0:
            raise SpecificationError(f"object {name!r}: negative sim_nbytes")
        self.sim_nbytes = int(sim_nbytes)
        #: Preferred home processor on DASH (allocation placement) and
        #: initial owner hint on the iPSC/860.  ``None`` = round-robin.
        self.home_hint = home_hint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedObject {self.object_id}:{self.name} {self.sim_nbytes}B>"


def _default_nbytes(value: Any) -> int:
    """Best-effort size of a payload, used when ``sim_nbytes`` is not given.

    Containers are sized recursively so a nested payload such as a list of
    numpy rows gets a realistic ``sim_nbytes`` instead of a flat 8 bytes per
    top-level element.
    """
    if value is None:
        return 8
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    if isinstance(value, (list, tuple)):
        if not value:
            return 8
        return sum(_default_nbytes(item) for item in value)
    if isinstance(value, dict):
        if not value:
            return 16
        # 8 bytes of key/slot overhead per entry, plus the sized values.
        return sum(8 + _default_nbytes(item) for item in value.values())
    return 64


class ObjectRegistry:
    """Allocates shared objects with unique ids and stable names."""

    def __init__(self) -> None:
        self._objects: List[SharedObject] = []
        self._by_name: Dict[str, SharedObject] = {}

    def create(
        self,
        name: str,
        initial: Any = None,
        sim_nbytes: Optional[int] = None,
        home_hint: Optional[int] = None,
    ) -> SharedObject:
        if name in self._by_name:
            raise SpecificationError(f"duplicate shared object name {name!r}")
        obj = SharedObject(len(self._objects), name, initial, sim_nbytes, home_hint)
        self._objects.append(obj)
        self._by_name[name] = obj
        return obj

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self):
        return iter(self._objects)

    def by_id(self, object_id: int) -> SharedObject:
        try:
            return self._objects[object_id]
        except IndexError:
            raise SpecificationError(f"unknown object id {object_id}") from None

    def by_name(self, name: str) -> SharedObject:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(f"unknown object name {name!r}") from None


def _clone(value: Any) -> Any:
    """Deep-copy a payload (numpy fast-path)."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return _copy.deepcopy(value)


class ObjectStore:
    """A memory holding (version, payload) per object id.

    The shared-memory machine has one store; the message-passing machine
    has one per processor, and the communicator moves payloads between
    them.  Versions start at 0 (the initial payload, produced by the main
    thread) and increment on each write in serial program order.
    """

    def __init__(self, label: str = "store") -> None:
        self.label = label
        self._data: Dict[int, Any] = {}
        self._version: Dict[int, int] = {}
        #: Optional access observer (see :mod:`repro.check`): an object with
        #: ``on_store_get(store, object_id)`` / ``on_store_put(store,
        #: object_id)`` methods, notified on every payload access.  ``None``
        #: (the default) keeps the hot path at a single predicate check.
        self.observer: Optional[Any] = None

    def install(self, obj: SharedObject) -> None:
        """Place the object's initial payload as version 0."""
        self._data[obj.object_id] = _clone(obj.initial)
        self._version[obj.object_id] = 0

    def install_copy(self, object_id: int, version: int, payload: Any) -> None:
        """Install a payload received from another store (MP replication)."""
        self._data[object_id] = _clone(payload)
        self._version[object_id] = version

    def adopt(self, object_id: int, version: int, payload: Any) -> None:
        """Install a payload without copying (ownership transfer)."""
        self._data[object_id] = payload
        self._version[object_id] = version

    def has(self, object_id: int, version: Optional[int] = None) -> bool:
        if object_id not in self._data:
            return False
        return version is None or self._version[object_id] == version

    def get(self, object_id: int) -> Any:
        if self.observer is not None:
            self.observer.on_store_get(self, object_id)
        return self._data[object_id]

    def version(self, object_id: int) -> int:
        return self._version[object_id]

    def bump_version(self, object_id: int, to_version: int) -> None:
        """Record that the local payload is now ``to_version`` (after a write)."""
        self._version[object_id] = to_version

    def put(self, object_id: int, payload: Any) -> None:
        """Replace the payload outright (used by ``TaskContext.set``)."""
        if self.observer is not None:
            self.observer.on_store_put(self, object_id)
        self._data[object_id] = payload

    def drop(self, object_id: int) -> None:
        self._data.pop(object_id, None)
        self._version.pop(object_id, None)

    def object_ids(self) -> List[int]:
        return sorted(self._data)

    def export(self, object_id: int) -> Any:
        """Return a copy of the payload, as a message would carry it."""
        return _clone(self._data[object_id])
