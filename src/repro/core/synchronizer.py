"""The queue-based synchronizer: Jade's dependence-extraction algorithm.

"The synchronizer uses a queue-based algorithm to determine when tasks can
execute without violating the dynamic data dependence constraints." (§3.1)

Algorithm
---------

Each shared object carries a queue of access declarations in task-creation
(serial program) order.  A declaration is *ready* when every conflicting
earlier declaration on the same object has completed:

* a **read** is ready when no earlier write is still pending — so any
  prefix of reads proceeds concurrently (this is what makes replication
  both possible and necessary);
* a **write** (or read-write) is ready only when it is the oldest pending
  declaration on the object.

A task is *enabled* when all of its declarations are ready.  Completion
removes the task's declarations and re-evaluates the affected queues.

Versions
--------

The synchronizer also assigns version numbers, the bookkeeping that the
message-passing communicator is "integrated into" (§3.4.1): the *k*-th
write to an object in program order produces version *k*; a read added
after *k* writes requires version *k*.  The shared-memory runtime ignores
versions (hardware keeps one coherent copy); the message-passing runtime
uses them to fetch exactly the right data and to detect coherence bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.access import AccessMode
from repro.core.task import TaskSpec
from repro.errors import SpecificationError


@dataclass
class _Entry:
    task_id: int
    mode: AccessMode
    ready: bool = False


class Synchronizer:
    """Tracks object queues, task enablement and object versions."""

    def __init__(self) -> None:
        #: object_id -> pending declarations in program order.
        self._queues: Dict[int, List[_Entry]] = {}
        #: object_id -> number of writes added so far (program order).
        self._writes_added: Dict[int, int] = {}
        #: task_id -> its entries, for completion removal.
        self._task_entries: Dict[int, List[Tuple[int, _Entry]]] = {}
        #: task_id -> count of not-yet-ready entries.
        self._missing: Dict[int, int] = {}
        #: (task_id, object_id) -> version a read must observe.
        self._required: Dict[Tuple[int, int], int] = {}
        #: (task_id, object_id) -> version a write produces.
        self._produced: Dict[Tuple[int, int], int] = {}
        self._added: Set[int] = set()
        self._completed: Set[int] = set()
        #: Optional ordering observer (see :mod:`repro.check`): an object
        #: with ``sync_task_added(task, ready_oids)`` and
        #: ``sync_task_completed(task, newly_ready_per_object)`` methods.
        #: The callbacks expose exactly the synchronization the queues
        #: enforce, which is what the race detector's happens-before
        #: relation is built from.  ``None`` (the default) costs one
        #: predicate check per add/complete.
        self.observer: Optional[object] = None

    # ------------------------------------------------------------------ #
    # task arrival (executed when the main thread creates the task)
    # ------------------------------------------------------------------ #
    def add_task(self, task: TaskSpec) -> bool:
        """Insert the task's declarations; return True if enabled at once."""
        if task.task_id in self._added:
            raise SpecificationError(f"task {task.task_id} added twice")
        self._added.add(task.task_id)
        entries: List[Tuple[int, _Entry]] = []
        missing = 0
        ready_oids: List[int] = []
        for decl in task.spec:
            oid = decl.obj.object_id
            queue = self._queues.setdefault(oid, [])
            writes_so_far = self._writes_added.get(oid, 0)
            if decl.mode.reads:
                self._required[(task.task_id, oid)] = writes_so_far
            if decl.mode.writes:
                self._produced[(task.task_id, oid)] = writes_so_far + 1
                self._writes_added[oid] = writes_so_far + 1
            entry = _Entry(task.task_id, decl.mode)
            entry.ready = self._entry_would_be_ready(queue, decl.mode)
            if entry.ready:
                ready_oids.append(oid)
            else:
                missing += 1
            queue.append(entry)
            entries.append((oid, entry))
        self._task_entries[task.task_id] = entries
        self._missing[task.task_id] = missing
        if self.observer is not None:
            self.observer.sync_task_added(task, ready_oids)
        return missing == 0

    @staticmethod
    def _entry_would_be_ready(queue: List[_Entry], mode: AccessMode) -> bool:
        """Readiness of a declaration about to be appended to ``queue``."""
        if mode.writes:
            return not queue  # must be the oldest pending declaration
        return not any(e.mode.writes for e in queue)

    # ------------------------------------------------------------------ #
    # task completion
    # ------------------------------------------------------------------ #
    def complete_task(self, task: TaskSpec) -> List[int]:
        """Remove the task's declarations; return newly enabled task ids.

        The returned ids are in program (task id) order, keeping the whole
        runtime deterministic.
        """
        tid = task.task_id
        if tid not in self._added:
            raise SpecificationError(f"completing unknown task {tid}")
        if tid in self._completed:
            raise SpecificationError(f"task {tid} completed twice")
        self._completed.add(tid)
        # One element per entry (not per task): a task whose declarations on
        # two different objects become ready in the same completion must
        # have its missing-count decremented twice.
        newly_ready: List[int] = []
        newly_ready_per_object: List[Tuple[int, List[int]]] = []
        for oid, entry in self._task_entries.pop(tid, []):
            queue = self._queues[oid]
            queue.remove(entry)
            before = len(newly_ready)
            self._refresh_queue(queue, newly_ready)
            newly_ready_per_object.append((oid, newly_ready[before:]))
        self._missing.pop(tid, None)
        if self.observer is not None:
            self.observer.sync_task_completed(task, newly_ready_per_object)

        enabled: List[int] = []
        for other in sorted(newly_ready):
            self._missing[other] -= 1
            if self._missing[other] == 0:
                enabled.append(other)
        return enabled

    @staticmethod
    def _refresh_queue(queue: List[_Entry], newly_ready: List[int]) -> None:
        """Re-evaluate readiness after a removal.

        Reads ahead of the first pending write become ready; a write at the
        head of the queue becomes ready; nothing past a pending write can.
        """
        for index, entry in enumerate(queue):
            if entry.mode.writes:
                if index == 0 and not entry.ready:
                    entry.ready = True
                    newly_ready.append(entry.task_id)
                break
            if not entry.ready:
                entry.ready = True
                newly_ready.append(entry.task_id)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_enabled(self, task_id: int) -> bool:
        return (
            task_id in self._added
            and task_id not in self._completed
            and self._missing.get(task_id, 1) == 0
        )

    def required_version(self, task_id: int, object_id: int) -> int:
        """The version a task's read of an object must observe."""
        try:
            return self._required[(task_id, object_id)]
        except KeyError:
            raise SpecificationError(
                f"task {task_id} has no read declaration on object {object_id}"
            ) from None

    def produced_version(self, task_id: int, object_id: int) -> int:
        """The version a task's write of an object produces."""
        try:
            return self._produced[(task_id, object_id)]
        except KeyError:
            raise SpecificationError(
                f"task {task_id} has no write declaration on object {object_id}"
            ) from None

    def latest_version(self, object_id: int) -> int:
        """Versions created so far in *program* order (not execution order)."""
        return self._writes_added.get(object_id, 0)

    def pending_tasks(self) -> List[int]:
        """Tasks added but not completed (diagnostics/deadlock reports)."""
        return sorted(self._added - self._completed)

    def queue_length(self, object_id: int) -> int:
        return len(self._queues.get(object_id, []))
