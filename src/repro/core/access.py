"""Access specifications: how a task declares its shared-object accesses.

"Each such statement declares how the task will access an individual shared
object.  For example, the ``rd(o)`` access specification statement declares
that the task will read the shared object ``o``; the ``wr(o)`` statement
declares that the task will write ``o``." (§2)

Declaration order matters: the *first* declared object is the task's
**locality object** (§3.2.1, §3.4.3), which both schedulers use to pick the
task's target processor.  :class:`AccessSpec` therefore preserves order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.objects import SharedObject
from repro.errors import SpecificationError


class AccessMode(enum.Enum):
    """Declared access mode for one shared object.

    ``RW`` is the union ``rd(o); wr(o)`` — the task both reads the previous
    version and produces a new one (Ocean's interior-block update, every
    Cholesky update).  The paper's more advanced pipelined modes (``de``
    etc., [17]) are outside this reproduction's scope: none of the four
    evaluated applications use them.
    """

    RD = "rd"
    WR = "wr"
    RW = "rw"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.RD, AccessMode.RW)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.WR, AccessMode.RW)

    def conflicts_with(self, other: "AccessMode") -> bool:
        """Two accesses conflict unless both are pure reads."""
        return self.writes or other.writes


@dataclass(frozen=True)
class AccessDecl:
    """One executed access-specification statement."""

    obj: SharedObject
    mode: AccessMode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.mode.value}({self.obj.name})"


class AccessSpec:
    """An ordered set of access declarations for one task.

    Built either directly (``AccessSpec(rd=[...], wr=[...])``) or
    incrementally through :meth:`rd`/:meth:`wr`/:meth:`rw`, which mirror
    Jade's access-specification statements.  Declaring the same object
    twice merges the modes (``rd`` then ``wr`` becomes ``rw``), keeping the
    position of the first declaration — that is what the locality-object
    rule keys off.
    """

    def __init__(
        self,
        rd: Sequence[SharedObject] = (),
        wr: Sequence[SharedObject] = (),
        rw: Sequence[SharedObject] = (),
    ) -> None:
        self._order: List[int] = []
        self._modes: dict = {}
        self._objs: dict = {}
        for obj in rd:
            self.rd(obj)
        for obj in wr:
            self.wr(obj)
        for obj in rw:
            self.rw(obj)

    # ------------------------------------------------------------------ #
    # Jade access specification statements
    # ------------------------------------------------------------------ #
    def rd(self, obj: SharedObject) -> "AccessSpec":
        """Declare that the task will read ``obj``."""
        return self._declare(obj, AccessMode.RD)

    def wr(self, obj: SharedObject) -> "AccessSpec":
        """Declare that the task will write ``obj``."""
        return self._declare(obj, AccessMode.WR)

    def rw(self, obj: SharedObject) -> "AccessSpec":
        """Declare that the task will read and write ``obj``."""
        return self._declare(obj, AccessMode.RW)

    def _declare(self, obj: SharedObject, mode: AccessMode) -> "AccessSpec":
        if not isinstance(obj, SharedObject):
            raise SpecificationError(
                f"access declarations take SharedObject, got {type(obj).__name__}"
            )
        oid = obj.object_id
        if oid in self._modes:
            old = self._modes[oid]
            if old is not mode:
                self._modes[oid] = AccessMode.RW
        else:
            self._order.append(oid)
            self._modes[oid] = mode
            self._objs[oid] = obj
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[AccessDecl]:
        for oid in self._order:
            yield AccessDecl(self._objs[oid], self._modes[oid])

    def declares(self, obj: SharedObject) -> bool:
        return obj.object_id in self._modes

    def mode_of(self, obj: SharedObject) -> Optional[AccessMode]:
        return self._modes.get(obj.object_id)

    def may_read(self, obj: SharedObject) -> bool:
        mode = self._modes.get(obj.object_id)
        return mode is not None and mode.reads

    def may_write(self, obj: SharedObject) -> bool:
        mode = self._modes.get(obj.object_id)
        return mode is not None and mode.writes

    @property
    def locality_object(self) -> Optional[SharedObject]:
        """The first declared object (§3.2.1: "the first object that the
        task declared it would access")."""
        if not self._order:
            return None
        return self._objs[self._order[0]]

    def reads(self) -> List[SharedObject]:
        """Objects the task reads, in declaration order."""
        return [self._objs[oid] for oid in self._order if self._modes[oid].reads]

    def writes(self) -> List[SharedObject]:
        """Objects the task writes, in declaration order."""
        return [self._objs[oid] for oid in self._order if self._modes[oid].writes]

    def objects(self) -> List[SharedObject]:
        return [self._objs[oid] for oid in self._order]

    def conflicts_with(self, other: "AccessSpec") -> bool:
        """True when the two tasks have a dynamic data dependence (§2)."""
        mine = set(self._modes)
        for oid in other._order:
            if oid in mine and self._modes[oid].conflicts_with(other._modes[oid]):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "AccessSpec(" + ", ".join(repr(d) for d in self) + ")"
