"""Tasks: the unit of Jade concurrency.

A :class:`TaskSpec` is what a ``withonly`` construct produces: a body, an
access specification, and — because this reproduction simulates 1995-scale
machines while computing scaled-down numerics — an explicit ``cost`` in
simulated seconds of pure computation on the target machine.  Communication
costs are *not* part of ``cost``; the machine models add them (as cache-miss
time on DASH, as fetch messages on the iPSC/860).

:class:`TaskContext` is the window through which a body touches shared
data.  Like the real Jade implementation, it dynamically checks every
access against the declaration and raises
:class:`~repro.errors.AccessViolationError` on undeclared accesses — that
check is what makes access specifications trustworthy enough to drive
communication optimizations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.access import AccessSpec
from repro.core.objects import ObjectStore, SharedObject
from repro.errors import AccessViolationError


class TaskSpec:
    """Immutable description of one task, in serial creation order."""

    __slots__ = (
        "task_id",
        "name",
        "spec",
        "body",
        "cost",
        "placement",
        "serial",
        "phase",
        "metadata",
    )

    def __init__(
        self,
        task_id: int,
        name: str,
        spec: AccessSpec,
        body: Optional[Callable[["TaskContext"], None]] = None,
        cost: float = 0.0,
        placement: Optional[int] = None,
        serial: bool = False,
        phase: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        if cost < 0:
            raise ValueError(f"task {name!r}: negative cost {cost!r}")
        self.task_id = task_id
        self.name = name
        self.spec = spec
        self.body = body
        self.cost = float(cost)
        #: Explicit processor chosen by the programmer (the paper's
        #: "Task Placement" optimization level); ``None`` for the Locality
        #: and No Locality levels, where the scheduler decides.
        self.placement = placement
        #: Serial sections are main-thread code between task creations;
        #: they execute inline on the main processor and block further
        #: task creation (Jade's main thread suspends on shared accesses).
        self.serial = serial
        #: Optional application phase label ("forces", "reduce", ...) used
        #: by reports; no semantic effect.
        self.phase = phase
        self.metadata = metadata or {}

    @property
    def locality_object(self) -> Optional[SharedObject]:
        """The task's locality object — its first declared object."""
        return self.spec.locality_object

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "serial" if self.serial else "task"
        return f"<{kind} {self.task_id}:{self.name} cost={self.cost:.4g}>"


class TaskContext:
    """Checked access to shared data during a task body's execution.

    The runtime constructs one per execution with the store that holds the
    processor's data (the single global store on DASH; the executing
    processor's local store on the iPSC/860).
    """

    def __init__(
        self,
        task: TaskSpec,
        store: ObjectStore,
        processor: int = 0,
        recorder: Optional["AccessRecorderHook"] = None,
    ) -> None:
        self.task = task
        self.store = store
        self.processor = processor
        #: Optional dynamic checker (see :mod:`repro.check`).  When set it
        #: takes over access validation: it records every access, and either
        #: raises on violations (``raise`` policy, the classic Jade abort) or
        #: collects them and lets execution continue (``collect`` policy, so
        #: one checked run reports every mis-declaration at once).
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    def rd(self, obj: SharedObject) -> Any:
        """Return the payload of ``obj`` for reading."""
        if self.recorder is not None:
            return self.recorder.context_access(self, obj, "rd")
        if not self.task.spec.may_read(obj):
            raise AccessViolationError(
                f"task {self.task.name!r} read {obj.name!r} without declaring rd"
            )
        return self.store.get(obj.object_id)

    def wr(self, obj: SharedObject) -> Any:
        """Return the payload of ``obj`` for in-place mutation."""
        if self.recorder is not None:
            return self.recorder.context_access(self, obj, "wr")
        if not self.task.spec.may_write(obj):
            raise AccessViolationError(
                f"task {self.task.name!r} wrote {obj.name!r} without declaring wr"
            )
        return self.store.get(obj.object_id)

    # Aliases matching Python naming conventions.
    read = rd
    write = wr

    def set(self, obj: SharedObject, value: Any) -> None:
        """Replace the payload of ``obj`` outright (declared write required)."""
        if self.recorder is not None:
            self.recorder.context_access(self, obj, "set", value=value)
            return
        if not self.task.spec.may_write(obj):
            raise AccessViolationError(
                f"task {self.task.name!r} set {obj.name!r} without declaring wr"
            )
        self.store.put(obj.object_id, value)

    def run_body(self) -> None:
        """Execute the task body (no-op for bodies of ``None``)."""
        if self.task.body is None:
            return
        if self.recorder is not None:
            self.recorder.begin_task(self.task, self.processor)
            try:
                self.task.body(self)
            finally:
                self.recorder.end_task(self.task)
        else:
            self.task.body(self)
