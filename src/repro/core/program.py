"""Jade programs: serial elaboration of tasks, and the "stripped" executor.

A Jade program is a serial, imperative program whose ``withonly`` blocks
create tasks.  In this reproduction applications *elaborate* their program
through a :class:`JadeBuilder`: the builder records, in serial program
order, every shared-object allocation, every task creation and every serial
section.  The recorded :class:`JadeProgram` is then given to a runtime,
which replays the main thread on the simulated machine — charging task
creation overhead, blocking at serial sections — exactly as Jade's main
thread behaved.

Elaboration restriction
-----------------------

Elaboration runs *eagerly*, before simulation, so a program's **structure**
(which tasks exist, what they declare) may not depend on values computed by
task bodies.  Its **data** may: bodies execute later, during simulated (or
stripped) execution, in dependence order.  All four applications of the
paper satisfy this restriction — their main threads create a statically
known task structure per iteration.  (Full Jade allows structure to depend
on computed data; none of the paper's applications or experiments exercise
that, so the reproduction trades it for determinism and replayability.)

The stripped executor
---------------------

``run_stripped`` executes the program serially against a single store with
zero runtime overhead — the analogue of the paper's "stripped" version, in
which "all Jade constructs [are] automatically stripped out by a
preprocessor to yield a sequential C program that executes with no Jade
overhead" (§5.2.1).  Its numeric results define correctness for every
parallel execution, and its summed cost is the stripped execution time of
Tables 1 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.access import AccessSpec
from repro.core.objects import ObjectRegistry, ObjectStore, SharedObject
from repro.core.task import TaskContext, TaskSpec
from repro.errors import SpecificationError


class JadeBuilder:
    """Records a Jade program in serial order.

    Applications receive a builder and call :meth:`object`, :meth:`task`
    (a.k.a. :meth:`withonly`) and :meth:`serial`::

        def build(jade: JadeBuilder) -> None:
            grid = jade.object("grid", initial=np.zeros((64, 64)))
            for step in range(10):
                jade.task(f"update.{step}", body=update, rw=[grid], cost=1e-3)
    """

    def __init__(self) -> None:
        self.registry = ObjectRegistry()
        self.tasks: List[TaskSpec] = []
        self._next_task_id = 0

    # ------------------------------------------------------------------ #
    # shared object allocation
    # ------------------------------------------------------------------ #
    def object(
        self,
        name: str,
        initial: Any = None,
        sim_nbytes: Optional[int] = None,
        home: Optional[int] = None,
    ) -> SharedObject:
        """Allocate a shared object (version 0 = ``initial``).

        ``sim_nbytes`` is the size the machine models charge for moving the
        object; ``home`` pins its DASH memory module / initial iPSC owner.
        """
        return self.registry.create(name, initial, sim_nbytes, home)

    # ------------------------------------------------------------------ #
    # task creation
    # ------------------------------------------------------------------ #
    def task(
        self,
        name: str,
        body: Optional[Callable[[TaskContext], None]] = None,
        rd: Sequence[SharedObject] = (),
        wr: Sequence[SharedObject] = (),
        rw: Sequence[SharedObject] = (),
        spec: Optional[AccessSpec] = None,
        cost: float = 0.0,
        placement: Optional[int] = None,
        phase: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> TaskSpec:
        """Create a parallel task (the ``withonly`` construct).

        Either pass ``rd``/``wr``/``rw`` lists or a prebuilt ``spec``.
        Declaration order is preserved — the first declared object becomes
        the task's locality object, so put it first deliberately (the
        paper's applications do: Water and String declare their replicated
        contribution array first, Ocean its interior block, Cholesky the
        updated panel).
        """
        if spec is None:
            spec = AccessSpec(rd=rd, wr=wr, rw=rw)
        elif rd or wr or rw:
            raise SpecificationError("pass either spec= or rd/wr/rw lists, not both")
        task = TaskSpec(
            self._next_task_id,
            name,
            spec,
            body=body,
            cost=cost,
            placement=placement,
            serial=False,
            phase=phase,
            metadata=metadata,
        )
        self._next_task_id += 1
        self.tasks.append(task)
        return task

    #: ``withonly`` is the Jade name for task creation.
    withonly = task

    def serial(
        self,
        name: str,
        body: Optional[Callable[[TaskContext], None]] = None,
        rd: Sequence[SharedObject] = (),
        wr: Sequence[SharedObject] = (),
        rw: Sequence[SharedObject] = (),
        cost: float = 0.0,
        phase: Optional[str] = None,
    ) -> TaskSpec:
        """Record a serial main-thread section.

        The main thread executes this inline on the main processor: it
        waits for the declared objects' dependences, runs the body, and
        only then resumes creating tasks — exactly Jade's behaviour when
        the main thread touches shared data between ``withonly`` blocks.
        """
        spec = AccessSpec(rd=rd, wr=wr, rw=rw)
        task = TaskSpec(
            self._next_task_id,
            name,
            spec,
            body=body,
            cost=cost,
            placement=None,
            serial=True,
            phase=phase,
        )
        self._next_task_id += 1
        self.tasks.append(task)
        return task

    def finish(self, name: str = "program") -> "JadeProgram":
        """Freeze the recorded program."""
        return JadeProgram(name, self.registry, list(self.tasks))


@dataclass
class JadeProgram:
    """A frozen Jade program: objects plus tasks in serial creation order."""

    name: str
    registry: ObjectRegistry
    tasks: List[TaskSpec]

    @property
    def parallel_tasks(self) -> List[TaskSpec]:
        return [t for t in self.tasks if not t.serial]

    @property
    def serial_sections(self) -> List[TaskSpec]:
        return [t for t in self.tasks if t.serial]

    def total_cost(self) -> float:
        """Sum of all task costs — the zero-overhead serial execution time."""
        return sum(t.cost for t in self.tasks)

    def validate(self) -> None:
        """Sanity-check the program (unique ids, objects registered)."""
        seen = set()
        for task in self.tasks:
            if task.task_id in seen:
                raise SpecificationError(f"duplicate task id {task.task_id}")
            seen.add(task.task_id)
            for decl in task.spec:
                if self.registry.by_id(decl.obj.object_id) is not decl.obj:
                    raise SpecificationError(
                        f"task {task.name!r} declares foreign object {decl.obj.name!r}"
                    )


@dataclass
class SerialResult:
    """Outcome of a stripped (serial, zero-overhead) execution."""

    store: ObjectStore
    #: Simulated execution time: the plain sum of task costs.
    time: float
    tasks_executed: int = 0

    def payload(self, obj: SharedObject) -> Any:
        return self.store.get(obj.object_id)


def run_stripped(program: JadeProgram, recorder: Optional[Any] = None) -> SerialResult:
    """Execute the program serially with all Jade constructs stripped.

    Bodies run in creation order against one store; versions advance so the
    final store can be compared against parallel executions.  This is both
    the correctness oracle and the "Stripped" row of Tables 1 / 6.

    ``recorder`` optionally plugs an access checker (see :mod:`repro.check`)
    into the serial execution — useful to validate access specifications
    without simulating a machine at all.
    """
    program.validate()
    store = ObjectStore("stripped")
    for obj in program.registry:
        store.install(obj)
    if recorder is not None:
        recorder.attach_store(store)
    time = 0.0
    executed = 0
    for task in program.tasks:
        ctx = TaskContext(task, store, processor=0, recorder=recorder)
        ctx.run_body()
        for obj in task.spec.writes():
            store.bump_version(obj.object_id, store.version(obj.object_id) + 1)
        time += task.cost
        executed += 1
    return SerialResult(store=store, time=time, tasks_executed=executed)
