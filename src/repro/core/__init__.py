"""The Jade language core.

Jade (§2 of the paper) is a set of constructs layered over a serial,
imperative program:

* the program allocates **shared objects** — the granularity at which the
  implementation reasons about data (:mod:`repro.core.objects`);
* ``withonly`` blocks decompose the serial execution into **tasks**, each
  carrying an **access specification** declaring which objects it will read
  and write (:mod:`repro.core.access`, :mod:`repro.core.task`);
* the implementation extracts concurrency by preserving the **dynamic data
  dependences** implied by the specifications and the serial program order
  (:mod:`repro.core.synchronizer`).

This package is runtime-agnostic: it defines programs and their dependence
semantics.  The two machine-specific implementations live in
:mod:`repro.runtime`.
"""

from repro.core.objects import SharedObject, ObjectRegistry, ObjectStore
from repro.core.access import AccessMode, AccessDecl, AccessSpec
from repro.core.task import TaskSpec, TaskContext
from repro.core.program import JadeProgram, JadeBuilder, SerialResult, run_stripped
from repro.core.synchronizer import Synchronizer

__all__ = [
    "SharedObject",
    "ObjectRegistry",
    "ObjectStore",
    "AccessMode",
    "AccessDecl",
    "AccessSpec",
    "TaskSpec",
    "TaskContext",
    "JadeProgram",
    "JadeBuilder",
    "SerialResult",
    "run_stripped",
    "Synchronizer",
]
