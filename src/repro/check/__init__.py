"""``repro.check`` — dynamic verification of Jade access specifications.

The whole Jade contract (§2 of the paper) is: tasks *declare* their shared
object accesses, the runtime *enforces* the declarations, and deterministic
serial semantics follow.  This subsystem closes the loop by validating the
declarations against what task bodies actually do:

* :class:`AccessRecorder` instruments :class:`~repro.core.task.TaskContext`
  and :class:`~repro.core.objects.ObjectStore` with per-task access
  recording, producing structured :class:`AccessViolation` records for
  every undeclared access (either aborting like the real Jade runtime, or
  collecting all violations from one run);
* :func:`detect_races` runs a vector-clock happens-before race detector
  over the recorded accesses, using only the ordering the synchronizer
  actually enforced — it flags conflicting accesses of app bugs (missing
  declarations) and runtime bugs (a scheduler running a task early);
* :func:`verify_determinism` / :func:`cross_check` replay configurations
  and report the *first structural trace divergence* with context instead
  of a bare byte-inequality;
* :func:`check_application` / ``python -m repro check`` wire it all into a
  one-command validity check for the paper's applications.

Everything is off by default: an un-instrumented run pays exactly one
``is not None`` predicate check per hook site.
"""

from repro.check.record import AccessEvent, AccessRecorder, AccessViolation
from repro.check.races import ObjectRace, compute_vector_clocks, detect_races, happens_before
from repro.check.determinism import (
    CrossCheckReport,
    DeterminismReport,
    TraceDivergence,
    compare_traces,
    cross_check,
    verify_determinism,
)
from repro.check.checker import CheckReport, build_program, check_application, run_checked

__all__ = [
    "AccessEvent",
    "AccessRecorder",
    "AccessViolation",
    "ObjectRace",
    "compute_vector_clocks",
    "detect_races",
    "happens_before",
    "TraceDivergence",
    "DeterminismReport",
    "CrossCheckReport",
    "compare_traces",
    "cross_check",
    "verify_determinism",
    "CheckReport",
    "build_program",
    "check_application",
    "run_checked",
]
