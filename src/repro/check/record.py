"""Per-task access recording and access-specification validation.

The :class:`AccessRecorder` is the one object behind all three hook sites:

* ``TaskContext.rd/wr/set`` delegate every access to
  :meth:`AccessRecorder.context_access`, which records the access,
  validates it against the task's declared :class:`AccessSpec`, and then
  performs the underlying store operation;
* ``ObjectStore.get/put`` notify :meth:`on_store_get`/:meth:`on_store_put`,
  which catches bodies that bypass the ``TaskContext`` API (e.g. reaching
  through ``ctx.store`` directly) — those accesses are attributed to the
  currently-executing task and validated the same way;
* ``Synchronizer.add_task/complete_task`` notify
  :meth:`sync_task_added`/:meth:`sync_task_completed`, building the log of
  synchronization events the race detector's happens-before relation is
  computed from.

Two policies
------------

``raise``  — abort on the first violation with
:class:`~repro.errors.AccessViolationError`, exactly like the real Jade
implementation's dynamic access check.

``collect`` — record a structured :class:`AccessViolation` and keep going,
so a single checked run reports *every* mis-declaration.  To survive
undeclared accesses on the message-passing machine (where an undeclared
object was never fetched into the executing node's store) the recorder
serves a stable per-(store, object) scratch copy of the object's initial
payload; numeric results of a violating run are therefore diagnostic only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.objects import ObjectStore, SharedObject, _clone
from repro.core.program import JadeProgram
from repro.core.task import TaskSpec
from repro.errors import AccessViolationError


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic access a task body actually performed."""

    seq: int
    task_id: int
    task_name: str
    object_id: int
    object_name: str
    #: ``"rd"`` / ``"wr"`` / ``"set"`` — what the body did (``set`` is a
    #: whole-payload replacement; it counts as a write).
    kind: str
    processor: int
    #: ``"ctx"`` for accesses through the TaskContext API, ``"store"`` for
    #: raw store accesses that bypassed it.
    channel: str = "ctx"

    @property
    def writes(self) -> bool:
        return self.kind in ("wr", "set")

    def format(self) -> str:
        return (f"task {self.task_name!r} ({self.task_id}) {self.kind} "
                f"{self.object_name!r} on proc {self.processor} [{self.channel}]")


@dataclass(frozen=True)
class AccessViolation:
    """A structured record of one undeclared (or impossible) access."""

    task_id: int
    task_name: str
    object_id: int
    object_name: str
    #: The undeclared access kind: ``"rd"`` / ``"wr"`` / ``"set"``.
    kind: str
    #: What the task *did* declare for the object (``"rd"``/``"wr"``/``"rw"``)
    #: or ``None`` when the object was not declared at all.
    declared: Optional[str]
    detail: str = ""

    def format(self) -> str:
        declared = self.declared if self.declared is not None else "nothing"
        line = (f"ACCESS VIOLATION: task {self.task_name!r} ({self.task_id}) "
                f"performed undeclared {self.kind} of object "
                f"{self.object_name!r} ({self.object_id}); declared: {declared}")
        if self.detail:
            line += f" — {self.detail}"
        return line


class AccessRecorder:
    """Records, validates and (optionally) survives shared-object accesses.

    One recorder checks one run; construct a fresh one per execution.
    """

    def __init__(self, program: JadeProgram, policy: str = "collect") -> None:
        if policy not in ("collect", "raise"):
            raise ValueError(f"unknown checker policy {policy!r}")
        self.program = program
        self.policy = policy
        self.events: List[AccessEvent] = []
        self.violations: List[AccessViolation] = []
        #: Chronological synchronization log consumed by
        #: :mod:`repro.check.races`: ``("create", task_id, serial)``,
        #: ``("edge", before_id, after_id)``, ``("complete", task_id, serial)``.
        self.sync_log: List[Tuple] = []
        self.tasks_checked = 0

        self._registry = program.registry
        #: The task whose body is currently executing (bodies never nest:
        #: both runtimes and the stripped executor run them to completion).
        self._current: Optional[Tuple[TaskSpec, int]] = None
        #: Store access already attributed by :meth:`context_access`, so the
        #: store-level observer does not double-count it.
        self._expected: Optional[Tuple[ObjectStore, int]] = None
        #: Scratch payloads served for undeclared objects missing from a
        #: local store (collect policy on the message-passing machine).
        self._scratch: Dict[Tuple[int, int], Any] = {}
        # Per-object completion tracking for happens-before edges: the last
        # completed writer, and the readers completed since that write.
        self._last_writer_done: Dict[int, int] = {}
        self._readers_done: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    # wiring helpers
    # ------------------------------------------------------------------ #
    def attach_store(self, store: ObjectStore) -> None:
        """Observe raw accesses on ``store`` (idempotent)."""
        store.observer = self

    def attach_synchronizer(self, sync) -> None:
        sync.observer = self

    # ------------------------------------------------------------------ #
    # TaskContext hooks
    # ------------------------------------------------------------------ #
    def begin_task(self, task: TaskSpec, processor: int) -> None:
        self._current = (task, processor)
        self.tasks_checked += 1

    def end_task(self, task: TaskSpec) -> None:
        self._current = None
        self._expected = None

    def context_access(self, ctx, obj: SharedObject, kind: str,
                       value: Any = None) -> Any:
        """Validate and perform one TaskContext-level access."""
        task = ctx.task
        declared_ok = (task.spec.may_read(obj) if kind == "rd"
                       else task.spec.may_write(obj))
        self._record(task, obj, kind, ctx.processor, "ctx")
        if not declared_ok:
            self._violate(task, obj, kind,
                          detail="access through TaskContext")
        store = ctx.store
        oid = obj.object_id
        if kind == "set":
            if store.has(oid):
                self._expected = (store, oid)
                try:
                    store.put(oid, value)
                finally:
                    self._expected = None
            else:
                # Undeclared object never shipped to this store: write the
                # scratch copy so later undeclared reads see the value.
                self._scratch[(id(store), oid)] = value
            return None
        if store.has(oid):
            self._expected = (store, oid)
            try:
                return store.get(oid)
            finally:
                self._expected = None
        # Collect-policy survival path: serve a stable scratch payload.
        key = (id(store), oid)
        if key not in self._scratch:
            self._scratch[key] = _clone(obj.initial)
        return self._scratch[key]

    # ------------------------------------------------------------------ #
    # ObjectStore observer
    # ------------------------------------------------------------------ #
    def on_store_get(self, store: ObjectStore, object_id: int) -> None:
        self._store_access(store, object_id, "rd")

    def on_store_put(self, store: ObjectStore, object_id: int) -> None:
        self._store_access(store, object_id, "set")

    def _store_access(self, store: ObjectStore, object_id: int, kind: str) -> None:
        if self._expected is not None and self._expected == (store, object_id):
            self._expected = None  # already attributed by context_access
            return
        if self._current is None:
            return  # runtime-internal access (install, gather, transfer)
        task, processor = self._current
        obj = self._registry.by_id(object_id)
        self._record(task, obj, kind, processor, "store")
        declared_ok = (task.spec.may_read(obj) if kind == "rd"
                       else task.spec.may_write(obj))
        if not declared_ok:
            self._violate(task, obj, kind,
                          detail="raw store access bypassing TaskContext")

    # ------------------------------------------------------------------ #
    # Synchronizer observer (happens-before construction)
    # ------------------------------------------------------------------ #
    def sync_task_added(self, task: TaskSpec, ready_oids: List[int]) -> None:
        """A task's declarations entered the object queues (creation point)."""
        self.sync_log.append(("create", task.task_id, task.serial))
        for oid in ready_oids:
            self._edges_for_ready(task.task_id, task.spec, oid)

    def sync_task_completed(
        self, task: TaskSpec,
        newly_ready_per_object: List[Tuple[int, List[int]]],
    ) -> None:
        """A task left the queues; some waiting declarations became ready."""
        tid = task.task_id
        # Fold the completed task into the per-object release state first,
        # so the enabled tasks get edges from *every* conflicting
        # predecessor (not only the one whose removal triggered readiness).
        for decl in task.spec:
            oid = decl.obj.object_id
            if decl.mode.writes:
                self._last_writer_done[oid] = tid
                self._readers_done[oid] = []
            else:
                self._readers_done.setdefault(oid, []).append(tid)
        for oid, ready_tids in newly_ready_per_object:
            for ready_tid in ready_tids:
                spec = self._spec_of(ready_tid)
                if spec is not None:
                    self._edges_for_ready(ready_tid, spec, oid)
        self.sync_log.append(("complete", tid, task.serial))

    def _spec_of(self, task_id: int):
        tasks = self.program.tasks
        if 0 <= task_id < len(tasks) and tasks[task_id].task_id == task_id:
            return tasks[task_id].spec
        for task in tasks:  # pragma: no cover - non-contiguous ids
            if task.task_id == task_id:
                return task.spec
        return None

    def _edges_for_ready(self, task_id: int, spec, oid: int) -> None:
        """Record why ``task_id``'s declaration on ``oid`` is now ready.

        A read is ready once the last conflicting write completed; a write
        additionally waits for every read of that version.  Those are the
        happens-before edges the synchronizer enforces.
        """
        writer = self._last_writer_done.get(oid)
        if writer is not None and writer != task_id:
            self.sync_log.append(("edge", writer, task_id))
        mode = spec.mode_of(self._registry.by_id(oid))
        if mode is not None and mode.writes:
            for reader in self._readers_done.get(oid, ()):
                if reader != task_id:
                    self.sync_log.append(("edge", reader, task_id))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _record(self, task: TaskSpec, obj: SharedObject, kind: str,
                processor: int, channel: str) -> None:
        self.events.append(AccessEvent(
            seq=len(self.events),
            task_id=task.task_id,
            task_name=task.name,
            object_id=obj.object_id,
            object_name=obj.name,
            kind=kind,
            processor=processor,
            channel=channel,
        ))

    def _violate(self, task: TaskSpec, obj: SharedObject, kind: str,
                 detail: str) -> None:
        mode = task.spec.mode_of(obj)
        violation = AccessViolation(
            task_id=task.task_id,
            task_name=task.name,
            object_id=obj.object_id,
            object_name=obj.name,
            kind=kind,
            declared=mode.value if mode is not None else None,
            detail=detail,
        )
        self.violations.append(violation)
        if self.policy == "raise":
            raise AccessViolationError(violation.format())
