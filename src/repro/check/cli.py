"""The ``python -m repro check`` command.

Runs the full verification stack for one application:

1. access-specification check + race detection on each selected machine;
2. determinism verification (two traced replays per machine, structural
   trace comparison);
3. shared-memory vs. message-passing cross-check of final results against
   the stripped serial execution.

Exit status is 0 only when every stage is clean — so the command doubles
as a validity control in scripts and CI.

``--snapshot PATH`` is a separate mode: validate an on-disk snapshot
document (any schema :mod:`repro.obs.schema` knows — ``repro.obs/4``,
``repro.bench/1``, ``repro.sweep/1``, ``repro.sweep/2``,
``repro.chaos/1``, ``repro.serve/1``, ``repro.fleet.trace/1``) instead
of running an application.  CI uses it to check the documents the
service returns and the fleet artifacts a distributed sweep writes.
"""

from __future__ import annotations

import argparse

from repro.check.checker import (
    build_program,
    check_application,
    checkable_applications,
    verify_application_determinism,
)
from repro.check.determinism import cross_check
from repro.errors import AccessViolationError, VersionError


def add_check_parser(sub) -> None:
    """Register the ``check`` subcommand on the main parser."""
    parser = sub.add_parser(
        "check",
        help="validate access specs, detect races, verify determinism",
    )
    parser.add_argument("--app", required=False, default=None,
                        choices=checkable_applications())
    parser.add_argument("--snapshot", metavar="PATH", default=None,
                        help="validate a snapshot document (repro.obs/4, "
                             "repro.bench/1, repro.sweep/1-2, repro.chaos/1, "
                             "repro.serve/1 or repro.fleet.trace/1) instead "
                             "of checking an app")
    parser.add_argument("--machine", default="both",
                        choices=["dash", "ipsc860", "both"])
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "paper"])
    parser.add_argument("--policy", default="collect",
                        choices=["collect", "raise"],
                        help="collect all violations, or abort on the first")
    parser.add_argument("--no-determinism", action="store_true",
                        help="skip the replay and cross-check stages")
    parser.set_defaults(func=cmd_check)


def _check_snapshot(path: str) -> int:
    import json
    import sys

    from repro.obs.schema import validate_snapshot

    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        print(f"error: cannot read snapshot {path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: snapshot {path} is not JSON: {exc}", file=sys.stderr)
        return 2
    problems = validate_snapshot(doc)
    if problems:
        print(f"check[snapshot {path}]: FAILED "
              f"({len(problems)} problem(s))")
        for problem in problems:
            print(f"  {problem}")
        return 1
    schema = doc.get("schema", "?")
    print(f"check[snapshot {path}]: OK ({schema})")
    return 0


def cmd_check(args) -> int:
    import sys

    if args.snapshot is not None:
        return _check_snapshot(args.snapshot)
    if args.app is None:
        print("error: repro check needs --app (verify an application) or "
              "--snapshot PATH (validate a snapshot document)",
              file=sys.stderr)
        return 2
    machines = ["dash", "ipsc860"] if args.machine == "both" else [args.machine]
    failed = False

    for machine in machines:
        try:
            report = check_application(
                args.app, machine, args.procs, args.scale, policy=args.policy,
            )
        except VersionError as exc:
            # A coherence violation is a runtime bug, not a program bug;
            # the structured fields say exactly which object/version/node.
            print(f"check[{args.app} on {machine}, {args.procs} procs]: "
                  f"ABORTED (coherence violation)\n  {exc}\n"
                  f"  {exc.details()}")
            failed = True
            continue
        except AccessViolationError as exc:
            # raise policy: abort on the first violation, like real Jade.
            print(f"check[{args.app} on {machine}, {args.procs} procs]: "
                  f"ABORTED\n  {exc}")
            failed = True
            continue
        print(report.format())
        failed = failed or not report.ok

    # Replays and cross-checks run the program *without* the collecting
    # recorder, so they are only meaningful once the access check is clean
    # (an undeclared access would abort an unchecked run outright).
    if not args.no_determinism and not failed:
        for machine in machines:
            try:
                det = verify_application_determinism(
                    args.app, machine, args.procs, args.scale,
                )
            except VersionError as exc:
                print(f"determinism[{args.app} on {machine}]: ABORTED "
                      f"(coherence violation)\n  {exc}\n  {exc.details()}")
                failed = True
                continue
            print(det.format())
            failed = failed or not det.ok
        if len(machines) == 2:
            cross = cross_check(
                lambda: build_program(args.app, args.procs, "ipsc860",
                                      args.scale),
                args.procs,
                label=f"{args.app}/{args.procs}p",
            )
            print(cross.format())
            failed = failed or not cross.ok

    return 1 if failed else 0
