"""The ``python -m repro check`` command.

Runs the full verification stack for one application:

1. access-specification check + race detection on each selected machine;
2. determinism verification (two traced replays per machine, structural
   trace comparison);
3. shared-memory vs. message-passing cross-check of final results against
   the stripped serial execution.

Exit status is 0 only when every stage is clean — so the command doubles
as a validity control in scripts and CI.
"""

from __future__ import annotations

import argparse

from repro.check.checker import (
    build_program,
    check_application,
    checkable_applications,
    verify_application_determinism,
)
from repro.check.determinism import cross_check
from repro.errors import AccessViolationError, VersionError


def add_check_parser(sub) -> None:
    """Register the ``check`` subcommand on the main parser."""
    parser = sub.add_parser(
        "check",
        help="validate access specs, detect races, verify determinism",
    )
    parser.add_argument("--app", required=True,
                        choices=checkable_applications())
    parser.add_argument("--machine", default="both",
                        choices=["dash", "ipsc860", "both"])
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "paper"])
    parser.add_argument("--policy", default="collect",
                        choices=["collect", "raise"],
                        help="collect all violations, or abort on the first")
    parser.add_argument("--no-determinism", action="store_true",
                        help="skip the replay and cross-check stages")
    parser.set_defaults(func=cmd_check)


def cmd_check(args) -> int:
    machines = ["dash", "ipsc860"] if args.machine == "both" else [args.machine]
    failed = False

    for machine in machines:
        try:
            report = check_application(
                args.app, machine, args.procs, args.scale, policy=args.policy,
            )
        except VersionError as exc:
            # A coherence violation is a runtime bug, not a program bug;
            # the structured fields say exactly which object/version/node.
            print(f"check[{args.app} on {machine}, {args.procs} procs]: "
                  f"ABORTED (coherence violation)\n  {exc}\n"
                  f"  {exc.details()}")
            failed = True
            continue
        except AccessViolationError as exc:
            # raise policy: abort on the first violation, like real Jade.
            print(f"check[{args.app} on {machine}, {args.procs} procs]: "
                  f"ABORTED\n  {exc}")
            failed = True
            continue
        print(report.format())
        failed = failed or not report.ok

    # Replays and cross-checks run the program *without* the collecting
    # recorder, so they are only meaningful once the access check is clean
    # (an undeclared access would abort an unchecked run outright).
    if not args.no_determinism and not failed:
        for machine in machines:
            try:
                det = verify_application_determinism(
                    args.app, machine, args.procs, args.scale,
                )
            except VersionError as exc:
                print(f"determinism[{args.app} on {machine}]: ABORTED "
                      f"(coherence violation)\n  {exc}\n  {exc.details()}")
                failed = True
                continue
            print(det.format())
            failed = failed or not det.ok
        if len(machines) == 2:
            cross = cross_check(
                lambda: build_program(args.app, args.procs, "ipsc860",
                                      args.scale),
                args.procs,
                label=f"{args.app}/{args.procs}p",
            )
            print(cross.format())
            failed = failed or not cross.ok

    return 1 if failed else 0
