"""Vector-clock happens-before race detection over recorded accesses.

The happens-before relation is built from the synchronization the run
*actually performed*, as logged by the :class:`~repro.check.record.AccessRecorder`
synchronizer observer:

* **creation** — a task inherits the main thread's clock when the main
  thread inserts its declarations into the synchronizer (task bodies are
  not ordered by creation alone; only main-thread history is);
* **enablement edges** — ``("edge", a, b)`` whenever the queue-based
  synchronizer ordered ``b``'s declaration after ``a``'s completion (the
  release/acquire pairs of §3.1's algorithm);
* **serial joins** — a serial section executes on the main thread, so its
  clock (and transitively everything it waited for) joins the main
  thread's clock, ordering all later-created tasks after it.

Each task is one vector-clock segment (``vc[t][t] = 1``); ``a`` happens
before ``b`` iff ``vc[b][a] >= 1``.  Two accesses race when their tasks
are unordered in this relation and at least one of them writes.  Because
the relation contains only enforced ordering, a missing ``rd``/``wr``
declaration (app bug) or a task run before its enablement (runtime bug)
shows up as a conflicting unordered pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.check.record import AccessEvent, AccessRecorder


@dataclass(frozen=True)
class RaceAccess:
    """One side of a race: a task and what it did to the object."""

    task_id: int
    task_name: str
    #: ``"rd"``, ``"wr"`` or ``"rw"`` — the task's accesses to the object,
    #: aggregated over its recorded events.
    kind: str

    def format(self) -> str:
        return f"task {self.task_name!r} ({self.task_id}) {self.kind}"


@dataclass(frozen=True)
class ObjectRace:
    """Two conflicting accesses not ordered by the synchronizer."""

    object_id: int
    object_name: str
    first: RaceAccess
    second: RaceAccess

    def format(self) -> str:
        return (f"RACE on object {self.object_name!r} ({self.object_id}): "
                f"{self.first.format()} is concurrent with {self.second.format()}")


def compute_vector_clocks(sync_log: Sequence[Tuple]) -> Dict[int, Dict[int, int]]:
    """Replay the synchronization log into one vector clock per task."""
    vcs: Dict[int, Dict[int, int]] = {}
    main_vc: Dict[int, int] = {}
    for event in sync_log:
        tag = event[0]
        if tag == "create":
            tid = event[1]
            vc = dict(main_vc)
            vc[tid] = 1
            vcs[tid] = vc
        elif tag == "edge":
            a, b = event[1], event[2]
            va = vcs.get(a)
            vb = vcs.get(b)
            if va is None or vb is None:
                continue  # edge to a task the log never created
            for key, value in va.items():
                if vb.get(key, 0) < value:
                    vb[key] = value
        elif tag == "complete":
            tid, serial = event[1], event[2]
            if serial and tid in vcs:
                for key, value in vcs[tid].items():
                    if main_vc.get(key, 0) < value:
                        main_vc[key] = value
    return vcs


def happens_before(vcs: Dict[int, Dict[int, int]], a: int, b: int) -> bool:
    """True when task ``a``'s segment is ordered before task ``b``'s."""
    return vcs.get(b, {}).get(a, 0) >= 1


def _aggregate(
    events: Iterable[AccessEvent],
) -> Tuple[Dict[int, Dict[int, Tuple[bool, bool, str]]], Dict[int, str]]:
    """Per object: task -> (reads, writes, task_name), over actual accesses."""
    per_object: Dict[int, Dict[int, Tuple[bool, bool, str]]] = {}
    names: Dict[int, str] = {}
    for event in events:
        names[event.object_id] = event.object_name
        tasks = per_object.setdefault(event.object_id, {})
        reads, writes, _ = tasks.get(event.task_id, (False, False, event.task_name))
        if event.writes:
            writes = True
        else:
            reads = True
        tasks[event.task_id] = (reads, writes, event.task_name)
    return per_object, names


def _kind(reads: bool, writes: bool) -> str:
    if reads and writes:
        return "rw"
    return "wr" if writes else "rd"


def detect_races(recorder: AccessRecorder) -> List[ObjectRace]:
    """Find all pairs of conflicting, unordered accesses in a checked run.

    Returns one race per (object, task pair), deterministically ordered by
    object id then task ids.  An empty synchronization log (e.g. a stripped
    serial run) cannot race: execution was fully ordered.
    """
    if not recorder.sync_log:
        return []
    vcs = compute_vector_clocks(recorder.sync_log)
    per_object, names = _aggregate(recorder.events)
    races: List[ObjectRace] = []
    for object_id in sorted(per_object):
        tasks = per_object[object_id]
        tids = sorted(tasks)
        for i, a in enumerate(tids):
            a_reads, a_writes, a_name = tasks[a]
            for b in tids[i + 1:]:
                b_reads, b_writes, b_name = tasks[b]
                if not (a_writes or b_writes):
                    continue  # two reads never conflict
                if happens_before(vcs, a, b) or happens_before(vcs, b, a):
                    continue
                races.append(ObjectRace(
                    object_id=object_id,
                    object_name=names[object_id],
                    first=RaceAccess(a, a_name, _kind(a_reads, a_writes)),
                    second=RaceAccess(b, b_name, _kind(b_reads, b_writes)),
                ))
    return races
