"""Determinism verification: structural trace comparison and cross-checks.

The reproduction's experiments rely on runs being repeatable (the engine
orders same-time events by scheduling sequence precisely for this).  The
old test idiom asserted byte-equality of two formatted traces, which on
failure says only "they differ".  This module compares traces
*structurally* and reports the **first divergence with context** — the
event index, both events, and the surrounding trace lines — which is the
information actually needed to debug a nondeterministic scheduler.

Two verifiers:

* :func:`verify_determinism` — replay the same configuration N times and
  compare every run's trace against the first;
* :func:`cross_check` — run the same program on the shared-memory and the
  message-passing machine and compare final shared-object payloads against
  the stripped serial execution (the machines' traces legitimately differ;
  their *results* may not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.program import JadeProgram, run_stripped
from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class TraceDivergence:
    """The first structural difference between two traces."""

    #: Index of the first differing event (== common length when one trace
    #: is a strict prefix of the other).
    index: int
    left: Optional[TraceEvent]
    right: Optional[TraceEvent]
    #: The events common to both runs immediately before the divergence.
    context: Sequence[TraceEvent] = ()

    def format(self) -> str:
        lines = [f"trace divergence at event {self.index}:"]
        for event in self.context:
            lines.append(f"    = {event.format()}")
        lines.append("    < " + (self.left.format() if self.left else "<end of trace>"))
        lines.append("    > " + (self.right.format() if self.right else "<end of trace>"))
        return "\n".join(lines)


def compare_traces(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    context: int = 3,
) -> Optional[TraceDivergence]:
    """Return the first structural divergence, or ``None`` when identical."""
    for index in range(min(len(left), len(right))):
        if left[index] != right[index]:
            return TraceDivergence(
                index=index,
                left=left[index],
                right=right[index],
                context=tuple(left[max(0, index - context):index]),
            )
    if len(left) != len(right):
        index = min(len(left), len(right))
        return TraceDivergence(
            index=index,
            left=left[index] if index < len(left) else None,
            right=right[index] if index < len(right) else None,
            context=tuple(left[max(0, index - context):index]),
        )
    return None


@dataclass
class DeterminismReport:
    """Outcome of replaying one configuration several times."""

    label: str
    runs: int = 0
    events: int = 0
    divergence: Optional[TraceDivergence] = None
    #: Which replay diverged from run 0 (1-based), if any.
    diverged_run: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def format(self) -> str:
        if self.ok:
            return (f"determinism[{self.label}]: OK — {self.runs} identical "
                    f"replays of {self.events} trace events")
        return (f"determinism[{self.label}]: FAILED — replay "
                f"{self.diverged_run} diverged from run 0\n"
                + self.divergence.format())


def verify_determinism(
    run_once: Callable[[], Sequence[TraceEvent]],
    runs: int = 2,
    label: str = "run",
    context: int = 3,
) -> DeterminismReport:
    """Execute ``run_once`` ``runs`` times and compare traces structurally.

    ``run_once`` must build a *fresh* program and machine each call (Jade
    programs hold live payload state) and return the recorded trace events.
    """
    if runs < 2:
        raise ValueError("determinism verification needs at least 2 runs")
    reference = list(run_once())
    report = DeterminismReport(label=label, runs=runs, events=len(reference))
    for k in range(1, runs):
        replay = list(run_once())
        divergence = compare_traces(reference, replay, context=context)
        if divergence is not None:
            report.divergence = divergence
            report.diverged_run = k
            return report
    return report


@dataclass
class CrossCheckReport:
    """Shared-memory vs. message-passing vs. stripped result comparison."""

    label: str
    objects_compared: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def format(self) -> str:
        if self.ok:
            return (f"cross-check[{self.label}]: OK — {self.objects_compared} "
                    f"objects identical on dash, ipsc860 and stripped")
        lines = [f"cross-check[{self.label}]: FAILED"]
        lines.extend(f"    {m}" for m in self.mismatches)
        return "\n".join(lines)


def _payload_equal(expected, actual) -> bool:
    if isinstance(expected, np.ndarray) or isinstance(actual, np.ndarray):
        return np.array_equal(np.asarray(expected), np.asarray(actual))
    return expected == actual


def cross_check(
    program_factory: Callable[[], JadeProgram],
    num_processors: int,
    options=None,
    label: str = "program",
) -> CrossCheckReport:
    """Run both machines on fresh programs; compare results to stripped.

    The determinism guarantee of Jade (§2) is that every legal execution
    computes the serial program's results — so the two machine
    implementations must agree with the stripped executor object by object.
    """
    from repro.runtime import run_message_passing, run_shared_memory

    serial = run_stripped(program_factory())
    report = CrossCheckReport(label=label)
    for machine_name, runner in (("dash", run_shared_memory),
                                 ("ipsc860", run_message_passing)):
        program = program_factory()
        metrics = runner(program, num_processors, options)
        store = metrics.final_store
        if store is None:
            report.mismatches.append(f"{machine_name}: no final store recorded")
            continue
        for obj in program.registry:
            expected = serial.store.get(obj.object_id)
            actual = store.get(obj.object_id)
            report.objects_compared += 1
            if not _payload_equal(expected, actual):
                report.mismatches.append(
                    f"{machine_name}: object {obj.name!r} ({obj.object_id}) "
                    f"differs from the stripped serial result"
                )
    return report
