"""Checked execution: one entry point that runs a program with the
recorder wired in, then race-detects the recorded accesses.

``run_checked`` is the library API; ``check_application`` adds the paper
applications (plus the deliberately mis-declared example) on top, and the
``python -m repro check`` command wraps both with reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.apps import ALL_APPLICATIONS, MachineKind
from repro.check.record import AccessRecorder, AccessViolation
from repro.check.races import ObjectRace, detect_races
from repro.core.program import JadeProgram
from repro.runtime.metrics import RunMetrics
from repro.runtime.options import LocalityLevel, RuntimeOptions


@dataclass
class CheckReport:
    """Everything one checked run established."""

    application: str
    machine: str
    num_processors: int
    violations: List[AccessViolation] = field(default_factory=list)
    races: List[ObjectRace] = field(default_factory=list)
    access_events: int = 0
    tasks_checked: int = 0
    metrics: Optional[RunMetrics] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.races

    def format(self) -> str:
        head = (f"check[{self.application} on {self.machine}, "
                f"{self.num_processors} procs]: ")
        if self.ok:
            return (head + f"OK — {self.access_events} accesses by "
                    f"{self.tasks_checked} task bodies, all declared; no races")
        lines = [head + f"{len(self.violations)} violation(s), "
                 f"{len(self.races)} race(s)"]
        lines.extend("  " + v.format() for v in self.violations)
        lines.extend("  " + r.format() for r in self.races)
        return "\n".join(lines)


def run_checked(
    program: JadeProgram,
    machine: str = "ipsc860",
    num_processors: int = 4,
    options: Optional[RuntimeOptions] = None,
    policy: str = "collect",
    application: str = "program",
) -> CheckReport:
    """Execute ``program`` with full access recording and race detection.

    ``machine`` is ``"dash"`` (shared memory), ``"ipsc860"`` (message
    passing) or ``"stripped"`` (serial, no machine model — validates the
    access specifications alone).
    """
    recorder = AccessRecorder(program, policy=policy)
    metrics: Optional[RunMetrics] = None
    if machine == "stripped":
        from repro.core.program import run_stripped

        run_stripped(program, recorder=recorder)
    elif machine == "dash":
        from repro.runtime.shared_memory import run_shared_memory

        metrics = run_shared_memory(program, num_processors, options,
                                    recorder=recorder)
    elif machine == "ipsc860":
        from repro.runtime.message_passing import run_message_passing

        metrics = run_message_passing(program, num_processors, options,
                                      recorder=recorder)
    else:
        raise ValueError(f"unknown machine {machine!r}")
    return CheckReport(
        application=application,
        machine=machine,
        num_processors=num_processors,
        violations=list(recorder.violations),
        races=detect_races(recorder),
        access_events=len(recorder.events),
        tasks_checked=recorder.tasks_checked,
        metrics=metrics,
    )


#: Applications the checker knows beyond the paper's four: the seeded
#: mis-declared example the checker must flag.
CHECKABLE_EXTRAS = ("misdeclared",)


def checkable_applications() -> List[str]:
    return sorted(ALL_APPLICATIONS) + list(CHECKABLE_EXTRAS)


def build_program(
    name: str,
    num_processors: int,
    machine: str = "ipsc860",
    scale: str = "tiny",
    level: LocalityLevel = LocalityLevel.LOCALITY,
) -> JadeProgram:
    """Elaborate a fresh program for any checkable application."""
    machine_kind = MachineKind(machine) if machine != "stripped" \
        else MachineKind.IPSC860
    if name == "misdeclared":
        from repro.apps.misdeclared import Misdeclared, MisdeclaredConfig

        config = MisdeclaredConfig.tiny() if scale == "tiny" \
            else MisdeclaredConfig.paper()
        return Misdeclared(config).build(num_processors, machine=machine_kind,
                                         level=level)
    from repro.lab.experiments import make_application

    return make_application(name, scale).build(num_processors,
                                               machine=machine_kind, level=level)


def check_application(
    name: str,
    machine: str = "ipsc860",
    num_processors: int = 4,
    scale: str = "tiny",
    options: Optional[RuntimeOptions] = None,
    policy: str = "collect",
) -> CheckReport:
    """Build and check one application configuration."""
    program = build_program(name, num_processors, machine, scale)
    return run_checked(program, machine, num_processors, options,
                       policy=policy, application=name)


def traced_events(
    name: str,
    machine: str,
    num_processors: int,
    scale: str = "tiny",
    options: Optional[RuntimeOptions] = None,
):
    """One fresh traced execution; returns the recorded trace events."""
    from repro.sim.trace import Tracer

    program = build_program(name, num_processors, machine, scale)
    tracer = Tracer(enabled=True)
    if machine == "dash":
        from repro.machines.dash import DashMachine
        from repro.runtime.shared_memory import run_shared_memory

        run_shared_memory(program, num_processors, options,
                          machine=DashMachine(num_processors, tracer=tracer))
    else:
        from repro.machines.ipsc860 import Ipsc860Machine
        from repro.runtime.message_passing import run_message_passing

        run_message_passing(program, num_processors, options,
                            machine=Ipsc860Machine(num_processors, tracer=tracer))
    return list(tracer.events)


def verify_application_determinism(
    name: str,
    machine: str,
    num_processors: int = 4,
    scale: str = "tiny",
    options: Optional[RuntimeOptions] = None,
    runs: int = 2,
):
    """Replay one app configuration ``runs`` times; compare traces."""
    from repro.check.determinism import verify_determinism

    return verify_determinism(
        lambda: traced_events(name, machine, num_processors, scale, options),
        runs=runs,
        label=f"{name}/{machine}/{num_processors}p",
    )
