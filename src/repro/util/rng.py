"""Deterministic random-stream derivation.

Applications need randomness (molecule placement, ray perturbations,
synthetic matrix sparsity) but every simulation must be bit-reproducible.
All randomness therefore flows from ``numpy.random.Generator`` instances
derived from an explicit ``(seed, label)`` pair, so two components of one
experiment never share (and never race on) a stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def substream(seed: int, label: str) -> np.random.Generator:
    """Return a generator for the stream identified by ``(seed, label)``.

    The label is folded into the seed with CRC32 so distinct labels give
    statistically independent streams while remaining stable across runs
    and Python versions (``hash()`` is salted per-process, CRC32 is not).

    >>> a = substream(7, "water.positions").random()
    >>> b = substream(7, "water.positions").random()
    >>> a == b
    True
    """
    mixed = (int(seed) & 0xFFFFFFFF, zlib.crc32(label.encode("utf-8")))
    return np.random.default_rng(np.random.SeedSequence(mixed))
