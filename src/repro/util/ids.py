"""Deterministic identifier allocation.

Simulations must be reproducible run-to-run, so identifiers are handed out
by per-simulation :class:`IdAllocator` instances instead of module-global
counters.  Each allocator hands out consecutive integers per *namespace*
(e.g. ``"task"``, ``"object"``, ``"message"``), which also makes traces easy
to read: the fifth task created is always ``task 4``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdAllocator:
    """Allocates consecutive integer ids per namespace.

    >>> ids = IdAllocator()
    >>> ids.next("task"), ids.next("task"), ids.next("object")
    (0, 1, 0)
    """

    def __init__(self) -> None:
        self._next: Dict[str, int] = defaultdict(int)

    def next(self, namespace: str) -> int:
        """Return the next id in ``namespace`` and advance the counter."""
        value = self._next[namespace]
        self._next[namespace] = value + 1
        return value

    def peek(self, namespace: str) -> int:
        """Return the id that the next :meth:`next` call would hand out."""
        return self._next[namespace]

    def count(self, namespace: str) -> int:
        """Return how many ids have been allocated in ``namespace``."""
        return self._next[namespace]

    def reset(self, namespace: str | None = None) -> None:
        """Reset one namespace (or all namespaces when ``None``)."""
        if namespace is None:
            self._next.clear()
        else:
            self._next.pop(namespace, None)
