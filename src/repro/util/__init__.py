"""Small shared utilities: identifier allocation, unit helpers, RNG streams.

These helpers keep the rest of the package deterministic: every identifier
comes from an explicit counter (no global state shared between simulations)
and every random stream is derived from an explicit seed.
"""

from repro.util.canon import canonical_json, content_key
from repro.util.ids import IdAllocator
from repro.util.units import (
    KB,
    MB,
    USEC,
    MSEC,
    CYCLES,
    bytes_human,
    seconds_human,
)
from repro.util.rng import substream

__all__ = [
    "IdAllocator",
    "KB",
    "MB",
    "USEC",
    "MSEC",
    "CYCLES",
    "bytes_human",
    "canonical_json",
    "content_key",
    "seconds_human",
    "substream",
]
