"""Canonical JSON: one byte layout per value, everywhere.

Every place the repo compares serialized documents for equality — the
parallel-vs-serial sweep contract, the chaos determinism verdict, the
content-addressed result cache of :mod:`repro.serve` — must serialize
through a single code path, or "byte-identical" silently degrades into
"byte-identical except for formatting".  :func:`canonical_json` is that
code path:

* keys are sorted at every nesting level;
* floats use CPython's shortest-round-trip ``repr`` (deterministic for a
  given IEEE-754 double across processes and platforms), with ``-0.0``
  normalized to ``0.0`` so the two equal zeros cannot produce two
  different byte strings;
* NaN and the infinities are rejected outright — RFC 8259 has no spelling
  for them, and an ``Infinity`` literal from an empty accumulator is
  exactly the silent corruption the snapshot validator exists to catch;
* only JSON-native types are accepted (tuples serialize as arrays); any
  other object is an error, never a lossy ``str()`` fallback.

:func:`content_key` layers SHA-256 on top, giving the stable
content-addressed key the serve cache and the cache-key tests rely on.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any


def _normalize(obj: Any, path: str) -> Any:
    """Recursively validate/normalize ``obj`` for canonical serialization."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, int):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"canonical JSON forbids non-finite float {obj!r} at {path}")
        # -0.0 == 0.0 but repr()s differently; collapse to one spelling.
        return 0.0 if obj == 0.0 else obj
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"canonical JSON requires string keys, got {key!r} "
                    f"at {path}")
            out[key] = _normalize(value, f"{path}.{key}")
        return out
    if isinstance(obj, (list, tuple)):
        return [_normalize(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    raise ValueError(
        f"canonical JSON cannot serialize {type(obj).__name__} at {path}")


def canonical_json(obj: Any, *, indent: "int | None" = None) -> str:
    """Serialize ``obj`` to canonical JSON text.

    ``indent=None`` (the default) produces the compact single-line form
    used for hashing; an integer indent produces the human-readable form
    the snapshot writers emit.  Both forms sort keys and normalize floats
    identically — they differ only in whitespace.
    """
    normalized = _normalize(obj, "$")
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(normalized, indent=indent, sort_keys=True,
                      allow_nan=False, separators=separators,
                      ensure_ascii=True)


def content_key(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s compact canonical JSON.

    The content-addressed cache key of :mod:`repro.serve`: equal values
    (after float normalization) always hash equal, across processes and
    hosts; any differing field — however deeply nested — changes the key.
    """
    text = canonical_json(obj)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
