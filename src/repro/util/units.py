"""Unit constants and human-readable formatting.

Simulated time is kept in **seconds** (floats) throughout the package; these
constants document conversions at call sites (``47 * USEC`` reads better
than ``4.7e-05``).  Sizes are kept in **bytes** (ints).
"""

from __future__ import annotations

#: One kilobyte (1024 bytes) — matches the paper's usage for cache sizes.
KB = 1024

#: One megabyte (1024 * 1024 bytes).  The paper quotes link bandwidth in
#: "megabytes per second"; we interpret that as 2^20 bytes/s, consistent
#: with 1990s convention.
MB = 1024 * 1024

#: One microsecond expressed in seconds.
USEC = 1e-6

#: One millisecond expressed in seconds.
MSEC = 1e-3


def CYCLES(n: float, hz: float) -> float:
    """Convert ``n`` processor cycles at clock rate ``hz`` to seconds.

    >>> CYCLES(33, 33e6)
    1e-06
    """
    return n / hz


def bytes_human(n: float) -> str:
    """Format a byte count for reports (``'162.0 KB'``, ``'2.8 MB'``)."""
    n = float(n)
    if n >= MB:
        return f"{n / MB:.1f} MB"
    if n >= KB:
        return f"{n / KB:.1f} KB"
    return f"{n:.0f} B"


def seconds_human(t: float) -> str:
    """Format a duration for reports, switching units below one second."""
    if t >= 1.0:
        return f"{t:.2f} s"
    if t >= MSEC:
        return f"{t / MSEC:.2f} ms"
    return f"{t / USEC:.1f} us"
