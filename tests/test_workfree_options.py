"""Tests for the work-free transformation and runtime options."""

import pytest

from repro.runtime import LocalityLevel, RuntimeOptions, make_work_free
from repro.runtime.workfree import task_management_percentage

from tests.helpers import reduction_program


# --------------------------------------------------------------------- #
# work-free transformation
# --------------------------------------------------------------------- #
def test_work_free_strips_cost_and_bodies_keeps_structure():
    program = reduction_program(num_workers=4, iterations=2)
    free = make_work_free(program)
    assert len(free.tasks) == len(program.tasks)
    for original, stripped in zip(program.tasks, free.tasks):
        assert stripped.cost == 0.0
        assert stripped.body is None
        assert stripped.task_id == original.task_id
        assert stripped.serial == original.serial
        assert stripped.spec is original.spec  # identical concurrency pattern
    assert free.total_cost() == 0.0
    assert free.registry is program.registry


def test_work_free_program_runs():
    from repro.runtime import run_message_passing

    program = make_work_free(reduction_program(num_workers=4, iterations=2))
    metrics = run_message_passing(program, 2, RuntimeOptions(work_free=True))
    assert metrics.tasks_executed == 8
    assert metrics.task_time_total == 0.0


def test_task_management_percentage_bounds():
    assert task_management_percentage(5.0, 10.0) == pytest.approx(50.0)
    assert task_management_percentage(20.0, 10.0) == 100.0  # clamped
    assert task_management_percentage(1.0, 0.0) == 0.0


# --------------------------------------------------------------------- #
# options
# --------------------------------------------------------------------- #
def test_options_defaults_match_paper_baseline():
    opts = RuntimeOptions()
    assert opts.locality is LocalityLevel.LOCALITY
    assert opts.replication
    assert opts.adaptive_broadcast
    assert opts.concurrent_fetches
    assert opts.target_tasks_per_processor == 1
    assert not opts.latency_hiding
    assert not opts.work_free
    assert not opts.eager_update


def test_options_but_returns_modified_copy():
    base = RuntimeOptions()
    changed = base.but(adaptive_broadcast=False, target_tasks_per_processor=2)
    assert not changed.adaptive_broadcast
    assert changed.latency_hiding
    assert base.adaptive_broadcast  # original untouched


def test_options_invalid_target_rejected():
    with pytest.raises(ValueError):
        RuntimeOptions(target_tasks_per_processor=0)


def test_options_describe_mentions_non_defaults():
    opts = RuntimeOptions(
        locality=LocalityLevel.NO_LOCALITY,
        replication=False,
        adaptive_broadcast=False,
        concurrent_fetches=False,
        target_tasks_per_processor=2,
        work_free=True,
        eager_update=True,
    )
    text = opts.describe()
    for token in ("no_locality", "no-replication", "no-broadcast",
                  "serial-fetch", "target=2", "work-free", "eager-update"):
        assert token in text
    assert RuntimeOptions().describe() == "locality"


def test_options_hashable_and_frozen():
    opts = RuntimeOptions()
    with pytest.raises(Exception):
        opts.replication = False  # frozen dataclass
    assert hash(opts) == hash(RuntimeOptions())
