"""Unit tests for the vector-clock happens-before race detector."""

import numpy as np
import pytest

from repro.check import (
    AccessRecorder,
    compute_vector_clocks,
    detect_races,
    happens_before,
    run_checked,
)
from repro.core import JadeBuilder

from tests.helpers import chain_program, reduction_program


# --------------------------------------------------------------------- #
# vector-clock construction from synthetic sync logs
# --------------------------------------------------------------------- #
def test_edge_orders_tasks():
    log = [("create", 0, False), ("create", 1, False),
           ("complete", 0, False), ("edge", 0, 1), ("complete", 1, False)]
    vcs = compute_vector_clocks(log)
    assert happens_before(vcs, 0, 1)
    assert not happens_before(vcs, 1, 0)


def test_no_edge_means_concurrent():
    log = [("create", 0, False), ("create", 1, False),
           ("complete", 0, False), ("complete", 1, False)]
    vcs = compute_vector_clocks(log)
    assert not happens_before(vcs, 0, 1)
    assert not happens_before(vcs, 1, 0)


def test_edges_are_transitive():
    log = [("create", 0, False), ("create", 1, False), ("create", 2, False),
           ("complete", 0, False), ("edge", 0, 1),
           ("complete", 1, False), ("edge", 1, 2), ("complete", 2, False)]
    vcs = compute_vector_clocks(log)
    assert happens_before(vcs, 0, 2)


def test_serial_completion_joins_main_thread():
    # Task 0 is a serial section; task 1 is created after it completes, so
    # the main thread's clock carries 0's history into 1.
    log = [("create", 0, True), ("complete", 0, True), ("create", 1, False)]
    vcs = compute_vector_clocks(log)
    assert happens_before(vcs, 0, 1)


def test_parallel_task_completion_does_not_join_main_thread():
    # Non-serial completion must NOT feed the main-thread clock: a later
    # task is not ordered after it unless the synchronizer emitted an edge.
    log = [("create", 0, False), ("complete", 0, False), ("create", 1, False)]
    vcs = compute_vector_clocks(log)
    assert not happens_before(vcs, 0, 1)


def test_edge_to_unknown_task_is_ignored():
    log = [("create", 0, False), ("edge", 0, 99), ("edge", 99, 0)]
    vcs = compute_vector_clocks(log)
    assert 99 not in vcs
    assert not happens_before(vcs, 99, 0)


# --------------------------------------------------------------------- #
# end-to-end race detection on checked runs
# --------------------------------------------------------------------- #
def test_serial_chain_has_no_races():
    report = run_checked(chain_program(length=6), machine="ipsc860",
                         num_processors=4)
    assert report.violations == []
    assert report.races == []


def test_reduction_program_has_no_races():
    report = run_checked(reduction_program(num_workers=4, iterations=2),
                         machine="dash", num_processors=4)
    assert report.violations == []
    assert report.races == []


def _racy_program():
    """Writer and reader of the same object; the reader never declares it."""
    jade = JadeBuilder()
    shared = jade.object("shared", initial=np.zeros(4))
    out = jade.object("out", initial=np.zeros(4))
    jade.task("writer", body=lambda ctx: ctx.wr(shared).fill(1.0),
              wr=[shared], cost=1e-3)

    def reader(ctx):
        ctx.wr(out)[:] = ctx.rd(shared)  # undeclared rd(shared)

    jade.task("reader", body=reader, wr=[out], cost=1e-3)
    return jade.finish("racy")


@pytest.mark.parametrize("machine", ["dash", "ipsc860"])
def test_undeclared_conflict_is_a_race(machine):
    report = run_checked(_racy_program(), machine=machine, num_processors=2)
    assert len(report.violations) == 1
    shared_races = [r for r in report.races if r.object_name == "shared"]
    assert len(shared_races) == 1
    race = shared_races[0]
    names = {race.first.task_name, race.second.task_name}
    assert names == {"writer", "reader"}
    kinds = {race.first.kind, race.second.kind}
    assert kinds == {"wr", "rd"}
    assert "RACE on object 'shared'" in race.format()


def test_declared_conflict_is_not_a_race():
    # Same shape as _racy_program but correctly declared: the synchronizer
    # orders reader after writer, so no race is reported.
    jade = JadeBuilder()
    shared = jade.object("shared", initial=np.zeros(4))
    out = jade.object("out", initial=np.zeros(4))
    jade.task("writer", body=lambda ctx: ctx.wr(shared).fill(1.0),
              wr=[shared], cost=1e-3)

    def reader(ctx):
        ctx.wr(out)[:] = ctx.rd(shared)

    jade.task("reader", body=reader, rd=[shared], wr=[out], cost=1e-3)
    report = run_checked(jade.finish("ordered"), machine="ipsc860",
                         num_processors=2)
    assert report.violations == []
    assert report.races == []


def test_stripped_run_never_races():
    recorder = AccessRecorder(_racy_program())
    from repro.core import run_stripped

    program = _racy_program()
    recorder = AccessRecorder(program)
    run_stripped(program, recorder=recorder)
    # The serial executor performs no synchronization, so the log is empty
    # and races are (correctly) not reported: execution was fully ordered.
    assert recorder.sync_log == []
    assert detect_races(recorder) == []
