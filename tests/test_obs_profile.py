"""Tests for the run profiler: reconciliation invariants, zero overhead,
and determinism of profiled runs."""

import json

import pytest

from repro.apps import MachineKind
from repro.lab.experiments import profile_app, run_app
from repro.obs import validate_profile
from repro.obs.snapshot import dump_json
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel
from repro.sim.trace import Tracer


def _ipsc(**kwargs):
    return profile_app("water", 4, MachineKind.IPSC860,
                       LocalityLevel.LOCALITY, scale="tiny", **kwargs)


def _dash(**kwargs):
    return profile_app("ocean", 4, MachineKind.DASH,
                       LocalityLevel.LOCALITY, scale="tiny", **kwargs)


# --------------------------------------------------------------------- #
# reconciliation invariants
# --------------------------------------------------------------------- #
def test_comm_matrix_totals_match_metrics():
    metrics, profile = _ipsc()
    assert metrics.total_messages > 0
    assert profile.total_matrix_messages == metrics.total_messages
    assert profile.total_matrix_bytes == pytest.approx(metrics.total_bytes)


def test_comm_matrix_counts_local_deliveries_on_diagonal():
    metrics, profile = profile_app("water", 1, MachineKind.IPSC860,
                                   LocalityLevel.LOCALITY, scale="tiny")
    # One-processor runs still deliver local messages; they land on [0][0].
    assert profile.comm_messages[0][0] == metrics.total_messages


def test_utilization_reconciles_with_busy_per_processor_ipsc():
    metrics, profile = _ipsc()
    assert len(profile.utilization) == metrics.num_processors
    for row, busy in zip(profile.utilization, metrics.busy_per_processor):
        split = (row["compute"] + row["serial"] + row["memory_comm"]
                 + row["mgmt"])
        assert split == pytest.approx(busy, abs=1e-9)
        assert row["mgmt"] >= 0.0
        assert row["idle"] >= 0.0


def test_utilization_reconciles_with_busy_per_processor_dash():
    metrics, profile = _dash()
    for row, busy in zip(profile.utilization, metrics.busy_per_processor):
        split = (row["compute"] + row["serial"] + row["memory_comm"]
                 + row["mgmt"])
        assert split == pytest.approx(busy, abs=1e-9)


def test_task_spans_sum_to_task_time_total_ipsc():
    tracer = Tracer(enabled=True)
    metrics, _profile = _ipsc(tracer=tracer)
    total = sum(end.time - begin.time for begin, end in tracer.spans("task"))
    assert total == pytest.approx(metrics.task_time_total)
    # Serial sections are a separate category, not mixed into task time.
    serial = sum(end.time - begin.time
                 for begin, end in tracer.spans("serial"))
    assert metrics.serial_sections_executed > 0
    assert serial >= 0.0


def test_task_spans_sum_to_task_time_total_dash():
    tracer = Tracer(enabled=True)
    metrics, _profile = _dash(tracer=tracer)
    total = sum(end.time - begin.time for begin, end in tracer.spans("task"))
    assert total == pytest.approx(metrics.task_time_total)


def test_message_spans_cover_in_flight_time():
    tracer = Tracer(enabled=True)
    metrics, _profile = _ipsc(tracer=tracer)
    pairs = tracer.spans("message")
    assert len(pairs) == metrics.total_messages
    assert all(end.time >= begin.time for begin, end in pairs)


def test_hot_objects_mp_record_fetches_and_broadcasts():
    metrics, profile = _ipsc()
    assert profile.objects
    assert sum(o.fetches for o in profile.objects) > 0
    assert sum(o.broadcasts for o in profile.objects) == metrics.broadcasts
    ranked = profile.hot_objects(3)
    assert len(ranked) <= 3
    assert ranked == sorted(ranked, key=lambda o: -o.bytes_moved)


def test_hot_objects_dash_record_memory_time():
    _metrics, profile = _dash()
    assert profile.objects
    assert sum(o.comm_seconds for o in profile.objects) > 0
    assert sum(o.accesses for o in profile.objects) > 0


def test_eager_updates_reconcile():
    metrics, profile = profile_app(
        "water", 4, MachineKind.IPSC860, LocalityLevel.LOCALITY,
        RuntimeOptions(adaptive_broadcast=False, eager_update=True),
        scale="tiny")
    assert metrics.eager_updates > 0
    assert sum(o.eager_updates for o in profile.objects) == metrics.eager_updates


def test_timeline_samples_and_inflight_peak():
    metrics, profile = _ipsc()
    timeline = profile.timeline
    assert timeline["horizon"] == pytest.approx(metrics.elapsed)
    samples = timeline["samples"]
    assert samples
    assert samples[-1]["t"] == pytest.approx(metrics.elapsed)
    assert timeline["peaks"]["inflight_messages"] >= 1
    # Link utilizations are fractions.
    for row in samples:
        for util in row["link_utilization"].values():
            assert 0.0 <= util <= 1.0 + 1e-9


# --------------------------------------------------------------------- #
# zero overhead and determinism
# --------------------------------------------------------------------- #
def test_profiler_does_not_perturb_the_run():
    plain = run_app("water", 4, MachineKind.IPSC860,
                    LocalityLevel.LOCALITY, scale="tiny")
    profiled, _ = _ipsc()
    assert profiled.summary() == plain.summary()
    assert profiled.busy_per_processor == plain.busy_per_processor


def test_profiler_does_not_perturb_the_run_dash():
    plain = run_app("ocean", 4, MachineKind.DASH,
                    LocalityLevel.LOCALITY, scale="tiny")
    profiled, _ = _dash()
    assert profiled.summary() == plain.summary()


def test_two_profiled_runs_are_byte_identical():
    _m1, p1 = _ipsc()
    _m2, p2 = _ipsc()
    assert dump_json(p1.to_dict()) == dump_json(p2.to_dict())
    assert p1.format() == p2.format()


def test_two_traced_runs_export_identical_chrome_json():
    t1, t2 = Tracer(enabled=True), Tracer(enabled=True)
    _ipsc(tracer=t1)
    _ipsc(tracer=t2)
    assert t1.to_chrome_json() == t2.to_chrome_json()
    assert t1.to_jsonl() == t2.to_jsonl()


# --------------------------------------------------------------------- #
# snapshot document
# --------------------------------------------------------------------- #
def test_snapshot_validates_and_serializes():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    assert validate_profile(doc) == []
    text = dump_json(doc)  # allow_nan=False: raises on Infinity/NaN
    assert '"schema": "repro.obs/4"' in text


def test_snapshot_validator_catches_corruption():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    doc["comm_matrix"]["total_messages"] += 1
    assert any("total_messages" in p for p in validate_profile(doc))


# --------------------------------------------------------------------- #
# schema version compatibility (repro.obs/1..3)
# --------------------------------------------------------------------- #
def test_older_schema_versions_still_validate():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    assert validate_profile(doc) == []

    # A v2 document has no fault counters and a 4-bucket critical path.
    v2 = json.loads(dump_json(doc))
    v2["schema"] = "repro.obs/2"
    for key in ("messages_dropped", "messages_duplicated", "retransmissions",
                "duplicates_suppressed", "ack_bytes", "recovery_stall_us"):
        v2["metrics"]["attribution"].pop(key)
    v2["critical_path"]["buckets"].pop("recovery")
    assert validate_profile(v2) == []

    # A v1 document predates attribution and the critical path entirely.
    v1 = json.loads(dump_json(doc))
    v1["schema"] = "repro.obs/1"
    del v1["metrics"]["attribution"]
    del v1["critical_path"]
    assert validate_profile(v1) == []


def test_v3_requires_fault_counters_in_attribution():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    doc["metrics"]["attribution"].pop("retransmissions")
    assert any("retransmissions" in p for p in validate_profile(doc))


def test_v3_requires_recovery_bucket():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    doc["critical_path"]["buckets"].pop("recovery")
    assert any("recovery" in p for p in validate_profile(doc))


def test_present_but_empty_attribution_is_rejected():
    _metrics, profile = _ipsc()
    doc = profile.to_dict()
    doc["metrics"]["attribution"] = {}
    problems = validate_profile(doc)
    assert any("attribution is empty" in p for p in problems)
    # The same hole exists in v2 documents — the fix applies there too.
    doc["schema"] = "repro.obs/2"
    assert any("attribution is empty" in p for p in validate_profile(doc))


def test_report_renders_for_both_machines():
    for _m, profile in (_ipsc(), _dash()):
        text = profile.format()
        assert "per-processor utilization" in text
        assert "communication matrix" in text
        assert "hot objects" in text
        assert "timeline" in text
