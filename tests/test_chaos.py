"""Tests for the ``repro chaos`` command and the repro.chaos/1 schema."""

import json

import pytest

from repro.__main__ import main
from repro.obs.schema import CHAOS_SCHEMA, validate_chaos, validate_snapshot


def _chaos(tmp_path, *extra):
    path = tmp_path / "chaos.json"
    code = main(["chaos", "--app", "water", "--scale", "tiny",
                 "--procs", "4", "--seed", "7", "--drop-rate", "0.05",
                 "--json", str(path), *extra])
    return code, path


def test_chaos_run_passes_and_writes_valid_doc(tmp_path, capsys):
    code, path = _chaos(tmp_path)
    out = capsys.readouterr().out
    assert code == 0
    assert "coherent" in out and "PASS" in out
    doc = json.loads(path.read_text())
    assert doc["schema"] == CHAOS_SCHEMA
    assert validate_chaos(doc) == []
    assert validate_snapshot(doc) == []  # dispatches on the schema tag
    assert doc["verdicts"] == {"coherent": True, "deterministic": True}
    assert doc["counters"]["messages_dropped"] > 0
    assert doc["counters"]["retransmissions"] > 0
    assert doc["fault_spec"]["drop_rate"] == 0.05


def test_chaos_snapshots_identical_across_invocations(tmp_path, capsys):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    code_a, path_a = _chaos(tmp_path / "a")
    code_b, path_b = _chaos(tmp_path / "b")
    capsys.readouterr()
    assert code_a == 0 and code_b == 0
    assert (tmp_path / "a" / "chaos.json").read_bytes() == \
        (tmp_path / "b" / "chaos.json").read_bytes()
    assert path_a != path_b  # sanity: two separate files were compared


def test_chaos_zero_rate_plan_passes_with_zero_counters(tmp_path, capsys):
    path = tmp_path / "quiet.json"
    assert main(["chaos", "--app", "string", "--scale", "tiny",
                 "--procs", "2", "--seed", "3", "--json", str(path)]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["counters"]["retransmissions"] == 0
    assert doc["counters"]["ack_bytes"] == 0


def test_chaos_rejects_dash(capsys):
    assert main(["chaos", "--app", "water", "--machine", "dash"]) == 2
    assert "ipsc860" in capsys.readouterr().err


def test_chaos_rejects_bad_rate(capsys):
    assert main(["chaos", "--app", "water", "--drop-rate", "1.5"]) == 2
    assert "drop_rate" in capsys.readouterr().err


def test_chaos_sim_failure_exits_three(capsys):
    # An impossibly tight time guard makes the simulation itself abort.
    assert main(["chaos", "--app", "water", "--scale", "tiny",
                 "--procs", "4", "--max-sim-time", "0.0001"]) == 3
    assert "simulation failed" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# schema
# --------------------------------------------------------------------- #
def _valid_doc():
    return {
        "schema": CHAOS_SCHEMA,
        "run": {"application": "water", "machine": "ipsc860",
                "num_processors": 4, "options": "defaults"},
        "fault_spec": {"seed": 7, "drop_rate": 0.05},
        "counters": {"messages_dropped": 5, "retransmissions": 13,
                     "duplicates_suppressed": 12, "ack_bytes": 1984.0,
                     "recovery_stall_us": 21379.7},
        "verdicts": {"coherent": True, "deterministic": True},
    }


def test_validate_chaos_accepts_well_formed_doc():
    assert validate_chaos(_valid_doc()) == []


@pytest.mark.parametrize("mutate,needle", [
    (lambda d: d.pop("verdicts"), "verdicts"),
    (lambda d: d.pop("fault_spec"), "fault_spec"),
    (lambda d: d.update(schema="repro.chaos/99"), "schema"),
    (lambda d: d["counters"].pop("retransmissions"), "retransmissions"),
    (lambda d: d["counters"].update(ack_bytes=-1), "ack_bytes"),
    (lambda d: d["verdicts"].update(coherent="yes"), "coherent"),
    (lambda d: d["run"].pop("num_processors"), "num_processors"),
])
def test_validate_chaos_catches_corruption(mutate, needle):
    doc = _valid_doc()
    mutate(doc)
    problems = validate_chaos(doc)
    assert problems and any(needle in p for p in problems)
